"""Shared configuration for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper on a *scaled*
platform: request lengths are divided by :data:`SCALE` and the KV-token
capacity is divided by the same factor, which preserves the ratio between
request footprints and pool capacity (the quantity scheduling behaviour
depends on) while keeping each simulated run in the seconds range.

Each benchmark writes the series/rows it reproduces as a plain-text table to
``results/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.hardware.platform import Platform, paper_platform
from repro.serving.sla import SLASpec
from repro.workloads.spec import Workload, scale_workload

#: Length/capacity scale factor applied to every benchmark workload.
SCALE = 1.0 / 16.0

#: Scaled KV-token capacity corresponding to Llama-2-7B on an A100-80G
#: (121,744 slots in the full-size platform).
CAPACITY_7B_A100 = int(paper_platform("7b-a100").token_capacity * SCALE)
CAPACITY_13B_A100 = int(paper_platform("13b-a100").token_capacity * SCALE)
CAPACITY_70B_A100X4 = int(paper_platform("70b-a100x4").token_capacity * SCALE)

#: SLA used for the scaled 7B/13B benchmarks.  TTFT matches the paper (10 s).
#: The MTPOT bound is tightened from the paper's 1.5 s to 0.5 s because
#: scaling request lengths by 1/16 shortens eviction-induced stalls (which are
#: proportional to how long the rest of the batch needs to free memory) by
#: roughly the same factor, while ordinary inter-token gaps stay in the tens
#: of milliseconds; 0.5 s keeps the paper's separation between "normal decode
#: cadence" and "eviction stall" on the scaled platform.
SLA_SCALED_SMALL = SLASpec(ttft_limit=10.0, mtpot_limit=0.5)
SLA_SCALED_LARGE = SLASpec(ttft_limit=15.0, mtpot_limit=1.0)

#: Per-iteration prefill-token cap used by the scaled benchmarks (8192 tokens
#: at full scale, scaled down with the workload lengths).  Serving frameworks
#: bound the tokens of one forward pass, which keeps admission bursts from
#: stalling the decode cadence.
PREFILL_CAP_SCALED = int(8192 * SCALE)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmarks drop their text reports."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def platform_7b() -> Platform:
    return paper_platform("7b-a100")


@pytest.fixture(scope="session")
def platform_13b() -> Platform:
    return paper_platform("13b-a100")


@pytest.fixture(scope="session")
def platform_70b() -> Platform:
    return paper_platform("70b-a100x4")


def scaled(workload: Workload) -> Workload:
    """Scale a paper workload down by :data:`SCALE`."""
    return scale_workload(workload, SCALE)


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Write one benchmark's text report and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")

"""Ablation: future-memory peak (Eq. 2-4) vs naive final-footprint sum.

The "Future" half of the scheduler estimates the *peak* memory of the running
batch by accounting for when each request will release its memory.  A simpler
design would admit requests while the *sum of predicted final footprints*
fits the capacity — ignoring that requests finish at different times.  This
ablation shows that the naive sum behaves like a (prediction-aware)
conservative scheduler: it is just as eviction-safe but wastes memory and
takes more decoding steps, which is precisely the gap Eq. 2-4 closes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import CAPACITY_7B_A100, PREFILL_CAP_SCALED, scaled, write_report
from repro.analysis.experiments import ExperimentConfig, memory_report_from_run, run_experiment
from repro.analysis.tables import render_table
from repro.core.past_future import PastFutureScheduler
from repro.schedulers.base import SchedulingContext
from repro.engine.request import Request
from repro.workloads.distributions import distribution_workload

NUM_REQUESTS = 120
NUM_CLIENTS = 48


class NaiveSumScheduler(PastFutureScheduler):
    """Past-Future predictions, but admission by summed final footprints."""

    name = "naive-sum"

    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        predictor = self._make_predictor()
        budget = self.admission_budget(context)
        current, remaining = self._predicted_entries(predictor, context.running)
        committed = int(np.sum(current + remaining)) if current.size else 0
        admitted: list[Request] = []
        for candidate in context.waiting:
            cand_current, cand_remaining = self._candidate_entry(predictor, candidate)
            if committed + cand_current + cand_remaining <= budget:
                admitted.append(candidate)
                committed += cand_current + cand_remaining
            else:
                break
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    def describe(self) -> str:
        return f"naive footprint sum (reserved={self.reserved_fraction:.0%})"


def run_pair(platform) -> list[dict]:
    workload = scaled(distribution_workload("Distribution-1", NUM_REQUESTS, seed=301))
    rows = []
    for label, scheduler in (
        ("Past-Future peak (Eq. 2-4)", PastFutureScheduler(reserved_fraction=0.03, seed=31, num_samples=4)),
        ("Naive footprint sum", NaiveSumScheduler(reserved_fraction=0.03, seed=31, num_samples=4)),
    ):
        config = ExperimentConfig(
            platform=platform,
            num_clients=NUM_CLIENTS,
            token_capacity_override=CAPACITY_7B_A100,
            chunked_prefill_tokens=PREFILL_CAP_SCALED,
        )
        result = run_experiment(config, workload, scheduler=scheduler)
        assert result.completed
        report = memory_report_from_run(result)
        rows.append(
            {
                "admission_rule": label,
                "decoding_steps": report.decoding_steps,
                "consumed_memory": f"{report.consumed_memory_fraction:.1%}",
                "evicted_requests": f"{report.evicted_request_fraction:.1%}",
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_future_memory(benchmark, platform_7b, results_dir):
    rows = benchmark.pedantic(run_pair, args=(platform_7b,), rounds=1, iterations=1)
    write_report(
        results_dir,
        "ablation_future_memory",
        render_table(rows, title="Ablation — future-memory peak (Eq. 2-4) vs naive final-footprint sum"),
    )
    peak_rule, naive_rule = rows
    # The naive sum under-utilises memory and needs more decoding steps.
    assert float(naive_rule["consumed_memory"].rstrip("%")) < float(peak_rule["consumed_memory"].rstrip("%"))
    assert naive_rule["decoding_steps"] > peak_rule["decoding_steps"]

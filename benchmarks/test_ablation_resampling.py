"""Ablation: conditional per-step resampling vs a static one-shot prediction.

The Past-Future scheduler re-samples every running request's predicted output
length from ``P(l | l > generated)`` at every iteration, so predictions can
only stay ahead of reality.  The ablated variant samples a length once at
admission and never updates it; once a request outlives its stale prediction
the scheduler undercounts the batch's future memory and can over-admit.  At
moderate load the measured difference is small (both rules are protected by
the reserved fraction); the check below asserts the conditional rule is never
meaningfully worse while the invariant it provides (predictions always ahead
of actual generation) is exercised by the unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import CAPACITY_7B_A100, PREFILL_CAP_SCALED, scaled, write_report
from repro.analysis.experiments import ExperimentConfig, memory_report_from_run, run_experiment
from repro.analysis.tables import render_table
from repro.core.past_future import PastFutureScheduler
from repro.core.predictor import OutputLengthPredictor
from repro.engine.request import Request
from repro.workloads.sharegpt import generate_sharegpt_o1_workload

NUM_REQUESTS = 200
NUM_CLIENTS = 64


class StaticPredictionScheduler(PastFutureScheduler):
    """Past-Future admission with a one-shot (non-updated) length prediction."""

    name = "static-prediction"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._static_predictions: dict[str, int] = {}

    def on_run_start(self) -> None:
        super().on_run_start()
        self._static_predictions = {}

    def _static_prediction(self, predictor: OutputLengthPredictor, request: Request) -> int:
        prediction = self._static_predictions.get(request.request_id)
        if prediction is None:
            prediction = int(predictor.predict_new(1)[0])
            prediction = min(prediction, request.spec.max_new_tokens)
            self._static_predictions[request.request_id] = prediction
        return prediction

    def _predicted_entries(self, predictor, requests):
        if not requests:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        current = np.array([r.current_context_tokens for r in requests], dtype=np.int64)
        remaining = np.array(
            [
                max(self._static_prediction(predictor, r) - r.generated_tokens, 0)
                for r in requests
            ],
            dtype=np.int64,
        )
        return current, remaining

    def _candidate_entry(self, predictor, request):
        prediction = self._static_prediction(predictor, request)
        prediction = max(prediction, request.generated_tokens + 1)
        return request.current_context_tokens, prediction - request.generated_tokens

    def describe(self) -> str:
        return f"static prediction (reserved={self.reserved_fraction:.0%})"


def run_pair(platform) -> list[dict]:
    workload = scaled(generate_sharegpt_o1_workload(NUM_REQUESTS, seed=311))
    rows = []
    for label, scheduler in (
        ("Conditional resampling (paper)", PastFutureScheduler(reserved_fraction=0.03, seed=32, num_samples=2)),
        ("Static one-shot prediction", StaticPredictionScheduler(reserved_fraction=0.03, seed=32, num_samples=2)),
    ):
        config = ExperimentConfig(
            platform=platform,
            num_clients=NUM_CLIENTS,
            token_capacity_override=CAPACITY_7B_A100,
            chunked_prefill_tokens=PREFILL_CAP_SCALED,
        )
        result = run_experiment(config, workload, scheduler=scheduler)
        assert result.completed
        report = memory_report_from_run(result)
        rows.append(
            {
                "prediction_rule": label,
                "decoding_steps": report.decoding_steps,
                "consumed_memory": f"{report.consumed_memory_fraction:.1%}",
                "evicted_requests": f"{report.evicted_request_fraction:.1%}",
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_resampling(benchmark, platform_7b, results_dir):
    rows = benchmark.pedantic(run_pair, args=(platform_7b,), rounds=1, iterations=1)
    write_report(
        results_dir,
        "ablation_resampling",
        render_table(rows, title="Ablation — conditional resampling vs static one-shot prediction"),
    )
    conditional, static = rows
    # The paper's conditional resampling is never meaningfully worse than the
    # static one-shot prediction on evictions or decoding steps.
    assert float(conditional["evicted_requests"].rstrip("%")) <= float(static["evicted_requests"].rstrip("%")) + 5.0
    assert conditional["decoding_steps"] <= static["decoding_steps"] * 1.05

"""Figure 1: consumed vs future-required memory and eviction rate per scheduler.

The paper's opening figure contrasts the three scheduler families on a
prefill-heavy and a decode-heavy workload: conservative scheduling leaves
memory idle, aggressive scheduling pushes the *future* requirement past the
capacity (causing evictions, especially on decode-heavy loads), and the
Past-Future scheduler keeps the future requirement just below capacity with
few evictions.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CAPACITY_7B_A100, PREFILL_CAP_SCALED, scaled, write_report
from repro.analysis.experiments import ExperimentConfig, memory_report_from_run, run_experiment
from repro.analysis.tables import render_table
from repro.workloads.distributions import distribution_workload

SCHEDULERS = {
    "Conservative": ("conservative", {}),
    "Aggressive": ("aggressive", {"watermark": 0.99}),
    "Past-Future": ("past-future", {"reserved_fraction": 0.03, "seed": 1}),
}
NUM_REQUESTS = 120
NUM_CLIENTS = 48


def _profile(platform, workload_name: str) -> list[dict]:
    workload = scaled(distribution_workload(workload_name, NUM_REQUESTS, seed=101))
    rows = []
    for label, (scheduler_name, kwargs) in SCHEDULERS.items():
        config = ExperimentConfig(
            platform=platform,
            scheduler_name=scheduler_name,
            scheduler_kwargs=kwargs,
            num_clients=NUM_CLIENTS,
            token_capacity_override=CAPACITY_7B_A100,
            chunked_prefill_tokens=PREFILL_CAP_SCALED,
        )
        result = run_experiment(config, workload)
        assert result.completed
        report = memory_report_from_run(result)
        rows.append(
            {
                "workload": workload_name,
                "scheduler": label,
                "consumed_memory": f"{report.consumed_memory_fraction:.1%}",
                "future_required": f"{report.future_required_fraction:.1%}",
                "eviction_rate": f"{report.evicted_request_fraction:.1%}",
            }
        )
    return rows


@pytest.mark.benchmark(group="fig01")
def test_fig01_memory_profiles(benchmark, platform_7b, results_dir):
    def run() -> list[dict]:
        rows = []
        # Distribution-1 is the decode-heavy panel, Distribution-3 the
        # prefill-heavy panel of Figure 1.
        rows.extend(_profile(platform_7b, "Distribution-1"))
        rows.extend(_profile(platform_7b, "Distribution-3"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        results_dir,
        "fig01_memory_profiles",
        render_table(rows, title="Figure 1 — memory profiles and eviction rate per scheduler"),
    )

    by_key = {(r["workload"], r["scheduler"]): r for r in rows}

    def pct(row, column):
        return float(row[column].rstrip("%"))

    for workload in ("Distribution-1", "Distribution-3"):
        conservative = by_key[(workload, "Conservative")]
        aggressive = by_key[(workload, "Aggressive")]
        past_future = by_key[(workload, "Past-Future")]
        # Conservative wastes memory; the other two use much more of it.
        assert pct(conservative, "consumed_memory") < pct(past_future, "consumed_memory")
        assert pct(conservative, "consumed_memory") < pct(aggressive, "consumed_memory")
        # Past-Future evicts less than aggressive on both panels.
        assert pct(past_future, "eviction_rate") <= pct(aggressive, "eviction_rate")
    # Decode-heavy load is where the aggressive scheduler's evictions explode.
    assert pct(by_key[("Distribution-1", "Aggressive")], "eviction_rate") > \
        pct(by_key[("Distribution-3", "Aggressive")], "eviction_rate")

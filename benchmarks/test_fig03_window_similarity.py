"""Figure 3: cosine similarity of output-length distributions across trace windows.

For each of the six service traces the paper partitions requests into windows
of 1000 and compares every pair of windows.  The reproduction checks the two
structural findings: adjacent windows are always highly similar (bright
diagonal), and single-service traces are additionally similar globally while
the mixed API trace is not.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.analysis.tables import render_table
from repro.metrics.similarity import window_similarity_matrix
from repro.workloads.burstgpt import FIGURE3_TRACES, figure3_trace

REQUESTS_PER_TRACE = 12_000
WINDOW_SIZE = 1000


@pytest.mark.benchmark(group="fig03")
def test_fig03_window_similarity(benchmark, results_dir):
    def run() -> list[dict]:
        rows = []
        for label in FIGURE3_TRACES:
            trace = figure3_trace(label, REQUESTS_PER_TRACE, seed=31)
            matrix = window_similarity_matrix(trace.output_lengths, window_size=WINDOW_SIZE)
            rows.append(
                {
                    "trace": label,
                    "windows": matrix.num_windows,
                    "adjacent_similarity": round(matrix.diagonal_mean(), 3),
                    "global_similarity": round(matrix.global_mean(), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        results_dir,
        "fig03_window_similarity",
        render_table(rows, title="Figure 3 — window similarity of output-length distributions"),
    )

    by_trace = {row["trace"]: row for row in rows}
    # Adjacent windows are similar for every trace (the diagonal pattern).
    for row in rows:
        assert row["adjacent_similarity"] > 0.8
    # Single-service traces are globally stable...
    for label, kind in FIGURE3_TRACES.items():
        if kind == "conversation":
            assert by_trace[label]["global_similarity"] > 0.85
    # ...while the mixed API trace drifts: its global similarity is clearly
    # below its adjacent-window similarity.
    api = by_trace["(b) BurstGPT API"]
    assert api["global_similarity"] < api["adjacent_similarity"] - 0.03

"""Figure 4: adjacent-window similarity across historical/running window sizes.

The paper sweeps the historical window (100-5000 requests) and the running
window (100-1000 requests) on the BurstGPT conversation and API traces and
reports the mean similarity of adjacent windows (dashed lines) and of all
window pairs (solid lines).  A historical window of 1000 balances both trace
types, which is the setting the scheduler adopts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.analysis.tables import render_table
from repro.metrics.similarity import adjacent_window_similarity
from repro.workloads.burstgpt import generate_api_trace, generate_conversation_trace

HISTORICAL_SIZES = (100, 200, 500, 1000, 2000)
RUNNING_SIZES = (100, 500, 1000)
TRACE_LENGTH = 30_000


@pytest.mark.benchmark(group="fig04")
def test_fig04_window_size_sweep(benchmark, results_dir):
    conversation = generate_conversation_trace(TRACE_LENGTH, seed=41).output_lengths
    api = generate_api_trace(TRACE_LENGTH, seed=42, drift_period=10_000).output_lengths

    def run() -> list[dict]:
        rows = []
        for trace_name, lengths in (("Conversation", conversation), ("API", api)):
            for historical in HISTORICAL_SIZES:
                for running in RUNNING_SIZES:
                    result = adjacent_window_similarity(
                        lengths, historical_window=historical, running_window=running
                    )
                    rows.append(
                        {
                            "trace": trace_name,
                            "historical_window": historical,
                            "running_window": running,
                            "diagonal_similarity": round(result.diagonal_mean, 3),
                            "global_similarity": round(result.global_mean, 3),
                        }
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        results_dir,
        "fig04_window_size_sweep",
        render_table(rows, title="Figure 4 — similarity vs historical/running window size"),
    )

    def rows_for(trace, historical=None):
        return [
            r for r in rows
            if r["trace"] == trace and (historical is None or r["historical_window"] == historical)
        ]

    # Diagonal (adjacent-window) similarity stays high for every window size.
    for row in rows:
        assert row["diagonal_similarity"] > 0.75
    # For the drifting API trace the diagonal beats the global mean, which is
    # the whole reason the scheduler uses *recent* history.
    for row in rows_for("API"):
        assert row["diagonal_similarity"] >= row["global_similarity"] - 1e-9
    # The paper's chosen setting (historical window 1000) works well for both
    # trace types.
    for trace in ("Conversation", "API"):
        for row in rows_for(trace, historical=1000):
            assert row["diagonal_similarity"] > 0.85

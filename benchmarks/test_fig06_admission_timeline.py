"""Figures 5 and 6: memory-demand timelines of admitting a request at different steps.

These are the paper's worked token-level examples.  Figure 5 shows that the
same queued request produces a different peak memory demand depending on when
it joins the batch.  Figure 6 contrasts the three scheduler families on a
21-token system: the aggressive scheduler admits at *t* and later overflows,
the conservative scheduler waits until a running request has fully finished,
and the future-aware scheduler admits at the first step whose projected peak
fits the capacity.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.analysis.tables import render_table
from repro.core.future_memory import BatchEntry, memory_timeline, peak_future_memory

#: The Figure 6 running batch at time t: (current KV tokens, remaining outputs).
RUNNING_BATCH = [BatchEntry(7, 1), BatchEntry(5, 2), BatchEntry(4, 3)]
#: The queued request: 2 prompt tokens, 2 output tokens.
NEW_REQUEST_PROMPT = 2
NEW_REQUEST_OUTPUT = 2
#: System token capacity in the example.
CAPACITY = 21


def _batch_after(steps: int) -> list[BatchEntry]:
    """The running batch as it will look ``steps`` decode iterations later."""
    entries = []
    for entry in RUNNING_BATCH:
        if entry.remaining_tokens > steps:
            entries.append(
                BatchEntry(entry.current_tokens + steps, entry.remaining_tokens - steps)
            )
    return entries


def admission_peaks(max_delay: int = 3) -> list[dict]:
    """Projected peak memory if the queued request is admitted after each delay."""
    rows = []
    for delay in range(max_delay + 1):
        batch = _batch_after(delay) + [BatchEntry(NEW_REQUEST_PROMPT, NEW_REQUEST_OUTPUT)]
        peak = peak_future_memory(batch)
        rows.append(
            {
                "admit_at": f"t+{delay}" if delay else "t",
                "projected_peak": peak,
                "fits_capacity": peak <= CAPACITY,
                "timeline": " ".join(str(v) for v in memory_timeline(batch)),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig06")
def test_fig06_admission_timeline(benchmark, results_dir):
    rows = benchmark.pedantic(admission_peaks, rounds=1, iterations=1)
    write_report(
        results_dir,
        "fig06_admission_timeline",
        render_table(rows, title="Figures 5/6 — projected peak memory vs admission step (capacity 21)"),
    )

    peaks = {row["admit_at"]: row["projected_peak"] for row in rows}
    fits = {row["admit_at"]: row["fits_capacity"] for row in rows}

    # Figure 6: admitting immediately (the aggressive choice) oversubscribes the
    # 21-token system (the paper's M*_t = 22 > 21), which forces an eviction...
    assert peaks["t"] == 22
    assert not fits["t"]
    # ...waiting one step (the future-aware choice) fits within the capacity...
    assert fits["t+1"]
    # ...and the conservative scheduler, which waits for worst-case headroom,
    # admits even later — also safe, but wasting decoding opportunity.
    assert fits["t+2"]
    # Figure 5's point: the projected peak strictly decreases as admission is
    # delayed while requests keep draining.
    assert peaks["t"] > peaks["t+1"] >= peaks["t+2"]

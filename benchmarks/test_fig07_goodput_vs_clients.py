"""Figure 7: goodput vs number of concurrent clients for each scheduler.

The paper sweeps the client count on four datasets (ShareGPT-o1 and
Distribution-1/2/3) and three model sizes.  The reproduction runs the
Llama-2-7B panel for all four datasets on the scaled A100 platform and checks
the curve shapes: all schedulers coincide at light load, the conservative
scheduler saturates lowest, the aggressive scheduler's goodput degrades under
heavy decode-heavy load, and the Past-Future scheduler reaches the highest
plateau.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    CAPACITY_7B_A100,
    PREFILL_CAP_SCALED,
    SLA_SCALED_SMALL,
    scaled,
    write_report,
)
from repro.analysis.sweep import best_goodput, scheduler_comparison_sweep
from repro.analysis.tables import render_curves
from repro.workloads.distributions import distribution_workload
from repro.workloads.sharegpt import generate_sharegpt_o1_workload

CLIENT_COUNTS = (8, 16, 32, 64, 128)
NUM_REQUESTS = 250

SCHEDULER_CONFIGS = {
    "Conservative": {"scheduler_name": "conservative"},
    "Aggressive": {"scheduler_name": "aggressive", "scheduler_kwargs": {"watermark": 0.99}},
    "Past-Future": {
        "scheduler_name": "past-future",
        "scheduler_kwargs": {"reserved_fraction": 0.03, "seed": 7, "num_samples": 4},
    },
}

DATASETS = {
    "ShareGPT-o1": lambda: generate_sharegpt_o1_workload(NUM_REQUESTS, seed=71),
    "Distribution-1": lambda: distribution_workload("Distribution-1", NUM_REQUESTS, seed=72),
    "Distribution-2": lambda: distribution_workload("Distribution-2", NUM_REQUESTS, seed=73),
    "Distribution-3": lambda: distribution_workload("Distribution-3", NUM_REQUESTS, seed=74),
}


def run_dataset(platform, dataset_name: str):
    workload = scaled(DATASETS[dataset_name]())
    return scheduler_comparison_sweep(
        platform,
        workload,
        client_counts=CLIENT_COUNTS,
        scheduler_configs=SCHEDULER_CONFIGS,
        sla=SLA_SCALED_SMALL,
        token_capacity_override=CAPACITY_7B_A100,
        chunked_prefill_tokens=PREFILL_CAP_SCALED,
    )


@pytest.mark.benchmark(group="fig07")
@pytest.mark.parametrize("dataset_name", list(DATASETS))
def test_fig07_goodput_vs_clients(benchmark, platform_7b, results_dir, dataset_name):
    curves = benchmark.pedantic(run_dataset, args=(platform_7b, dataset_name), rounds=1, iterations=1)
    report = render_curves(
        curves,
        x_label="clients",
        x_getter=lambda p: p.num_clients,
        y_getter=lambda p: p.goodput,
        title=f"Figure 7 — goodput (tokens/s) vs clients, Llama-2-7B, {dataset_name}",
    )
    write_report(results_dir, f"fig07_goodput_{dataset_name.lower()}", report)

    past_future = curves["Past-Future"]
    aggressive = curves["Aggressive"]
    conservative = curves["Conservative"]

    # At light load all schedulers perform alike (within 25%).
    light = {name: points[0].goodput for name, points in curves.items()}
    assert max(light.values()) <= 1.25 * max(min(light.values()), 1e-9)

    # The Past-Future scheduler reaches the best (or tied-best) peak goodput.
    assert best_goodput(past_future) >= 0.95 * best_goodput(aggressive)
    assert best_goodput(past_future) >= 0.95 * best_goodput(conservative)

    # Far past saturation the curves get noisy (every scheduler is mostly
    # TTFT-bound), but the Past-Future scheduler never collapses below the
    # baselines by a large margin.
    assert past_future[-1].goodput >= aggressive[-1].goodput * 0.7
    assert past_future[-1].goodput >= conservative[-1].goodput

    if dataset_name in ("ShareGPT-o1", "Distribution-1"):
        # Decode-heavy panels: the aggressive scheduler loses goodput at high
        # concurrency relative to its own peak (the rise-then-fall shape).
        assert aggressive[-1].goodput < best_goodput(aggressive)
        # And the Past-Future scheduler clearly beats it at the heaviest load.
        assert past_future[-1].goodput > aggressive[-1].goodput

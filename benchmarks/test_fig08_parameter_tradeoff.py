"""Figure 8: decoding steps vs evicted requests for different scheduler parameters.

The paper constructs a workload with a shifting output-length distribution
(ShareGPT-o1 followed by Distribution-1, -2 and -3) and sweeps each
scheduler's tuning knob: reserved memory for Past-Future, memory watermark for
the aggressive scheduler, and overcommit for the conservative scheduler.  The
headline result is that no setting of the baselines reaches the Past-Future
points: baselines either evict a lot or take many extra decoding steps,
whereas the Past-Future points sit near the oracle corner.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CAPACITY_7B_A100, PREFILL_CAP_SCALED, scaled, write_report
from repro.analysis.sweep import parameter_sweep
from repro.analysis.tables import render_table
from repro.workloads.mixed import generate_varying_load

REQUESTS_PER_PHASE = 45
NUM_CLIENTS = 48

CONFIGURATIONS = [
    ("Optimum", "oracle", {}),
    ("Past-Future reserved=3%", "past-future", {"reserved_fraction": 0.03, "seed": 81, "num_samples": 4}),
    ("Past-Future reserved=5%", "past-future", {"reserved_fraction": 0.05, "seed": 81, "num_samples": 4}),
    ("Past-Future reserved=10%", "past-future", {"reserved_fraction": 0.10, "seed": 81, "num_samples": 4}),
    ("Past-Future reserved=20%", "past-future", {"reserved_fraction": 0.20, "seed": 81, "num_samples": 4}),
    ("Aggressive watermark=99%", "aggressive", {"watermark": 0.99}),
    ("Aggressive watermark=90%", "aggressive", {"watermark": 0.90}),
    ("Aggressive watermark=80%", "aggressive", {"watermark": 0.80}),
    ("Aggressive watermark=70%", "aggressive", {"watermark": 0.70}),
    ("Conservative overcommit=100%", "conservative", {"overcommit": 1.00}),
    ("Conservative overcommit=110%", "conservative", {"overcommit": 1.10}),
    ("Conservative overcommit=120%", "conservative", {"overcommit": 1.20}),
    ("Conservative overcommit=135%", "conservative", {"overcommit": 1.35}),
]


@pytest.mark.benchmark(group="fig08")
def test_fig08_parameter_tradeoff(benchmark, platform_7b, results_dir):
    workload = scaled(generate_varying_load(REQUESTS_PER_PHASE, seed=88))

    def run():
        return parameter_sweep(
            platform_7b,
            workload,
            configurations=CONFIGURATIONS,
            num_clients=NUM_CLIENTS,
            token_capacity_override=CAPACITY_7B_A100,
            chunked_prefill_tokens=PREFILL_CAP_SCALED,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [p.as_row() for p in points]
    write_report(
        results_dir,
        "fig08_parameter_tradeoff",
        render_table(rows, title="Figure 8 — decoding steps vs evicted requests on the varying-distribution load"),
    )

    by_label = {p.parameter: p for p in points}
    optimum = by_label["Optimum"]
    past_future = [p for p in points if p.parameter.startswith("Past-Future")]
    aggressive = [p for p in points if p.parameter.startswith("Aggressive")]
    conservative = [p for p in points if p.parameter.startswith("Conservative")]

    # The oracle evicts nothing and no eviction-free baseline beats its steps.
    assert optimum.evicted_fraction == 0.0
    assert by_label["Conservative overcommit=100%"].decoding_steps >= optimum.decoding_steps

    # Every Past-Future setting keeps evictions moderate while staying within
    # ~35% of the oracle's decoding steps (the paper's recommended 3-5%
    # reserve stays within ~10%).
    for point in past_future:
        assert point.evicted_fraction < 0.35
        assert point.decoding_steps <= 1.35 * optimum.decoding_steps
    recommended = [p for p in past_future if "3%" in p.parameter or "5%" in p.parameter]
    for point in recommended:
        assert point.decoding_steps <= 1.12 * optimum.decoding_steps

    # The baselines cannot match that trade-off: any aggressive/conservative
    # setting that is as fast as the best Past-Future point evicts more, and
    # any setting that evicts as little is slower.
    best_pf_steps = min(p.decoding_steps for p in past_future)
    best_pf_evictions = min(p.evicted_fraction for p in past_future)
    for point in aggressive + conservative:
        comparable_speed = point.decoding_steps <= best_pf_steps * 1.02
        comparable_evictions = point.evicted_fraction <= max(best_pf_evictions, 0.02)
        assert not (comparable_speed and comparable_evictions), (
            f"{point.parameter} dominates the Past-Future trade-off"
        )

    # Within each family the knob trades steps against evictions monotonically
    # (more reserve / lower watermark -> fewer evictions, more steps).
    reserves = [p for p in past_future]
    assert reserves[0].evicted_fraction >= reserves[-1].evicted_fraction
    assert reserves[0].decoding_steps <= reserves[-1].decoding_steps
    watermarks = [p for p in aggressive]
    assert watermarks[0].evicted_fraction >= watermarks[-1].evicted_fraction

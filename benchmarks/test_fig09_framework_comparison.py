"""Figure 9: maximum throughput and SLA goodput of LightLLM vs other frameworks.

The paper compares LightLLM (Past-Future scheduler) against TGI, vLLM,
DeepSpeed-MII and TensorRT-LLM on the ShareGPT workload with
``max_new_tokens = 2048`` across several hardware platforms.

Unlike the other benches this one runs at the *full* platform scale: ShareGPT
outputs are short (a few hundred tokens), so full-length simulations stay
cheap, and the framework contrast depends on the gap between the 2048-token
worst case and the short real outputs — which scaling would distort.  The
checks assert the published shape: conservative-scheduler frameworks (TGI,
DeepSpeed-MII, TensorRT-LLM) leave throughput on the table; vLLM reaches high
raw throughput but surrenders goodput to eviction stalls at high concurrency;
LightLLM is competitive on throughput and best on goodput.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from repro.analysis.sweep import best_goodput, best_throughput, framework_sweep
from repro.analysis.tables import render_table
from repro.frameworks.profiles import FIGURE9_FRAMEWORKS, get_framework
from repro.serving.sla import SLA_SMALL_MODEL
from repro.workloads.sharegpt import generate_sharegpt_workload

NUM_REQUESTS = 600
CLIENT_COUNTS = (64, 256, 512)

PANELS = {
    "Llama-2-7B / A100": "platform_7b",
    "Llama-2-13B / A100": "platform_13b",
}


def run_panel(platform) -> list[dict]:
    workload = generate_sharegpt_workload(NUM_REQUESTS, seed=91, max_new_tokens=2048)
    profiles = [get_framework(name) for name in FIGURE9_FRAMEWORKS]
    curves = framework_sweep(
        profiles,
        platform,
        workload,
        client_counts=CLIENT_COUNTS,
        sla=SLA_SMALL_MODEL,
    )
    rows = []
    for name in FIGURE9_FRAMEWORKS:
        points = curves[name]
        rows.append(
            {
                "framework": name,
                "max_throughput_tok_s": round(best_throughput(points), 1),
                "max_goodput_tok_s": round(best_goodput(points), 1),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig09")
@pytest.mark.parametrize("panel", list(PANELS))
def test_fig09_framework_comparison(benchmark, request, results_dir, panel):
    fixture_name = PANELS[panel]
    platform = request.getfixturevalue(fixture_name)
    rows = benchmark.pedantic(run_panel, args=(platform,), rounds=1, iterations=1)
    write_report(
        results_dir,
        f"fig09_frameworks_{fixture_name}",
        render_table(rows, title=f"Figure 9 — max throughput and goodput per framework, {panel}, ShareGPT"),
    )

    by_name = {row["framework"]: row for row in rows}
    lightllm = by_name["LightLLM"]
    vllm = by_name["vLLM"]
    conservative_frameworks = [by_name["TGI"], by_name["DeepSpeed-MII"], by_name["TensorRT-LLM"]]

    # LightLLM achieves the best goodput of all frameworks.
    assert lightllm["max_goodput_tok_s"] >= max(r["max_goodput_tok_s"] for r in rows) * 0.999

    # Conservative-scheduler frameworks cannot reach the throughput of the
    # aggressive/past-future ones (their worst-case admission idles memory).
    for row in conservative_frameworks:
        assert row["max_throughput_tok_s"] < lightllm["max_throughput_tok_s"]
        assert row["max_goodput_tok_s"] < lightllm["max_goodput_tok_s"]

    # vLLM is competitive on raw throughput (within 15% of LightLLM or above)
    # and LightLLM matches it while also holding the best goodput.  (The
    # paper's larger vLLM goodput degradation on ShareGPT reproduces only
    # weakly here because the simulator's preemption stalls are short on this
    # short-output workload; the degradation is clearly visible in the
    # decode-heavy Figure 7 panels — see EXPERIMENTS.md.)
    assert vllm["max_throughput_tok_s"] >= 0.85 * lightllm["max_throughput_tok_s"]
    assert lightllm["max_throughput_tok_s"] >= 0.95 * vllm["max_throughput_tok_s"]
    assert lightllm["max_goodput_tok_s"] >= 0.99 * vllm["max_goodput_tok_s"]

"""Figure 10 (repo extension): fleet goodput by routing policy under bursts.

The paper evaluates past-future admission on a single engine; this benchmark
opens the fleet axis the ROADMAP targets.  Four replicas of the scaled
Llama-2-7B platform sit behind a router and serve a bursty ShareGPT-o1 trace
(on/off modulated Poisson arrivals).  Each replica runs the *aggressive*
(vLLM-style watermark) admission scheduler — the common production baseline —
so placement decides whether a replica's batch outgrows its KV pool and
thrashes through evictions.

The comparison replays the identical stamped trace through four routing
policies.  The headline check: the memory-aware router, which reuses the
paper's future-memory equations (Eq. 2–4) as a *placement* signal, achieves
strictly higher fleet goodput than load-blind round-robin on bursty traffic.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    CAPACITY_7B_A100,
    PREFILL_CAP_SCALED,
    SCALE,
    scaled,
    write_report,
)
from repro.analysis.cluster_sweep import (
    ClusterExperimentConfig,
    fleet_table,
    router_comparison_sweep,
)
from repro.analysis.tables import render_table
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload

NUM_REPLICAS = 4
NUM_REQUESTS = 400

#: Scaled-cluster SLA.  TTFT is tightened from the paper's 10 s for the same
#: reason conftest tightens MTPOT: scaling request lengths by 1/16 shrinks
#: both service times and burst-induced queueing delays proportionally, so a
#: 2.5 s TTFT bound preserves the full-scale separation between "absorbed the
#: burst" and "queued behind a memory-bound replica".
SLA_SCALED_CLUSTER = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)

#: Two bursty-traffic configurations (workload seed, arrival seed).  Both
#: alternate ~1 req/s lulls with 100 req/s waves of 80 requests, which
#: oversubscribes the fleet's KV capacity during every wave.
BURSTY_CONFIGS = {
    "burst-a": (71, 9),
    "burst-b": (73, 11),
}

#: Each replica gets 1/8 of the scaled 7B capacity: a four-replica fleet with
#: half the aggregate pool, so burst waves create genuine memory pressure.
REPLICA_CAPACITY = CAPACITY_7B_A100 // 8


def bursty_workload(workload_seed: int, arrival_seed: int):
    workload = scaled(generate_sharegpt_o1_workload(NUM_REQUESTS, seed=workload_seed))
    return assign_bursty_arrivals(
        workload,
        base_rate=1.0,
        burst_rate=100.0,
        burst_length=80,
        cycle_length=100,
        seed=arrival_seed,
    )


def run_config(platform, workload_seed: int, arrival_seed: int):
    workload = bursty_workload(workload_seed, arrival_seed)
    config = ClusterExperimentConfig(
        platform=platform,
        num_replicas=NUM_REPLICAS,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=REPLICA_CAPACITY,
        chunked_prefill_tokens=PREFILL_CAP_SCALED,
    )
    return router_comparison_sweep(config, workload)


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("config_name", list(BURSTY_CONFIGS))
def test_fig10_cluster_routing(benchmark, platform_7b, results_dir, config_name):
    workload_seed, arrival_seed = BURSTY_CONFIGS[config_name]
    results = benchmark.pedantic(
        run_config, args=(platform_7b, workload_seed, arrival_seed), rounds=1, iterations=1
    )
    report = render_table(
        fleet_table(results, SLA_SCALED_CLUSTER),
        title=(
            f"Figure 10 — fleet goodput by router, {NUM_REPLICAS}x Llama-2-7B "
            f"(1/{int(1 / SCALE)} scale), bursty ShareGPT-o1 [{config_name}]"
        ),
    )
    write_report(results_dir, f"fig10_cluster_routing_{config_name}", report)

    # Every run drains the full trace with nothing lost or left behind.
    for result in results.values():
        assert result.completed
        assert result.submitted_requests == NUM_REQUESTS
        assert result.routed_requests + len(result.rejected) == NUM_REQUESTS
        assert len(result.finished_requests) == NUM_REQUESTS

    goodput = {name: r.goodput(SLA_SCALED_CLUSTER) for name, r in results.items()}

    # Headline: future-memory-aware placement strictly beats load-blind
    # round-robin when bursts oversubscribe the fleet's KV capacity.
    assert goodput["memory-aware"] > goodput["round-robin"]

    # The memory-aware router is the best (or tied-best) policy overall.
    assert goodput["memory-aware"] >= 0.99 * max(goodput.values())

    # Placement only redistributes work; raw throughput barely moves while
    # goodput separates, i.e. the win comes from SLA compliance, not extra
    # tokens.
    throughput = {name: r.throughput() for name, r in results.items()}
    assert max(throughput.values()) <= 1.05 * min(throughput.values())


@pytest.mark.benchmark(group="fig10")
def test_fig10_light_load_routers_tie(benchmark, platform_7b, results_dir):
    """Sanity panel: with ample capacity and gentle traffic all routers tie."""

    def run_light():
        workload = assign_bursty_arrivals(
            scaled(generate_sharegpt_o1_workload(120, seed=75)),
            base_rate=2.0,
            burst_rate=20.0,
            seed=13,
        )
        config = ClusterExperimentConfig(
            platform=platform_7b,
            num_replicas=NUM_REPLICAS,
            scheduler_name="aggressive",
            scheduler_kwargs={"watermark": 0.95},
            token_capacity_override=CAPACITY_7B_A100,
            chunked_prefill_tokens=PREFILL_CAP_SCALED,
        )
        return router_comparison_sweep(config, workload)

    results = benchmark.pedantic(run_light, rounds=1, iterations=1)
    goodput = {name: r.goodput(SLA_SCALED_CLUSTER) for name, r in results.items()}
    assert max(goodput.values()) <= 1.05 * max(min(goodput.values()), 1e-9)
    report = render_table(
        fleet_table(results, SLA_SCALED_CLUSTER),
        title="Figure 10 (light load) — routers indistinguishable below saturation",
    )
    write_report(results_dir, "fig10_cluster_routing_light", report)

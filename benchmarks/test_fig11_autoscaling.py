"""Figure 11 (repo extension): fleet efficiency by autoscaling policy.

Figure 10 fixed the fleet and varied the router; this benchmark fixes the
router and varies *how many replicas exist*.  An elastic fleet of the scaled
Llama-2-7B platform serves a bursty ShareGPT-o1 trace under three
autoscaling policies (:mod:`repro.serving.autoscale`):

* **static** — peak-provisioned at ``MAX_REPLICAS`` for the whole run, the
  baseline a capacity planner would buy to survive the worst burst;
* **reactive** — threshold scaling on the windowed saturation rate: it only
  grows *after* arrivals observe saturated replicas, so every scale-up pays
  the full warm-up delay inside the burst;
* **predictive** — the paper's future-memory forecast lifted to the fleet
  axis: queued prompts plus predicted output growth (Eq. 2–4 over the
  sliding output-length window) make a burst's KV demand visible before any
  replica saturates, so capacity is warming while the burst is still
  building.

The headline metric is **goodput per replica-second** — SLA-compliant tokens
per unit of provisioned fleet cost.  The expected ordering under bursty
traffic, checked on every trace: predictive > reactive > static.  Static
wastes replica-seconds idling through every lull; reactive saves cost but
bleeds goodput to warm-up lag; predictive keeps near-static SLA attainment
at roughly half the replica-seconds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    CAPACITY_7B_A100,
    PREFILL_CAP_SCALED,
    SCALE,
    scaled,
    write_report,
)
from repro.analysis.autoscale_sweep import (
    AutoscaleExperimentConfig,
    autoscale_comparison_sweep,
    autoscale_table,
)
from repro.analysis.tables import render_table
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload

NUM_REQUESTS = 400
MAX_REPLICAS = 6

#: Same tightened SLA as the fig10 cluster benchmark (see its rationale).
SLA_SCALED_CLUSTER = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)

#: Two bursty-traffic configurations (workload seed, arrival seed).  Each
#: cycle is an ~8 s wave of 80 requests at 10 req/s followed by a ~40 s lull
#: at 0.5 req/s — waves oversubscribe a small fleet's KV capacity, lulls
#: leave a peak-provisioned fleet mostly idle.
BURSTY_CONFIGS = {
    "burst-a": (71, 9),
    "burst-b": (73, 11),
}

#: Each replica gets 1/8 of the scaled 7B capacity (as in fig10).
REPLICA_CAPACITY = CAPACITY_7B_A100 // 8

#: Elastic policies must commit capacity ~3 s before it can serve — roughly
#: a third of a burst wave, so forecasting ahead of saturation matters.
WARMUP_DELAY = 3.0

#: Constructor overrides giving each elastic policy a fair shot at this
#: trace: reactive triggers early-ish with a short cooldown, predictive uses
#: the scaled preset max output (2048/16) as its cold-start length.
POLICY_KWARGS = {
    "reactive": {"scale_up_threshold": 0.25, "scale_down_threshold": 0.02, "cooldown": 2.0},
    "predictive": {
        "target_utilization": 0.8,
        "scale_down_cooldown": 6.0,
        "default_length": int(2048 * SCALE),
    },
}


def bursty_workload(workload_seed: int, arrival_seed: int):
    workload = scaled(generate_sharegpt_o1_workload(NUM_REQUESTS, seed=workload_seed))
    return assign_bursty_arrivals(
        workload,
        base_rate=0.5,
        burst_rate=10.0,
        burst_length=80,
        cycle_length=100,
        seed=arrival_seed,
    )


def run_config(platform, workload_seed: int, arrival_seed: int):
    workload = bursty_workload(workload_seed, arrival_seed)
    config = AutoscaleExperimentConfig(
        platform=platform,
        router="least-outstanding",
        initial_replicas=2,
        min_replicas=1,
        max_replicas=MAX_REPLICAS,
        decision_interval=0.5,
        warmup_delay=WARMUP_DELAY,
        sample_window=4.0,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=REPLICA_CAPACITY,
        chunked_prefill_tokens=PREFILL_CAP_SCALED,
    )
    return autoscale_comparison_sweep(config, workload, policy_kwargs=POLICY_KWARGS)


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("config_name", list(BURSTY_CONFIGS))
def test_fig11_autoscaling(benchmark, platform_7b, results_dir, config_name):
    workload_seed, arrival_seed = BURSTY_CONFIGS[config_name]
    results = benchmark.pedantic(
        run_config, args=(platform_7b, workload_seed, arrival_seed), rounds=1, iterations=1
    )
    report = render_table(
        autoscale_table(results, SLA_SCALED_CLUSTER),
        title=(
            f"Figure 11 — fleet efficiency by autoscaling policy, Llama-2-7B "
            f"(1/{int(1 / SCALE)} scale), warmup {WARMUP_DELAY:g}s, "
            f"bursty ShareGPT-o1 [{config_name}]"
        ),
    )
    write_report(results_dir, f"fig11_autoscaling_{config_name}", report)

    # Every run drains the full trace with nothing lost or left behind.
    for result in results.values():
        assert result.completed
        assert result.submitted_requests == NUM_REQUESTS
        assert len(result.finished_requests) == NUM_REQUESTS

    # Scale-down never drops admitted work: every retired replica finished
    # all of its resident requests before retiring.
    for result in results.values():
        retired = {life.replica_id: life for life in result.lifetimes if life.retired_at is not None}
        for replica_id, life in retired.items():
            replica = result.replicas[replica_id]
            assert all(r.is_finished for r in replica.requests)
            assert all(r.finish_time <= life.retired_at for r in replica.requests)

    # The static baseline really is static: the provisioned fleet never moves.
    assert all(s.provisioned == MAX_REPLICAS for s in results["static"].fleet_timeline)
    # The elastic policies really flexed: both grew beyond their initial two
    # replicas and paid substantially fewer replica-seconds than static.
    for name in ("reactive", "predictive"):
        assert max(s.provisioned for s in results[name].fleet_timeline) > 2
        assert results[name].replica_seconds < 0.8 * results["static"].replica_seconds

    efficiency = {
        name: result.goodput_per_replica_second(SLA_SCALED_CLUSTER)
        for name, result in results.items()
    }

    # Headline: forecast-driven elasticity beats saturation-chasing beats
    # peak provisioning on goodput per replica-second, with real margins.
    assert efficiency["predictive"] > 1.05 * efficiency["reactive"]
    assert efficiency["reactive"] > 1.15 * efficiency["static"]

    # The predictive win is not load shedding: it keeps near-static SLA
    # attainment while the reactive fleet bleeds compliance to warm-up lag.
    attainment = {
        name: result.fleet_summary(SLA_SCALED_CLUSTER).sla_attainment
        for name, result in results.items()
    }
    assert attainment["predictive"] >= 0.9
    assert attainment["predictive"] > attainment["reactive"]

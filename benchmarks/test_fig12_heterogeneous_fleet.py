"""Figure 12 (repo extension): heterogeneous fleets and SLA classes.

Figures 10/11 route over *identical* replicas; real clusters mix accelerator
generations.  This benchmark builds a mixed fleet — two Llama-2-7B/A100
replicas plus one Llama-2-7B/RTX-4090 replica, whose KV capacity is ~6.6x
smaller and whose decode bandwidth is ~2x lower — and serves a diurnal
ShareGPT-o1 trace (sinusoidal rate envelope over bursty on/off arrivals,
:func:`repro.workloads.arrivals.assign_diurnal_arrivals`) carrying two SLA
classes: 70% ``interactive`` requests under tight deadlines and 30% ``batch``
requests under loose ones.

The capacities are scaled per replica with ``capacity_scale`` (not one
absolute override), so the A100:4090 capacity *ratio* — the thing a
capacity-blind router gets wrong — survives the scaling.

The comparison replays the identical stamped trace through all four routers.
The headline check: the **capacity-normalised** memory-aware router (headroom
as a fraction of each replica's own capacity, weighted by relative decode
speed) beats **capacity-blind** least-outstanding routing on per-class
goodput-per-replica-second for *both* classes.  Least-outstanding equalises
request counts, so roughly a third of the trace lands on the small 4090 pool
and thrashes through evictions; the normalised router sends the 4090 only
what fits.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, write_report
from repro.analysis.cluster_sweep import (
    ClusterExperimentConfig,
    fleet_class_table,
    fleet_table,
    router_comparison_sweep,
)
from repro.analysis.tables import render_table
from repro.hardware.platform import paper_platforms
from repro.serving.sla import two_class_sla
from repro.workloads.arrivals import assign_diurnal_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload
from repro.workloads.spec import (
    SLA_CLASS_BATCH,
    SLA_CLASS_INTERACTIVE,
    assign_sla_classes,
    scale_workload,
)

NUM_REQUESTS = 400

#: Per-replica capacity multiplier.  1/32 leaves the A100 replicas ~3.8k KV
#: slots and the 4090 ~580 — big enough that every scaled request physically
#: fits the 4090 (max prompt 256 + max output 256 tokens), small enough that
#: routing a third of the trace there melts it.
CAPACITY_SCALE = 1.0 / 32.0

#: Two-class SLA: interactive deadlines match the fig10 scaled-cluster SLA;
#: batch tolerates 4x the TTFT and 3x the inter-token gap.
SLA_TWO_CLASS = two_class_sla(interactive=(2.5, 0.5), batch=(10.0, 1.5))

#: Class mix stamped onto the trace.
CLASS_FRACTIONS = {SLA_CLASS_INTERACTIVE: 0.7, SLA_CLASS_BATCH: 0.3}

#: Diurnal-traffic configurations (workload seed, class seed, arrival seed).
#: The envelope swings +-60% over a 60 s period on top of 1->60 req/s on/off
#: bursts, so the fleet sees slow tides and fast waves at once.
DIURNAL_CONFIGS = {
    "diurnal-a": (71, 5, 9),
    "diurnal-b": (73, 6, 11),
}


def mixed_fleet():
    """Two A100 replicas plus one RTX-4090 replica, all serving 7B."""
    return paper_platforms("7b-a100", "7b-a100", "7b-4090")


def diurnal_workload(workload_seed: int, class_seed: int, arrival_seed: int):
    workload = scale_workload(
        generate_sharegpt_o1_workload(NUM_REQUESTS, seed=workload_seed, max_new_tokens=4096),
        SCALE,
    )
    workload = assign_sla_classes(workload, CLASS_FRACTIONS, seed=class_seed)
    return assign_diurnal_arrivals(
        workload,
        base_rate=1.0,
        burst_rate=60.0,
        period=60.0,
        amplitude=0.6,
        burst_length=60,
        cycle_length=100,
        seed=arrival_seed,
    )


def run_config(workload_seed: int, class_seed: int, arrival_seed: int):
    workload = diurnal_workload(workload_seed, class_seed, arrival_seed)
    config = ClusterExperimentConfig(
        platforms=mixed_fleet(),
        num_replicas=3,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        capacity_scale=CAPACITY_SCALE,
        chunked_prefill_tokens=int(8192 * SCALE),
    )
    return router_comparison_sweep(config, workload)


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("config_name", list(DIURNAL_CONFIGS))
def test_fig12_heterogeneous_fleet(benchmark, results_dir, config_name):
    seeds = DIURNAL_CONFIGS[config_name]
    results = benchmark.pedantic(run_config, args=seeds, rounds=1, iterations=1)
    title = (
        f"Figure 12 — mixed 2x A100 + 1x RTX-4090 fleet (1/{int(1 / SCALE)} scale), "
        f"diurnal ShareGPT-o1, {SLA_TWO_CLASS.describe()} [{config_name}]"
    )
    report = render_table(fleet_table(results, SLA_TWO_CLASS), title=title)
    report += "\n\n" + render_table(
        fleet_class_table(results, SLA_TWO_CLASS),
        title=f"Figure 12 — per-SLA-class breakdown [{config_name}]",
    )
    write_report(results_dir, f"fig12_heterogeneous_fleet_{config_name}", report)

    # Every run drains the full trace with nothing lost or left behind.
    for result in results.values():
        assert result.completed
        assert result.submitted_requests == NUM_REQUESTS
        assert len(result.finished_requests) == NUM_REQUESTS

    per_class = {
        name: result.per_class_goodput_per_replica_second(SLA_TWO_CLASS)
        for name, result in results.items()
    }
    for goodputs in per_class.values():
        assert set(goodputs) == {SLA_CLASS_INTERACTIVE, SLA_CLASS_BATCH}

    # Headline: capacity-normalised memory-aware routing beats capacity-blind
    # least-outstanding on per-class goodput-per-replica-second for BOTH
    # classes, with a real interactive-class margin.
    for sla_class in (SLA_CLASS_INTERACTIVE, SLA_CLASS_BATCH):
        assert per_class["memory-aware"][sla_class] >= per_class["least-outstanding"][sla_class]
    assert (
        per_class["memory-aware"][SLA_CLASS_INTERACTIVE]
        > 1.05 * per_class["least-outstanding"][SLA_CLASS_INTERACTIVE]
    )

    # The memory-aware router is the best (or tied-best) policy per class.
    for sla_class in (SLA_CLASS_INTERACTIVE, SLA_CLASS_BATCH):
        best = max(goodputs[sla_class] for goodputs in per_class.values())
        assert per_class["memory-aware"][sla_class] >= 0.99 * best

    # Mechanism check: the 4090 replica (index 2, the small pool) is where
    # capacity-blind routing loses.  Least-outstanding equalises counts and
    # thrashes it through evictions; the normalised router places a far
    # smaller share there and induces none.
    blind_4090 = results["least-outstanding"].replicas[2]
    aware_4090 = results["memory-aware"].replicas[2]
    assert len(aware_4090.requests) < len(blind_4090.requests)
    assert aware_4090.total_evictions == 0
    assert blind_4090.total_evictions > 0

    # Interactive requests meet their tight deadlines under normalised
    # routing even on the mixed fleet.
    attainment = results["memory-aware"].fleet_summary(SLA_TWO_CLASS).per_class
    assert attainment[SLA_CLASS_INTERACTIVE].sla_attainment >= 0.99

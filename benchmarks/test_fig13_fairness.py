"""Figure 13 (repo extension): multi-tenant fairness under a heavy-tail load.

The paper's admission schedulers decide *when* to admit but serve the queue
FCFS, so a couple of abusive users who hold over half of all traffic bury
everyone else's requests behind their own.  This benchmark stamps a scaled
ShareGPT trace with a heavy-tail tenant population (two abusive users holding
60% of requests over a Zipf tail of ordinary users), drives it open-loop well
past the single engine's service rate, and replays the identical trace
through four admission stacks:

* **fcfs** — the aggressive (vLLM-watermark) baseline: arrival order rules;
* **vtc** — the Virtual Token Counter fair scheduler, which admits the
  lowest-virtual-counter tenant first;
* **weighted-vtc** — the same with double weight for one ordinary user (the
  "paid tier" knob);
* **vtc+throttle** — VTC plus a per-user RPM throttle in front of admission.

The headline: VTC materially improves Jain's fairness index over per-user
SLA-compliant tokens (the number that differentiates schedulers on a drained
run) at equal or better total goodput — reordering *who* is served promptly,
not serving less.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import (
    CAPACITY_7B_A100,
    PREFILL_CAP_SCALED,
    SCALE,
    scaled,
    write_report,
)
from repro.analysis.tables import render_table
from repro.schedulers import create_scheduler
from repro.serving import OverloadThrottle, REASON_THROTTLED, ServingSimulator
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_poisson_arrivals
from repro.workloads.sharegpt import generate_sharegpt_workload
from repro.workloads.tenants import assign_tenants, generate_tenant_population

NUM_REQUESTS = 1600
NUM_USERS = 24
NUM_APPS = 3
ABUSIVE_USERS = 2
ABUSIVE_SHARE = 0.6
REQUEST_RATE = 100.0

#: Scaled-engine SLA, tightened like fig10's for the same scaling reason.
SLA_SCALED_FAIR = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)

#: A sixteenth of the scaled 7B pool: the arrival waves oversubscribe the
#: engine severely, so the waiting queue stays deep and admission *order*
#: (not just admission timing) decides who meets the SLA.
ENGINE_CAPACITY = CAPACITY_7B_A100 // 16


def fairness_workload():
    population = generate_tenant_population(
        NUM_USERS,
        num_apps=NUM_APPS,
        abusive_users=ABUSIVE_USERS,
        abusive_share=ABUSIVE_SHARE,
    )
    workload = assign_tenants(
        scaled(generate_sharegpt_workload(NUM_REQUESTS, seed=21)), population, seed=13
    )
    return assign_poisson_arrivals(workload, request_rate=REQUEST_RATE, seed=9)


def run_stack(platform, scheduler_name: str, throttle=None, **scheduler_kwargs):
    simulator = ServingSimulator(
        platform,
        create_scheduler(scheduler_name, watermark=0.95, **scheduler_kwargs),
        token_capacity_override=ENGINE_CAPACITY,
        chunked_prefill_tokens=PREFILL_CAP_SCALED,
        throttle=throttle,
    )
    return simulator.run_open_loop(fairness_workload())


def run_all(platform):
    return {
        "fcfs": run_stack(platform, "aggressive"),
        "vtc": run_stack(platform, "vtc"),
        "weighted-vtc": run_stack(platform, "weighted-vtc", weights={"user-0002": 2.0}),
        # 300 admitted requests per user per minute: only the two abusive
        # users (~480 requests each inside the burst window) ever hit it.
        "vtc+throttle": run_stack(
            platform, "vtc", throttle=OverloadThrottle(user_rpm=300)
        ),
    }


@pytest.mark.benchmark(group="fig13")
def test_fig13_fairness(benchmark, platform_7b, results_dir):
    results = benchmark.pedantic(run_all, args=(platform_7b,), rounds=1, iterations=1)
    fairness = {
        name: result.fairness_summary(SLA_SCALED_FAIR) for name, result in results.items()
    }
    rows = [
        {
            "stack": name,
            "goodput_tok_s": round(result.goodput(SLA_SCALED_FAIR), 1),
            "throughput_tok_s": round(result.throughput(), 1),
            "rejected": len(result.rejected),
            **{k: v for k, v in fairness[name].as_row().items() if k != "group_by"},
        }
        for name, result in results.items()
    ]
    report = render_table(
        rows,
        title=(
            f"Figure 13 — multi-tenant fairness, Llama-2-7B (1/{int(1 / SCALE)} scale), "
            f"{NUM_USERS} users ({ABUSIVE_USERS} abusive @ {ABUSIVE_SHARE:.0%}), "
            f"Poisson {REQUEST_RATE:.0f} req/s"
        ),
    )
    write_report(results_dir, "fig13_fairness", report)

    # Conservation: every stack accounts for the whole trace.
    for name, result in results.items():
        assert result.completed, name
        assert len(result.requests) + len(result.rejected) == NUM_REQUESTS, name

    jain = {name: summary.jain_goodput for name, summary in fairness.items()}
    goodput = {name: result.goodput(SLA_SCALED_FAIR) for name, result in results.items()}

    # Headline: VTC materially improves Jain's index over FCFS...
    assert jain["vtc"] >= jain["fcfs"] + 0.2, (jain["vtc"], jain["fcfs"])
    # ...at equal-or-better goodput (fairness here is not purchased with
    # tokens: reordering admits compliant light-tenant work the FCFS queue
    # would have timed out).
    assert goodput["vtc"] >= 0.95 * goodput["fcfs"], (goodput["vtc"], goodput["fcfs"])

    # The weighted variant stays in the same fairness regime (it redistributes
    # toward its weighted tenant without collapsing back to FCFS).
    assert jain["weighted-vtc"] >= jain["fcfs"] + 0.1

    # The throttle sheds some of the abusive flood (rejects exist and are all
    # stamped "throttled"), and what remains is served at least as fairly.
    throttled = results["vtc+throttle"]
    assert throttled.rejected
    assert throttled.reject_reasons == {REASON_THROTTLED: len(throttled.rejected)}
    assert jain["vtc+throttle"] >= jain["vtc"] - 0.05

    # FCFS starves someone outright under this load; VTC's max/min served
    # ratio stays finite or no worse than the baseline's.
    fcfs_ratio = fairness["fcfs"].service_ratio
    vtc_ratio = fairness["vtc"].service_ratio
    assert vtc_ratio <= fcfs_ratio or math.isinf(fcfs_ratio)

"""Figure 14 (repo extension): fleet goodput under failures, with and without recovery.

The paper's evaluation assumes replicas never die; this benchmark opens the
robustness axis.  The fig10 fleet (four scaled Llama-2-7B replicas behind the
memory-aware router, bursty ShareGPT-o1 trace) is replayed three times:

* **no-failure** — the untouched baseline;
* **recovery** — a seeded :class:`~repro.serving.faults.FaultPlan` crashes
  two replicas mid-burst and slows a third by 3x for 25 s, with the full
  recovery stack on: crashed work re-dispatches through the retry policy,
  and dead capacity is replaced (10 s boot);
* **no-recovery** — the *same* fault schedule with the recovery stack off
  (no retries, no replacements): crashed work is rejected with a typed
  reason and the fleet stays short two replicas.

Headline checks: recovery preserves at least 0.8x the no-failure goodput and
finishes every request, while the no-recovery run both loses requests
outright and lands strictly below the recovered goodput.  The same seeded
plan also yields bit-identical results across two runs — chaos here is a
reproducible experiment, not noise.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    CAPACITY_7B_A100,
    PREFILL_CAP_SCALED,
    SCALE,
    scaled,
    write_report,
)
from repro.analysis.perf import cluster_fingerprint
from repro.analysis.tables import render_table
from repro.metrics import summarize_availability
from repro.serving.cluster import ClusterSimulator
from repro.serving.faults import (
    REASON_REPLICA_CRASH,
    FaultPlan,
    ReplicaCrash,
    RetryPolicy,
    Straggler,
)
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload

NUM_REPLICAS = 4
NUM_REQUESTS = 400

#: Relaxed relative to fig10's 2.5 s TTFT: a crashed request's clock keeps
#: running from its *original* arrival while it waits out the retry backoff
#: and re-prefills, so the SLA must leave room for one recovery round trip
#: (though not for unbounded retry storms).
SLA_RECOVERY = SLASpec(ttft_limit=10.0, mtpot_limit=1.0)

#: Floor on recovered goodput relative to the no-failure baseline.
RECOVERY_GOODPUT_FLOOR = 0.8


def fig14_workload():
    """The fig10 bursty trace (same seeds), reused as the chaos substrate."""
    return assign_bursty_arrivals(
        scaled(generate_sharegpt_o1_workload(NUM_REQUESTS, seed=71)),
        base_rate=1.0,
        burst_rate=100.0,
        burst_length=80,
        cycle_length=100,
        seed=9,
    )


def fault_plan(recover: bool) -> FaultPlan:
    """Two crashes + one straggler; ``recover`` toggles the recovery stack."""
    return FaultPlan(
        crashes=[ReplicaCrash(time=20.0, replica=1), ReplicaCrash(time=55.0, replica=2)],
        stragglers=[Straggler(start=35.0, duration=25.0, replica=0, slowdown=3.0)],
        seed=23,
        retry_policy=RetryPolicy(base_delay=0.1, max_attempts=5, seed=23) if recover else None,
        migrate_on_drain=recover,
        replace_crashed=recover,
        replacement_warmup=10.0,
    )


def run_fleet(platform, faults: FaultPlan | None):
    simulator = ClusterSimulator(
        platform=platform,
        num_replicas=NUM_REPLICAS,
        router="memory-aware",
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=CAPACITY_7B_A100 // 8,
        chunked_prefill_tokens=PREFILL_CAP_SCALED,
        faults=faults,
    )
    return simulator.run_open_loop(fig14_workload())


@pytest.mark.benchmark(group="fig14")
def test_fig14_failure_recovery(benchmark, platform_7b, results_dir):
    def run_all():
        return (
            run_fleet(platform_7b, None),
            run_fleet(platform_7b, fault_plan(recover=True)),
            run_fleet(platform_7b, fault_plan(recover=False)),
        )

    baseline, recovered, unrecovered = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        {
            "mode": name,
            "goodput tok/s": f"{r.goodput(SLA_RECOVERY):.1f}",
            "finished": len(r.finished_requests),
            "failed": len(r.failed),
            "retries": r.retries,
            "rejected": len(r.rejected),
        }
        for name, r in (
            ("no-failure", baseline),
            ("recovery", recovered),
            ("no-recovery", unrecovered),
        )
    ]
    report = render_table(
        rows,
        title=(
            f"Figure 14 — goodput under 2 crashes + 1 straggler, {NUM_REPLICAS}x "
            f"Llama-2-7B (1/{int(1 / SCALE)} scale), bursty ShareGPT-o1"
        ),
    )
    write_report(results_dir, "fig14_failure_recovery", report)

    goodput_base = baseline.goodput(SLA_RECOVERY)
    goodput_rec = recovered.goodput(SLA_RECOVERY)
    goodput_norec = unrecovered.goodput(SLA_RECOVERY)

    # Headline: the recovery stack holds goodput within the floor of the
    # no-failure run and loses no requests — every crashed request finishes
    # on a surviving (or replacement) replica.
    assert goodput_rec >= RECOVERY_GOODPUT_FLOOR * goodput_base
    assert len(recovered.finished_requests) == NUM_REQUESTS
    assert recovered.retries > 0
    assert not recovered.rejected

    # Without recovery the same schedule both drops the crashed requests
    # (typed, not vanished) and lands strictly below the recovered goodput.
    assert goodput_norec < goodput_rec
    assert len(unrecovered.finished_requests) < NUM_REQUESTS
    assert unrecovered.reject_reasons.get(REASON_REPLICA_CRASH, 0) == len(unrecovered.rejected)
    assert len(unrecovered.rejected) == len(unrecovered.failed)

    # Conservation under chaos: routed + rejected == submitted in every mode.
    for result in (baseline, recovered, unrecovered):
        assert result.routed_requests + len(result.rejected) == NUM_REQUESTS

    # The failure summary agrees with the schedule: two crashes, one
    # straggler, and a measurable boot gap for each replacement.
    summary = summarize_availability(recovered, SLA_RECOVERY)
    assert summary.crashes == 2
    assert summary.stragglers == 1
    assert summary.delivery_rate == 1.0
    assert summary.mean_time_to_recovery >= 10.0


@pytest.mark.benchmark(group="fig14")
def test_fig14_chaos_is_deterministic(benchmark, platform_7b):
    """The same seeded plan yields bit-identical results across runs."""

    def run_twice():
        return (
            run_fleet(platform_7b, fault_plan(recover=True)),
            run_fleet(platform_7b, fault_plan(recover=True)),
        )

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert cluster_fingerprint(first) == cluster_fingerprint(second)

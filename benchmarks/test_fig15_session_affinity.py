"""Figure 15 (repo extension): session-affinity routing with KV prefix reuse.

The paper's workloads are single-shot; production agentic traffic is
multi-turn, and each turn's prompt is the whole accumulated conversation.
That makes *placement* a first-order lever: a turn landing on the replica
that served its predecessor can reuse the resident KV prefix instead of
re-prefilling the conversation from scratch.  This benchmark measures that
lever on a four-replica scaled fleet serving 48 heavy-tail agentic sessions
(4-12 turns) closed-loop — every follow-up turn spawned by its
predecessor's completion:

* **affinity** — the session-affinity router pins each session to the
  replica holding its prefix, falling back to memory-aware scoring when the
  home replica is unavailable;
* **blind** — the least-outstanding router scatters turns across the fleet
  at equal fleet size, so most turns miss the (equally sized) prefix cache;
* **home-crash** — the affinity fleet with a seeded crash of replica 0
  mid-run: sessions homed there lose their prefixes and in-flight turns,
  and must re-home through retries onto the survivors.

Headline checks: affinity delivers at least 1.15x the blind goodput at
equal fleet size (measured ~1.4x) with a far higher prefix hit rate, and
degrades gracefully under the home crash — every session still runs to its
final stage via the retry path, holding most of the fault-free goodput.
The same seeded crash schedule yields bit-identical results across runs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    CAPACITY_7B_A100,
    PREFILL_CAP_SCALED,
    SCALE,
    write_report,
)
from repro.analysis.perf import cluster_fingerprint
from repro.analysis.tables import render_table
from repro.serving.cluster import ClusterSimulator
from repro.serving.faults import FaultPlan, ReplicaCrash, RetryPolicy
from repro.serving.sla import SLASpec
from repro.workloads.interactions import generate_interactions

NUM_REPLICAS = 4
NUM_SESSIONS = 48

#: Per-replica pool and prefix-cache budget.  The cache must be large enough
#: to keep one prefix per concurrently thinking session resident, or LRU
#: thrash erases the affinity advantage it exists to measure.
POOL_TOKENS = CAPACITY_7B_A100 // 2
PREFIX_TOKENS = int(POOL_TOKENS * 0.9)

SLA = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)

#: Headline floor: affinity goodput over affinity-blind at equal fleet size.
AFFINITY_GOODPUT_FLOOR = 1.15

#: Floor on home-crash goodput relative to the fault-free affinity run.
CRASH_GOODPUT_FLOOR = 0.7


def fig15_interactions():
    """48 seeded heavy-tail sessions, prefill-dominated (tiny outputs)."""
    return generate_interactions(
        NUM_SESSIONS,
        seed=71,
        mean_prompt_tokens=48.0,
        mean_output_tokens=6.0,
        min_turns=4,
        max_turns=12,
        think_time=0.0,
        start_spacing=0.0,
    )


def crash_plan() -> FaultPlan:
    """Replica 0 — home to a quarter of the fleet's sessions — dies mid-run."""
    return FaultPlan(
        crashes=[ReplicaCrash(time=0.5, replica=0)],
        seed=23,
        retry_policy=RetryPolicy(base_delay=0.05, max_attempts=5, seed=23),
        replace_crashed=True,
        replacement_warmup=0.3,
    )


def run_fleet(platform, router: str, faults: FaultPlan | None = None):
    simulator = ClusterSimulator(
        platform=platform,
        num_replicas=NUM_REPLICAS,
        router=router,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=POOL_TOKENS,
        chunked_prefill_tokens=PREFILL_CAP_SCALED,
        prefix_cache_tokens=PREFIX_TOKENS,
        faults=faults,
    )
    return simulator.run_sessions(fig15_interactions())


@pytest.mark.benchmark(group="fig15")
def test_fig15_session_affinity(benchmark, platform_7b, results_dir):
    def run_all():
        return (
            run_fleet(platform_7b, "session-affinity"),
            run_fleet(platform_7b, "least-outstanding"),
            run_fleet(platform_7b, "session-affinity", crash_plan()),
        )

    affinity, blind, crashed = benchmark.pedantic(run_all, rounds=1, iterations=1)

    summaries = {
        name: result.session_summary(sla=SLA)
        for name, result in (
            ("affinity", affinity),
            ("blind", blind),
            ("home-crash", crashed),
        )
    }
    rows = [
        {
            "mode": name,
            "goodput tok/s": f"{result.goodput(SLA):.1f}",
            "prefix hit rate": f"{summaries[name].prefix_hit_rate:.2f}",
            "completed sessions": summaries[name].completed_sessions,
            "abandoned": summaries[name].abandoned_sessions,
            "retries": result.retries,
        }
        for name, result in (
            ("affinity", affinity),
            ("blind", blind),
            ("home-crash", crashed),
        )
    ]
    report = render_table(
        rows,
        title=(
            f"Figure 15 — session affinity vs blind routing, {NUM_REPLICAS}x "
            f"Llama-2-7B (1/{int(1 / SCALE)} scale), {NUM_SESSIONS} multi-turn sessions"
        ),
    )
    write_report(results_dir, "fig15_session_affinity", report)

    goodput_affinity = affinity.goodput(SLA)
    goodput_blind = blind.goodput(SLA)
    goodput_crash = crashed.goodput(SLA)

    # Headline: keeping a session on the replica that holds its prefix buys
    # a clear goodput margin at equal fleet size, through the hit rate.
    assert goodput_affinity >= AFFINITY_GOODPUT_FLOOR * goodput_blind
    assert summaries["affinity"].prefix_hit_rate > 2 * summaries["blind"].prefix_hit_rate
    assert summaries["affinity"].prefix_hit_rate >= 0.5

    # Both fault-free runs serve every session to its final stage.
    for name in ("affinity", "blind"):
        assert summaries[name].num_sessions == NUM_SESSIONS
        assert summaries[name].completed_sessions == NUM_SESSIONS
        assert summaries[name].abandoned_sessions == 0

    # Graceful degradation: the crash forces re-homing (retries fire), yet
    # every session still runs to completion on the survivors and goodput
    # holds most of the fault-free level.
    assert crashed.retries > 0
    assert summaries["home-crash"].completed_sessions == NUM_SESSIONS
    assert summaries["home-crash"].abandoned_sessions == 0
    assert goodput_crash >= CRASH_GOODPUT_FLOOR * goodput_affinity

    # Conservation: every spawned turn is accounted — routed or rejected.
    for result in (affinity, blind, crashed):
        submitted = len(result.requests) + len(result.rejected)
        assert result.routed_requests + len(result.rejected) == submitted


@pytest.mark.benchmark(group="fig15")
def test_fig15_crash_is_deterministic(benchmark, platform_7b):
    """The same seeded crash schedule yields bit-identical session runs."""

    def run_twice():
        return (
            run_fleet(platform_7b, "session-affinity", crash_plan()),
            run_fleet(platform_7b, "session-affinity", crash_plan()),
        )

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert cluster_fingerprint(first) == cluster_fingerprint(second)

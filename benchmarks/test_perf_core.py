"""Perf-smoke: regenerate ``BENCH_core.json`` and guard the perf trajectory.

Times the eight core scenarios (single-engine fig07 sweep, the
saturated-phase fig07 variant, fig10 cluster routing, fig11 autoscaling, the
fig12 heterogeneous fleet, the fig13 multi-tenant fairness stack, the
fig14 chaos fleet under a seeded fault plan, and the fig15 session-affinity
fleet serving multi-turn interactions with prefix reuse) under the
event-jump fast path and the reference loop,
verifies the two produce bit-identical metrics (the harness raises before any
timing is reported otherwise), rewrites ``BENCH_core.json`` at the repo root,
and fails when a scenario's measured speedup regresses more than 2x against
the committed baseline.  The fingerprints themselves are also compared
against the committed file: simulations are deterministic and
machine-independent, so any fingerprint drift means results changed — in
particular, the seven fault-free scenarios pin the guarantee that the fault
subsystem is invisible when no :class:`~repro.serving.faults.FaultPlan` is
attached, and the seven session-free ones pin that the session/prefix
machinery is invisible unless a run actually serves interactions.

Speedup (a ratio of two runs on the same machine) is compared rather than
absolute seconds, so the check is robust to slow CI hosts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.perf import (
    BENCH_PATH,
    SCENARIOS,
    measure_scenario,
    run_benchmarks,
    write_report,
)

#: Minimum acceptable speedup of the fast path over the in-repo reference
#: loop, per scenario.  The committed BENCH_core.json numbers run well above
#: these; the floors only catch the fast path breaking outright.
SPEEDUP_FLOORS = {
    "fig07_goodput_vs_clients": 2.0,
    # The saturated scenario is the one the saturated-phase event jump exists
    # for: ~90% of iterations consult the admission scheduler, and the fused
    # no-admit path must beat the reference loop by a clear margin (the
    # committed number runs well above this floor; the pre-PR loop — fast
    # path without saturated jumps — is the seed_loop_seconds entry, which
    # the fast path beats by >= 2x on the committed baseline machine).
    "fig07_saturated": 2.0,
    "fig10_cluster_routing": 3.0,
    "fig11_autoscaling": 3.0,
    "fig12_heterogeneous": 3.0,
    # Mostly the saturated-VTC engine run; the fair scheduler's horizon hook
    # is what keeps this scenario fast, so the floor guards it directly.
    "fig13_fairness": 2.0,
    # FAULT events bound the jump horizon, so the chaos scenario proves the
    # fast path still fuses aggressively between fault edges.
    "fig14_failure_recovery": 2.0,
    # Spawned follow-up turns bound the jump horizon exactly like retries —
    # every completion schedules a future arrival the fast path must not fuse
    # past — so the session fleet fuses less than the open-loop scenarios.
    "fig15_session_affinity": 2.0,
}

#: A scenario may not regress more than this factor against the committed
#: speedup before the job fails.
MAX_REGRESSION = 2.0

#: Maximum absolute drift of the fused-iteration fraction against the
#: committed baseline.  The simulations are deterministic, so the jump
#: counters are machine-independent — any drift means the fast path's
#: fusion behaviour actually changed, not that the host was slow.
MAX_FUSION_DRIFT = 0.01


@pytest.fixture(scope="module")
def committed_baseline() -> dict:
    if not BENCH_PATH.exists():
        return {}
    return json.loads(BENCH_PATH.read_text()).get("scenarios", {})


@pytest.fixture(scope="module")
def fresh_report(committed_baseline, tmp_path_factory) -> dict:
    # One measurement pass for the whole module; the equivalence check runs
    # inside measure_scenario via run_benchmarks.  The tracked baseline is
    # only overwritten on CI (whose artifact is the trajectory) or when a
    # contributor opts in with PERF_UPDATE_BASELINE=1 — a casual local
    # `pytest benchmarks` must not dirty BENCH_core.json with this machine's
    # timings (a slower laptop would silently lower the regression bar).
    report = run_benchmarks()
    if os.environ.get("CI") or os.environ.get("PERF_UPDATE_BASELINE"):
        path = write_report(report)
    else:
        path = write_report(report, tmp_path_factory.mktemp("perf") / "BENCH_core.json")
    print(f"\n[perf report written to {path}]")
    return report


@pytest.mark.benchmark(group="perf-core")
@pytest.mark.parametrize("scenario_name", [s.name for s in SCENARIOS])
def test_perf_core_scenario(benchmark, fresh_report, committed_baseline, scenario_name):
    entry = fresh_report["scenarios"][scenario_name]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info.update(entry)
    print(
        f"\n{scenario_name}: fast {entry['fast_seconds']}s vs reference "
        f"{entry['reference_seconds']}s -> {entry['speedup']}x"
    )

    # The fast path must stay a real optimisation...
    assert entry["speedup"] >= SPEEDUP_FLOORS[scenario_name]

    # ...and must not regress badly against the committed trajectory.
    committed = committed_baseline.get(scenario_name)
    if committed:
        assert entry["speedup"] * MAX_REGRESSION >= committed["speedup"], (
            f"{scenario_name}: measured speedup {entry['speedup']}x regressed more than "
            f"{MAX_REGRESSION}x against the committed {committed['speedup']}x"
        )


@pytest.mark.parametrize("scenario_name", [s.name for s in SCENARIOS])
def test_jump_fusion_matches_baseline(fresh_report, committed_baseline, scenario_name):
    """The engine's self-profiled fusion ratio must match the committed one.

    Wall-clock hides small fast-path regressions on noisy hosts; the
    deterministic ``jump`` block does not.  A macro-step that silently
    starts falling back to the loop moves ``fused_fraction`` immediately.
    """
    entry = fresh_report["scenarios"][scenario_name]
    jump = entry["jump"]
    assert jump["loop_steps"] + jump["steps_fused"] > 0
    committed = committed_baseline.get(scenario_name, {}).get("jump")
    if committed:
        drift = abs(jump["fused_fraction"] - committed["fused_fraction"])
        assert drift <= MAX_FUSION_DRIFT, (
            f"{scenario_name}: fused_fraction {jump['fused_fraction']} drifted "
            f"{drift:.4f} from committed {committed['fused_fraction']} "
            f"(limit {MAX_FUSION_DRIFT})"
        )


@pytest.mark.parametrize("scenario_name", [s.name for s in SCENARIOS])
def test_fingerprint_matches_committed_baseline(fresh_report, committed_baseline, scenario_name):
    """Result fingerprints must be byte-identical to the committed baseline.

    Fingerprints hash simulation *results*, not timings, and the simulations
    are seeded and deterministic — so they are machine-independent.  For the
    seven fault-free scenarios this is the regression gate proving that code
    which only runs under a ``FaultPlan`` (fault events, health filtering,
    retry bookkeeping) is byte-invisible when none is attached; for
    fig14 it pins the seeded chaos schedule itself, and for fig15 the
    seeded conversation schedule plus the prefix-cache accounting.
    """
    committed = committed_baseline.get(scenario_name)
    if not committed:
        pytest.skip(f"{scenario_name} not in committed BENCH_core.json yet")
    fresh = fresh_report["scenarios"][scenario_name]["fingerprint"]
    assert fresh == committed["fingerprint"], (
        f"{scenario_name}: fingerprint {fresh[:16]}... diverged from committed "
        f"{committed['fingerprint'][:16]}... — simulation results changed"
    )


def test_measure_scenario_rejects_divergence(monkeypatch):
    """The harness refuses to report timings for non-identical results."""
    from repro.analysis import perf

    scenario = perf.Scenario(
        name="diverging",
        description="fast and reference disagree",
        run=lambda fast_path, tracer=None: (0.01, "fast" if fast_path else "reference", {}),
    )
    with pytest.raises(perf.FastPathDivergenceError):
        measure_scenario(scenario)

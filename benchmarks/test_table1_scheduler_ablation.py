"""Table 1: decoding steps, memory utilisation and eviction rate per scheduler config.

The paper's ablation runs nine scheduler configurations (theoretical optimum,
Past-Future with 3/5/10% reserve, aggressive with 99/95/90% watermark,
conservative with and without overcommit) on Distribution-1/2/3 and reports
decoding steps, average consumed memory, average future-required memory, and
the fraction of evicted requests.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CAPACITY_7B_A100, PREFILL_CAP_SCALED, scaled, write_report
from repro.analysis.experiments import ExperimentConfig, memory_report_from_run, run_experiment
from repro.analysis.tables import render_table
from repro.workloads.distributions import distribution_workload

NUM_REQUESTS = 120
NUM_CLIENTS = 48

CONFIGURATIONS = [
    ("Theoretical optimum", "oracle", {}),
    ("Past-Future (reserved=3%)", "past-future", {"reserved_fraction": 0.03, "seed": 11}),
    ("Past-Future (reserved=5%)", "past-future", {"reserved_fraction": 0.05, "seed": 11}),
    ("Past-Future (reserved=10%)", "past-future", {"reserved_fraction": 0.10, "seed": 11}),
    ("Aggressive (watermark=99%)", "aggressive", {"watermark": 0.99}),
    ("Aggressive (watermark=95%)", "aggressive", {"watermark": 0.95}),
    ("Aggressive (watermark=90%)", "aggressive", {"watermark": 0.90}),
    ("Conservative (no overcommit)", "conservative", {}),
    ("Conservative (overcommit=150%)", "conservative", {"overcommit": 1.5}),
]

DATASETS = ("Distribution-1", "Distribution-2", "Distribution-3")


def run_dataset(platform, dataset: str) -> list[dict]:
    workload = scaled(distribution_workload(dataset, NUM_REQUESTS, seed=111))
    rows = []
    for label, scheduler_name, kwargs in CONFIGURATIONS:
        config = ExperimentConfig(
            platform=platform,
            scheduler_name=scheduler_name,
            scheduler_kwargs=kwargs,
            num_clients=NUM_CLIENTS,
            token_capacity_override=CAPACITY_7B_A100,
            chunked_prefill_tokens=PREFILL_CAP_SCALED,
        )
        result = run_experiment(config, workload)
        assert result.completed
        report = memory_report_from_run(result)
        rows.append(
            {
                "dataset": dataset,
                "method": label,
                "decoding_steps": report.decoding_steps,
                "consumed_memory": f"{report.consumed_memory_fraction:.1%}",
                "future_required": f"{report.future_required_fraction:.1%}",
                "evicted_requests": f"{report.evicted_request_fraction:.1%}",
            }
        )
    return rows


def _pct(row: dict, key: str) -> float:
    return float(row[key].rstrip("%"))


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("dataset", DATASETS)
def test_table1_scheduler_ablation(benchmark, platform_7b, results_dir, dataset):
    rows = benchmark.pedantic(run_dataset, args=(platform_7b, dataset), rounds=1, iterations=1)
    write_report(
        results_dir,
        f"table1_{dataset.lower()}",
        render_table(rows, title=f"Table 1 — scheduler ablation on {dataset} (scaled Llama-2-7B / A100)"),
    )
    by_method = {row["method"]: row for row in rows}

    oracle = by_method["Theoretical optimum"]
    strict_conservative = by_method["Conservative (no overcommit)"]
    overcommit = by_method["Conservative (overcommit=150%)"]
    aggressive99 = by_method["Aggressive (watermark=99%)"]
    aggressive90 = by_method["Aggressive (watermark=90%)"]
    past_future3 = by_method["Past-Future (reserved=3%)"]
    past_future10 = by_method["Past-Future (reserved=10%)"]

    # The oracle and the strict conservative scheduler never evict.
    assert _pct(oracle, "evicted_requests") == 0.0
    assert _pct(strict_conservative, "evicted_requests") == 0.0

    # The strict conservative scheduler takes the most decoding steps and uses
    # the least memory; overcommitting recovers utilisation but adds evictions.
    assert strict_conservative["decoding_steps"] == max(r["decoding_steps"] for r in rows)
    assert _pct(strict_conservative, "consumed_memory") == min(_pct(r, "consumed_memory") for r in rows)
    assert _pct(overcommit, "consumed_memory") > _pct(strict_conservative, "consumed_memory")
    assert overcommit["decoding_steps"] < strict_conservative["decoding_steps"]
    assert _pct(overcommit, "evicted_requests") >= 0.0

    # Watermark/reserve knobs trade decoding steps against evictions in the
    # expected directions.
    assert _pct(aggressive99, "evicted_requests") >= _pct(aggressive90, "evicted_requests")
    assert aggressive99["decoding_steps"] <= aggressive90["decoding_steps"]
    assert _pct(past_future10, "evicted_requests") <= _pct(past_future3, "evicted_requests")
    assert past_future3["decoding_steps"] <= past_future10["decoding_steps"]

    # The Past-Future scheduler evicts far less than the aggressive scheduler
    # at comparable utilisation (the paper's headline ablation result).
    assert _pct(past_future3, "evicted_requests") < _pct(aggressive99, "evicted_requests")
    assert _pct(past_future3, "consumed_memory") > 0.8 * _pct(aggressive99, "consumed_memory")

    # Low-eviction policies cannot meaningfully beat the oracle on decoding
    # steps.  (The aggressive scheduler can take fewer iterations by
    # oversubscribing the pool — the paper's Table 1 shows the same — but it
    # pays in evictions; a 5% tolerance absorbs admission-order noise.)
    assert past_future3["decoding_steps"] >= 0.95 * oracle["decoding_steps"]
    assert strict_conservative["decoding_steps"] >= oracle["decoding_steps"]

"""Table 2: multimodal serving throughput — original implementation vs LightLLM.

The paper serves Qwen-VL-Chat and LLaVA-1.5 (7B and 13B) on the TextVQA
validation workload and reports ~1.5-2x higher throughput for LightLLM with
the Past-Future scheduler than for the models' original (static-batching,
conservative) serving implementations.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE, write_report
from repro.analysis.experiments import run_framework
from repro.analysis.tables import render_table
from repro.frameworks.profiles import LIGHTLLM, MULTIMODAL_ORIGIN
from repro.hardware.gpus import A100_80G
from repro.hardware.models import LLAVA_15_7B, LLAVA_15_13B, QWEN_VL_CHAT
from repro.hardware.platform import Platform
from repro.workloads.multimodal import generate_textvqa_workload

NUM_REQUESTS = 400
NUM_CLIENTS = 64

MODELS = (QWEN_VL_CHAT, LLAVA_15_7B, LLAVA_15_13B)


def run_comparison() -> list[dict]:
    rows = []
    for model in MODELS:
        platform = Platform(model=model, gpu=A100_80G)
        # VQA answers are already short; scale only the KV capacity so the
        # simulated device keeps the paper's capacity-to-request ratio.
        capacity = int(platform.token_capacity * SCALE)
        workload = generate_textvqa_workload(model, NUM_REQUESTS, seed=201)
        origin = run_framework(
            MULTIMODAL_ORIGIN, platform, workload, num_clients=NUM_CLIENTS,
            token_capacity_override=capacity,
        )
        lightllm = run_framework(
            LIGHTLLM, platform, workload, num_clients=NUM_CLIENTS,
            token_capacity_override=capacity,
        )
        rows.append(
            {
                "model": model.name,
                "origin_throughput_tok_s": round(origin.throughput(), 1),
                "lightllm_throughput_tok_s": round(lightllm.throughput(), 1),
                "speedup": round(lightllm.throughput() / max(origin.throughput(), 1e-9), 2),
            }
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_multimodal(benchmark, results_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    write_report(
        results_dir,
        "table2_multimodal",
        render_table(rows, title="Table 2 — multimodal throughput, original implementation vs LightLLM (scaled)"),
    )

    by_model = {row["model"]: row for row in rows}
    # LightLLM improves throughput for every multimodal model (the paper
    # reports roughly 1.5x for Qwen-VL-Chat, 1.6x for LLaVA-1.5-7B and 1.9x
    # for LLaVA-1.5-13B).
    for row in rows:
        assert row["speedup"] > 1.2, f"no speedup for {row['model']}"
    # The larger LLaVA model still benefits.
    assert by_model["LLaVA-1.5-13B"]["speedup"] > 1.2

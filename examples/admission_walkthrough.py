"""Token-level walkthrough of the future-required-memory admission decision.

Recreates the worked example of Figures 5 and 6 of the paper: a 21-token
system with three running requests and one queued request.  The script prints
the projected memory timeline for admitting the queued request at successive
decode steps, showing why the aggressive choice (admit now) overflows, the
conservative choice (wait for worst-case headroom) wastes time, and the
future-aware choice admits at exactly the right step.

Run with:  python examples/admission_walkthrough.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.future_memory import BatchEntry, memory_timeline, peak_future_memory

CAPACITY = 21
#: Running batch at time t: (current KV tokens, remaining output tokens).
RUNNING = [BatchEntry(7, 1), BatchEntry(5, 2), BatchEntry(4, 3)]
#: Queued request: 2 prompt tokens, 2 output tokens.
QUEUED = BatchEntry(2, 2)


def batch_after(steps: int) -> list[BatchEntry]:
    """The running batch as it will look ``steps`` decode iterations later."""
    later = []
    for entry in RUNNING:
        if entry.remaining_tokens > steps:
            later.append(BatchEntry(entry.current_tokens + steps, entry.remaining_tokens - steps))
    return later


def main() -> None:
    print(f"System token capacity: {CAPACITY}")
    print("Running batch at time t (current tokens, remaining outputs):")
    for index, entry in enumerate(RUNNING, start=1):
        print(f"  S{index}: current={entry.current_tokens}, remaining={entry.remaining_tokens}")
    print(f"Queued request: prompt={QUEUED.current_tokens}, output={QUEUED.remaining_tokens}\n")

    rows = []
    for delay in range(4):
        batch = batch_after(delay) + [QUEUED]
        peak = peak_future_memory(batch)
        rows.append(
            {
                "admit_at": f"t+{delay}" if delay else "t",
                "projected_peak": peak,
                "fits": "yes" if peak <= CAPACITY else "NO (eviction later)",
                "memory_timeline": " -> ".join(str(v) for v in memory_timeline(batch)),
            }
        )
    print(render_table(rows, title="Projected memory if the queued request is admitted at each step"))
    print()
    print("An aggressive scheduler admits at t (peak 22 > 21) and must later evict;")
    print("a conservative scheduler waits for full worst-case headroom; the")
    print("Past-Future scheduler admits at t+1, the earliest step whose projected")
    print("peak fits the capacity.")


if __name__ == "__main__":
    main()

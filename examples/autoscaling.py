"""Autoscaling walkthrough: an elastic fleet chasing bursty traffic.

Serves the same bursty ShareGPT-o1 trace under three autoscaling policies —
a peak-provisioned static fleet, reactive threshold scaling on the windowed
saturation rate, and the predictive policy that forecasts fleet KV demand
with the paper's future-memory equations — then compares them on goodput
per replica-second and prints the predictive run's fleet-size timeline and
scaling decisions.

Written against the decision-based placement API: replica capacities come
from the per-replica ``capacity_scale`` knob (which preserves capacity
*ratios*, so the same config works on heterogeneous fleets — pass
``platforms=[...]`` to mix GPU generations and the predictive policy sizes
the fleet in capacity units), and routing flows through
``Router.decide -> RoutingDecision``.

Run with:  python examples/autoscaling.py
"""

from __future__ import annotations

from repro.analysis.autoscale_sweep import (
    AutoscaleExperimentConfig,
    autoscale_comparison_sweep,
    autoscale_table,
)
from repro.analysis.tables import render_table
from repro.hardware.platform import paper_platform
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload
from repro.workloads.spec import scale_workload

SCALE = 1.0 / 16.0
MAX_REPLICAS = 6


#: Per-replica capacity multiplier: 1/16 workload scale and 1/8 of the pool
#: per replica, preserving each replica's own capacity ratio (the form that
#: stays correct when the fleet mixes GPU generations).
CAPACITY_SCALE = SCALE / 8


def main() -> None:
    platform = paper_platform("7b-a100")
    replica_capacity = int(platform.token_capacity * CAPACITY_SCALE)
    print(f"Platform: {platform.describe()}")
    print(f"Replica KV capacity: {replica_capacity:,} token slots (scaled)")

    workload = scale_workload(generate_sharegpt_o1_workload(400, seed=71), SCALE)
    workload = assign_bursty_arrivals(
        workload, base_rate=0.5, burst_rate=10.0, burst_length=80, cycle_length=100, seed=9
    )
    print(f"Workload: {workload.name}, {len(workload)} requests — {workload.description}")
    print()

    config = AutoscaleExperimentConfig(
        platform=platform,
        router="least-outstanding",
        initial_replicas=2,
        min_replicas=1,
        max_replicas=MAX_REPLICAS,
        decision_interval=0.5,
        warmup_delay=3.0,
        sample_window=4.0,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        capacity_scale=CAPACITY_SCALE,
        chunked_prefill_tokens=int(8192 * SCALE),
    )
    sla = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)
    results = autoscale_comparison_sweep(
        config,
        workload,
        policy_kwargs={
            "reactive": {
                "scale_up_threshold": 0.25,
                "scale_down_threshold": 0.02,
                "cooldown": 2.0,
            },
            "predictive": {
                "target_utilization": 0.8,
                "scale_down_cooldown": 6.0,
                "default_length": int(2048 * SCALE),
            },
        },
    )

    print(render_table(autoscale_table(results, sla), title=f"Fleet efficiency under {sla.describe()}"))
    print()
    for name, result in results.items():
        print(f"{name:>10}: {result.describe()}")

    predictive = results["predictive"]
    print()
    print("Predictive fleet-size timeline (active/warming/draining at each change):")
    for sample in predictive.fleet_timeline:
        bar = "#" * sample.active + "~" * sample.warming + "-" * sample.draining
        print(f"  t={sample.time:7.2f}s  {bar:<{MAX_REPLICAS + 2}}  "
              f"active={sample.active} warming={sample.warming} draining={sample.draining}")

    best = max(results, key=lambda name: results[name].goodput_per_replica_second(sla))
    static = results["static"].goodput_per_replica_second(sla)
    print()
    print(
        f"Best policy: {best} "
        f"(+{results[best].goodput_per_replica_second(sla) / max(static, 1e-9) - 1:.0%} "
        f"goodput-per-replica-second vs the peak-provisioned static fleet)"
    )


if __name__ == "__main__":
    main()

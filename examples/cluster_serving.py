"""Cluster serving: route bursty traffic across a fleet of replicas.

Part 1 builds a four-replica homogeneous fleet of the scaled Llama-2-7B
platform, stamps a ShareGPT-o1 workload with bursty (on/off Poisson) arrival
times, and replays the identical trace through each routing policy:
round-robin, least-outstanding, least-KV-load, and the memory-aware router
that reuses the paper's future-memory prediction as a placement signal.

Part 2 goes heterogeneous: two A100 replicas plus one RTX-4090 replica (a
~6.6x smaller KV pool at half the decode bandwidth) serve a diurnal trace
carrying two SLA classes — tight-deadline ``interactive`` and loose-deadline
``batch`` requests.  Routers now return first-class
:class:`~repro.serving.routing.RoutingDecision` values (route / reject /
defer), and the memory-aware router compares replicas on capacity-normalised,
speed-weighted headroom, so the small card only receives what fits it.

Run with:  python examples/cluster_serving.py
"""

from __future__ import annotations

from repro.analysis.cluster_sweep import (
    ClusterExperimentConfig,
    fleet_class_table,
    fleet_table,
    router_comparison_sweep,
)
from repro.analysis.tables import render_table
from repro.hardware.platform import paper_platform, paper_platforms
from repro.serving.sla import SLASpec, two_class_sla
from repro.workloads.arrivals import assign_bursty_arrivals, assign_diurnal_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload
from repro.workloads.spec import assign_sla_classes, scale_workload

SCALE = 1.0 / 16.0
NUM_REPLICAS = 4


def homogeneous_fleet() -> None:
    platform = paper_platform("7b-a100")
    replica_capacity = int(platform.token_capacity * SCALE) // 8
    print(f"Platform: {platform.describe()}")
    print(f"Fleet: {NUM_REPLICAS} replicas, {replica_capacity:,} KV token slots each (scaled)")

    workload = scale_workload(generate_sharegpt_o1_workload(400, seed=71), SCALE)
    workload = assign_bursty_arrivals(
        workload, base_rate=1.0, burst_rate=100.0, burst_length=80, cycle_length=100, seed=9
    )
    print(f"Workload: {workload.name}, {len(workload)} requests — {workload.description}")
    print()

    config = ClusterExperimentConfig(
        platform=platform,
        num_replicas=NUM_REPLICAS,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=replica_capacity,
        chunked_prefill_tokens=int(8192 * SCALE),
    )
    sla = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)
    results = router_comparison_sweep(config, workload)

    print(render_table(fleet_table(results, sla), title=f"Fleet results under {sla.describe()}"))
    print()
    for name, result in results.items():
        evictions = [replica.total_evictions for replica in result.replicas]
        print(f"{name:>18}: {result.describe()}  per-replica evictions {evictions}")

    best = max(results, key=lambda name: results[name].goodput(sla))
    baseline = results["round-robin"].goodput(sla)
    print()
    print(
        f"Best router: {best} "
        f"(+{results[best].goodput(sla) / max(baseline, 1e-9) - 1:.1%} goodput vs round-robin)"
    )


def heterogeneous_fleet() -> None:
    platforms = paper_platforms("7b-a100", "7b-a100", "7b-4090")
    capacity_scale = 1.0 / 32.0
    print("Mixed fleet (capacities scaled per replica, ratios preserved):")
    for platform in platforms:
        print(f"  {platform.describe()} -> {int(platform.token_capacity * capacity_scale):,} scaled slots")

    workload = scale_workload(
        generate_sharegpt_o1_workload(400, seed=71, max_new_tokens=4096), SCALE
    )
    workload = assign_sla_classes(workload, {"interactive": 0.7, "batch": 0.3}, seed=5)
    workload = assign_diurnal_arrivals(
        workload, base_rate=1.0, burst_rate=60.0, period=60.0, amplitude=0.6,
        burst_length=60, cycle_length=100, seed=9,
    )
    print(f"Workload: {workload.name}, {len(workload)} requests — {workload.description}")
    print()

    config = ClusterExperimentConfig(
        platforms=platforms,
        num_replicas=len(platforms),
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        capacity_scale=capacity_scale,
        chunked_prefill_tokens=int(8192 * SCALE),
    )
    # Per-class deadlines: interactive signs the tight contract, batch a
    # loose one; compliance (and therefore goodput) is judged per class.
    sla = two_class_sla(interactive=(2.5, 0.5), batch=(10.0, 1.5))
    results = router_comparison_sweep(
        config, workload, routers=["least-outstanding", "memory-aware"]
    )

    print(render_table(
        fleet_class_table(results, sla),
        title=f"Per-class fleet results under {sla.describe()}",
    ))
    print()
    for name, result in results.items():
        requests_per_replica = [len(replica.requests) for replica in result.replicas]
        evictions = [replica.total_evictions for replica in result.replicas]
        print(
            f"{name:>18}: requests per replica {requests_per_replica} "
            f"(last = RTX-4090), evictions {evictions}"
        )
    print()
    blind = results["least-outstanding"].per_class_goodput_per_replica_second(sla)
    aware = results["memory-aware"].per_class_goodput_per_replica_second(sla)
    for sla_class in sorted(aware):
        print(
            f"{sla_class:>12}: memory-aware {aware[sla_class]:.1f} vs "
            f"least-outstanding {blind[sla_class]:.1f} goodput/replica-s "
            f"(+{aware[sla_class] / max(blind[sla_class], 1e-9) - 1:.1%})"
        )


def main() -> None:
    print("=" * 72)
    print("Part 1 — homogeneous fleet, bursty arrivals")
    print("=" * 72)
    homogeneous_fleet()
    print()
    print("=" * 72)
    print("Part 2 — heterogeneous fleet (2x A100 + 1x RTX-4090), SLA classes")
    print("=" * 72)
    heterogeneous_fleet()


if __name__ == "__main__":
    main()

"""Cluster serving: route bursty traffic across a fleet of replicas.

Builds a four-replica fleet of the scaled Llama-2-7B platform, stamps a
ShareGPT-o1 workload with bursty (on/off Poisson) arrival times, and replays
the identical trace through each routing policy: round-robin,
least-outstanding, least-KV-load, and the memory-aware router that reuses the
paper's future-memory prediction as a placement signal.

Run with:  python examples/cluster_serving.py
"""

from __future__ import annotations

from repro.analysis.cluster_sweep import (
    ClusterExperimentConfig,
    fleet_table,
    router_comparison_sweep,
)
from repro.analysis.tables import render_table
from repro.hardware.platform import paper_platform
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload
from repro.workloads.spec import scale_workload

SCALE = 1.0 / 16.0
NUM_REPLICAS = 4


def main() -> None:
    platform = paper_platform("7b-a100")
    replica_capacity = int(platform.token_capacity * SCALE) // 8
    print(f"Platform: {platform.describe()}")
    print(f"Fleet: {NUM_REPLICAS} replicas, {replica_capacity:,} KV token slots each (scaled)")

    workload = scale_workload(generate_sharegpt_o1_workload(400, seed=71), SCALE)
    workload = assign_bursty_arrivals(
        workload, base_rate=1.0, burst_rate=100.0, burst_length=80, cycle_length=100, seed=9
    )
    print(f"Workload: {workload.name}, {len(workload)} requests — {workload.description}")
    print()

    config = ClusterExperimentConfig(
        platform=platform,
        num_replicas=NUM_REPLICAS,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=replica_capacity,
        chunked_prefill_tokens=int(8192 * SCALE),
    )
    sla = SLASpec(ttft_limit=2.5, mtpot_limit=0.5)
    results = router_comparison_sweep(config, workload)

    print(render_table(fleet_table(results, sla), title=f"Fleet results under {sla.describe()}"))
    print()
    for name, result in results.items():
        evictions = [replica.total_evictions for replica in result.replicas]
        print(f"{name:>18}: {result.describe()}  per-replica evictions {evictions}")

    best = max(results, key=lambda name: results[name].goodput(sla))
    baseline = results["round-robin"].goodput(sla)
    print()
    print(
        f"Best router: {best} "
        f"(+{results[best].goodput(sla) / max(baseline, 1e-9) - 1:.1%} goodput vs round-robin)"
    )


if __name__ == "__main__":
    main()

"""Serve a TextVQA-style multimodal workload: original implementation vs LightLLM.

Reproduces the Table-2 scenario of the paper: vision-language models
(Qwen-VL-Chat, LLaVA-1.5) answering short visual questions.  Every request
carries an image-token prefix whose KV footprint dominates the short text
prompt, so memory-aware admission matters even though the answers are short.

Run with:  python examples/multimodal_serving.py
"""

from __future__ import annotations

from repro.analysis.experiments import run_framework
from repro.analysis.tables import render_table
from repro.frameworks.profiles import LIGHTLLM, MULTIMODAL_ORIGIN
from repro.hardware.gpus import A100_80G
from repro.hardware.models import LLAVA_15_7B, QWEN_VL_CHAT
from repro.hardware.platform import Platform
from repro.workloads.multimodal import generate_textvqa_workload

#: Scale only the KV capacity (VQA answers are already short) so the demo
#: finishes in a few seconds while keeping the capacity-to-request ratio.
CAPACITY_SCALE = 1.0 / 16.0
NUM_REQUESTS = 300
NUM_CLIENTS = 48


def main() -> None:
    rows = []
    for model in (QWEN_VL_CHAT, LLAVA_15_7B):
        platform = Platform(model=model, gpu=A100_80G)
        capacity = int(platform.token_capacity * CAPACITY_SCALE)
        workload = generate_textvqa_workload(model, NUM_REQUESTS, seed=3)
        print(
            f"{model.name}: {model.vision_prefix_tokens} image tokens per request, "
            f"mean answer {workload.mean_output_length:.1f} tokens"
        )
        origin = run_framework(
            MULTIMODAL_ORIGIN, platform, workload,
            num_clients=NUM_CLIENTS, token_capacity_override=capacity,
        )
        lightllm = run_framework(
            LIGHTLLM, platform, workload,
            num_clients=NUM_CLIENTS, token_capacity_override=capacity,
        )
        rows.append(
            {
                "model": model.name,
                "origin_tok_s": round(origin.throughput(), 1),
                "lightllm_tok_s": round(lightllm.throughput(), 1),
                "speedup": f"{lightllm.throughput() / origin.throughput():.2f}x",
            }
        )
    print()
    print(render_table(rows, title="TextVQA-style serving throughput (scaled capacity)"))


if __name__ == "__main__":
    main()

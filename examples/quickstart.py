"""Quickstart: serve a synthetic workload with the Past-Future scheduler.

Builds the paper's Llama-2-7B / A100 platform, generates a ShareGPT-style
workload, serves it with 32 closed-loop clients under the Past-Future
scheduler, and prints the throughput/goodput/latency summary.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.hardware.platform import paper_platform
from repro.serving.sla import SLA_SMALL_MODEL
from repro.workloads.sharegpt import generate_sharegpt_workload


def main() -> None:
    platform = paper_platform("7b-a100")
    print(f"Platform: {platform.describe()}")

    workload = generate_sharegpt_workload(num_requests=200, seed=0, max_new_tokens=2048)
    print(
        f"Workload: {workload.name}, {len(workload)} requests, "
        f"mean input {workload.mean_input_length:.0f} tokens, "
        f"mean output {workload.mean_output_length:.0f} tokens"
    )

    config = ExperimentConfig(
        platform=platform,
        scheduler_name="past-future",
        scheduler_kwargs={"reserved_fraction": 0.03, "seed": 0},
        num_clients=32,
    )
    result = run_experiment(config, workload)

    summary = result.throughput_summary(SLA_SMALL_MODEL)
    latency = result.latency_summary()
    print()
    print(result.describe())
    print(f"SLA: {SLA_SMALL_MODEL.describe()}")
    print(f"Throughput: {summary.throughput:8.1f} tokens/s")
    print(f"Goodput:    {summary.goodput:8.1f} tokens/s "
          f"({summary.compliance_rate:.1%} of requests SLA-compliant)")
    print(f"Mean TTFT:  {latency.mean_ttft:8.3f} s   (P99 {latency.p99_ttft:.3f} s)")
    print(f"Mean TPOT:  {latency.mean_tpot:8.3f} s   (P99 MTPOT {latency.p99_mtpot:.3f} s)")
    print(f"Evictions:  {result.total_evictions}")


if __name__ == "__main__":
    main()

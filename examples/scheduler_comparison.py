"""Compare the three scheduler families on a decode-heavy reasoning workload.

This reproduces the motivating scenario of the paper's introduction: a
ChatGPT-o1-style service whose outputs are much longer than its inputs.  The
script sweeps the number of concurrent clients for the conservative,
aggressive, and Past-Future schedulers and prints the goodput curves plus the
Table-1-style memory report at the heaviest load.

Run with:  python examples/scheduler_comparison.py
"""

from __future__ import annotations

from repro.analysis.experiments import (
    ExperimentConfig,
    memory_report_from_run,
    run_experiment,
)
from repro.analysis.sweep import scheduler_comparison_sweep
from repro.analysis.tables import render_curves, render_table
from repro.hardware.platform import paper_platform
from repro.serving.sla import SLASpec
from repro.workloads.sharegpt import generate_sharegpt_o1_workload
from repro.workloads.spec import scale_workload

#: Scale request lengths (and the KV capacity below) so the sweep finishes in
#: a few seconds; scheduling behaviour depends only on the footprint/capacity
#: ratio, which is preserved.
SCALE = 1.0 / 16.0
SLA = SLASpec(ttft_limit=10.0, mtpot_limit=0.5)

SCHEDULERS = {
    "Conservative": {"scheduler_name": "conservative"},
    "Aggressive (vLLM-style)": {"scheduler_name": "aggressive", "scheduler_kwargs": {"watermark": 0.99}},
    "Past-Future (LightLLM)": {
        "scheduler_name": "past-future",
        "scheduler_kwargs": {"reserved_fraction": 0.03, "seed": 1, "num_samples": 4},
    },
}


def main() -> None:
    platform = paper_platform("7b-a100")
    capacity = int(platform.token_capacity * SCALE)
    workload = scale_workload(generate_sharegpt_o1_workload(250, seed=5), SCALE)
    print(f"Platform: {platform.describe()} (scaled capacity {capacity} tokens)")
    print(f"Workload: {workload.name} — decode-heavy chain-of-thought outputs\n")

    curves = scheduler_comparison_sweep(
        platform,
        workload,
        client_counts=(8, 32, 64, 128),
        scheduler_configs=SCHEDULERS,
        sla=SLA,
        token_capacity_override=capacity,
        chunked_prefill_tokens=512,
    )
    print(
        render_curves(
            curves,
            x_label="clients",
            x_getter=lambda p: p.num_clients,
            y_getter=lambda p: p.goodput,
            title="Goodput (tokens/s) vs concurrent clients",
        )
    )

    print("\nMemory behaviour at the heaviest load (128 clients):")
    rows = []
    for label, spec in SCHEDULERS.items():
        config = ExperimentConfig(
            platform=platform,
            scheduler_name=spec["scheduler_name"],
            scheduler_kwargs=spec.get("scheduler_kwargs", {}),
            num_clients=128,
            token_capacity_override=capacity,
            chunked_prefill_tokens=512,
        )
        result = run_experiment(config, workload)
        report = memory_report_from_run(result)
        rows.append(
            {
                "scheduler": label,
                "decoding_steps": report.decoding_steps,
                "consumed_memory": f"{report.consumed_memory_fraction:.1%}",
                "future_required": f"{report.future_required_fraction:.1%}",
                "evicted_requests": f"{report.evicted_request_fraction:.1%}",
            }
        )
    print(render_table(rows))


if __name__ == "__main__":
    main()

"""Analyse output-length distribution stability across trace windows.

Reproduces the empirical observation behind the "Past" half of the scheduler
(Section 3.2 / Figures 3-4 of the paper): the output-length distribution of
the most recent window of requests predicts the next window, even for API
traces whose global mixture drifts over time.

Run with:  python examples/trace_similarity_analysis.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.metrics.similarity import adjacent_window_similarity, window_similarity_matrix
from repro.workloads.burstgpt import generate_api_trace, generate_conversation_trace


def main() -> None:
    traces = {
        "Conversation (single service)": generate_conversation_trace(20_000, seed=1),
        "API (mixed, drifting)": generate_api_trace(20_000, seed=2, drift_period=8_000),
    }

    rows = []
    for name, trace in traces.items():
        matrix = window_similarity_matrix(trace.output_lengths, window_size=1000)
        rows.append(
            {
                "trace": name,
                "windows": matrix.num_windows,
                "adjacent_windows": f"{matrix.diagonal_mean():.3f}",
                "all_window_pairs": f"{matrix.global_mean():.3f}",
            }
        )
    print(render_table(rows, title="Cosine similarity of output-length histograms (window = 1000 requests)"))
    print()
    print("Adjacent windows stay similar even when the global mixture drifts —")
    print("this is why the scheduler predicts from the most recent finished requests.\n")

    rows = []
    for historical in (100, 500, 1000, 2000):
        result = adjacent_window_similarity(
            traces["API (mixed, drifting)"].output_lengths,
            historical_window=historical,
            running_window=500,
        )
        rows.append(
            {
                "historical_window": historical,
                "adjacent_similarity": f"{result.diagonal_mean:.3f}",
                "global_similarity": f"{result.global_mean:.3f}",
            }
        )
    print(render_table(rows, title="Effect of the historical window size (API trace, running window = 500)"))
    print("\nThe paper adopts a historical window of 1000 requests as a robust default.")


if __name__ == "__main__":
    main()

"""Tracing: capture a request-lifecycle timeline and export it for Perfetto.

Runs a small cluster (three replicas, round-robin routing) with a
``JsonlTracer`` attached, prints the event census and the engine's
jump-accounting summary, derives per-request queued/prefill/decode phases,
and writes a Chrome ``trace_event`` JSON you can open at
https://ui.perfetto.dev or chrome://tracing.

Run with:  python examples/tracing.py
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.hardware.platform import paper_platform
from repro.obs.export import derive_request_phases, export_chrome_trace
from repro.obs.tracer import JsonlTracer, read_jsonl_trace
from repro.serving.cluster import ClusterSimulator
from repro.workloads.sharegpt import generate_sharegpt_workload
from repro.workloads.spec import scale_workload

TRACE_PATH = Path("results/tracing_example.jsonl")
CHROME_PATH = Path("results/tracing_example.trace.json")


def main() -> None:
    workload = scale_workload(generate_sharegpt_workload(60, seed=11), 0.25)

    with JsonlTracer(TRACE_PATH) as tracer:
        cluster = ClusterSimulator(
            platform=paper_platform("7b-a100"),
            num_replicas=3,
            router="least-outstanding",
            scheduler_name="past-future",
            scheduler_kwargs={"reserved_fraction": 0.05, "seed": 7},
            token_capacity_override=2048,
            tracer=tracer,
        )
        result = cluster.run_closed_loop(workload, num_clients=12)

    events = read_jsonl_trace(TRACE_PATH)
    print(f"Run completed={result.completed}: {len(events)} events in {TRACE_PATH}")
    for name, count in sorted(Counter(event.name for event in events).items()):
        print(f"  {name}: {count}")

    jump = result.jump_stats.summary()
    print(
        f"\nJump accounting: {jump['steps_fused']} iterations fused across "
        f"{jump['jumps']} macro-steps ({jump['fused_fraction']:.1%} of all iterations; "
        f"{jump['silent_jumps']} silent, {jump['saturated_jumps']} saturated)"
    )

    phases = derive_request_phases(events)
    for name in ("queued", "prefill", "decode"):
        durations = sorted(p.duration for p in phases if p.name == name)
        mid = durations[len(durations) // 2]
        print(f"  {name}: {len(durations)} phases, p50 {mid:.3f}s, max {durations[-1]:.3f}s")

    export_chrome_trace(events, CHROME_PATH)
    print(f"\nChrome trace written to {CHROME_PATH} — open it at https://ui.perfetto.dev")
    print(f"Terminal report:  python tools/trace_report.py {TRACE_PATH}")


if __name__ == "__main__":
    main()

"""repro: reproduction of the Past-Future scheduler for LLM serving (ASPLOS 2025).

The package is organised as

* :mod:`repro.core` — the paper's contribution (output-length prediction and
  future-required-memory admission control),
* :mod:`repro.schedulers` — baseline admission policies and the registry,
* :mod:`repro.engine`, :mod:`repro.memory`, :mod:`repro.hardware`,
  :mod:`repro.serving`, :mod:`repro.workloads` — the serving-system substrate
  (continuous batching, KV-cache pool, cost model, client models, traces),
* :mod:`repro.metrics`, :mod:`repro.frameworks`, :mod:`repro.analysis` —
  measurement, comparator profiles, and experiment drivers.

The most common entry points are re-exported here.
"""

from repro.core.past_future import PastFutureScheduler
from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.hardware.platform import Platform, make_platform, paper_platform
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.serving.server import ServingSimulator
from repro.serving.sla import SLA_LARGE_MODEL, SLA_SMALL_MODEL, SLASpec
from repro.workloads.spec import RequestSpec, Workload

__version__ = "1.0.0"

__all__ = [
    "PastFutureScheduler",
    "ExperimentConfig",
    "run_experiment",
    "Platform",
    "make_platform",
    "paper_platform",
    "available_schedulers",
    "create_scheduler",
    "ServingSimulator",
    "SLA_LARGE_MODEL",
    "SLA_SMALL_MODEL",
    "SLASpec",
    "RequestSpec",
    "Workload",
    "__version__",
]

"""Experiment drivers, sweeps, and text-table rendering."""

from repro.analysis.autoscale_sweep import (
    AutoscaleExperimentConfig,
    autoscale_comparison_sweep,
    autoscale_table,
    run_autoscale_experiment,
)
from repro.analysis.cluster_sweep import (
    ClusterExperimentConfig,
    fleet_table,
    router_comparison_sweep,
    run_cluster_experiment,
)
from repro.analysis.experiments import (
    ExperimentConfig,
    memory_report_from_run,
    quick_platform,
    run_experiment,
    run_framework,
)
from repro.analysis.sweep import (
    FrameworkPoint,
    ParameterPoint,
    SweepPoint,
    best_goodput,
    best_throughput,
    client_sweep,
    framework_sweep,
    parameter_sweep,
    scheduler_comparison_sweep,
)
from repro.analysis.tables import render_curves, render_table

__all__ = [
    "AutoscaleExperimentConfig",
    "autoscale_comparison_sweep",
    "autoscale_table",
    "run_autoscale_experiment",
    "ClusterExperimentConfig",
    "fleet_table",
    "router_comparison_sweep",
    "run_cluster_experiment",
    "ExperimentConfig",
    "memory_report_from_run",
    "quick_platform",
    "run_experiment",
    "run_framework",
    "FrameworkPoint",
    "ParameterPoint",
    "SweepPoint",
    "best_goodput",
    "best_throughput",
    "client_sweep",
    "framework_sweep",
    "parameter_sweep",
    "scheduler_comparison_sweep",
    "render_curves",
    "render_table",
]

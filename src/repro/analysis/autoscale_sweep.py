"""Autoscaling experiments: policy comparisons over an elastic fleet (Fig 11).

Mirrors :mod:`repro.analysis.cluster_sweep` one level up: an
:class:`AutoscaleExperimentConfig` pins every knob of one elastic-fleet run,
and :func:`autoscale_comparison_sweep` replays the *same* stamped workload
under each autoscaling policy, so the only varying factor is how the fleet
is sized over time.  The headline metric is **goodput per replica-second**
(see :meth:`repro.serving.results.ClusterResult.goodput_per_replica_second`):
raw goodput divides by wall-clock, which forgives a peak-provisioned static
fleet for idling through every lull.

The ``static`` policy is run as the peak-provisioned baseline — a fixed fleet
of ``max_replicas`` — while elastic policies start at ``initial_replicas``
and move within ``[min_replicas, max_replicas]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hardware.platform import Platform
from repro.serving.autoscale import (
    Autoscaler,
    AutoscalerPolicy,
    available_autoscale_policies,
    create_autoscale_policy,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.results import ClusterResult
from repro.serving.routing import Router
from repro.serving.server import SimulationLimits
from repro.serving.sla import SLASpec, sla_for_model
from repro.workloads.spec import Workload


@dataclass
class AutoscaleExperimentConfig:
    """Everything needed to reproduce one elastic-fleet serving run.

    Exactly one of ``platform`` / ``platforms`` must be set; with
    ``platforms`` the elastic fleet is heterogeneous — launches (including
    autoscaler scale-ups) cycle through the platform list, and the
    predictive policy sizes the fleet in capacity units rather than replica
    counts.  ``capacity_scale`` scales each replica's own platform capacity
    (see :class:`repro.analysis.cluster_sweep.ClusterExperimentConfig`).
    """

    platform: Platform | None = None
    router: Router | str = "least-outstanding"
    initial_replicas: int = 2
    min_replicas: int = 1
    max_replicas: int = 6
    decision_interval: float = 1.0
    warmup_delay: float = 2.0
    sample_window: float = 5.0
    scheduler_name: str = "past-future"
    scheduler_kwargs: dict = field(default_factory=dict)
    block_size: int = 1
    chunked_prefill_tokens: int | None = None
    token_capacity_override: int | None = None
    capacity_scale: float | None = None
    reject_when_saturated: bool = False
    platforms: Sequence[Platform] | None = None
    limits: SimulationLimits = field(default_factory=SimulationLimits)
    #: event-jump fast path; ``False`` bisects against the reference loop.
    fast_path: bool = True

    @property
    def primary_platform(self) -> Platform:
        """The homogeneous platform, or the first of the heterogeneous cycle."""
        if self.platform is not None:
            return self.platform
        if self.platforms:
            return self.platforms[0]
        raise ValueError("exactly one of platform / platforms is required")

    def build_autoscaler(self, policy: AutoscalerPolicy | str, **policy_kwargs) -> Autoscaler:
        """Instantiate a fresh autoscaler around the given policy."""
        if isinstance(policy, str):
            policy = create_autoscale_policy(policy, **policy_kwargs)
        elif policy_kwargs:
            raise ValueError("policy_kwargs only apply when policy is a registry name")
        return Autoscaler(
            policy=policy,
            interval=self.decision_interval,
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            warmup_delay=self.warmup_delay,
            sample_window=self.sample_window,
        )

    def build_simulator(
        self, policy: AutoscalerPolicy | str, **policy_kwargs
    ) -> ClusterSimulator:
        """Instantiate a fresh elastic fleet governed by the given policy.

        The ``static`` policy gets a fixed peak fleet of ``max_replicas``;
        elastic policies start at ``initial_replicas``.
        """
        autoscaler = self.build_autoscaler(policy, **policy_kwargs)
        static = autoscaler.policy.name == "static"
        return ClusterSimulator(
            platform=self.platform,
            num_replicas=self.max_replicas if static else self.initial_replicas,
            router=self.router,
            scheduler_name=self.scheduler_name,
            scheduler_kwargs=self.scheduler_kwargs,
            block_size=self.block_size,
            chunked_prefill_tokens=self.chunked_prefill_tokens,
            token_capacity_override=self.token_capacity_override,
            capacity_scale=self.capacity_scale,
            reject_when_saturated=self.reject_when_saturated,
            platforms=self.platforms,
            autoscaler=autoscaler,
            limits=self.limits,
            fast_path=self.fast_path,
        )

    def default_sla(self) -> SLASpec:
        """The paper's SLA preset for the configured model."""
        return sla_for_model(self.primary_platform.model.name)


def run_autoscale_experiment(
    config: AutoscaleExperimentConfig,
    workload: Workload,
    policy: AutoscalerPolicy | str,
    request_rate: float | None = None,
    seed: int = 0,
    **policy_kwargs,
) -> ClusterResult:
    """Execute one open-loop elastic-fleet run.

    The workload should carry recorded arrival times (e.g. from
    :func:`repro.workloads.arrivals.assign_bursty_arrivals`) unless
    ``request_rate`` is given for plain Poisson arrivals.
    """
    simulator = config.build_simulator(policy, **policy_kwargs)
    return simulator.run_open_loop(workload, request_rate=request_rate, seed=seed)


def autoscale_comparison_sweep(
    config: AutoscaleExperimentConfig,
    workload: Workload,
    policies: list[str] | None = None,
    policy_kwargs: dict[str, dict] | None = None,
    request_rate: float | None = None,
    seed: int = 0,
) -> dict[str, ClusterResult]:
    """Run the same workload under each autoscaling policy (Figure 11 rows).

    Args:
        config: the fleet configuration shared by every run.
        workload: the requests to serve; identical (including arrival times)
            for every policy so results are directly comparable.
        policies: policy registry names to compare; all of them by default.
        policy_kwargs: optional per-policy constructor overrides, keyed by
            registry name.
    """
    names = policies if policies is not None else available_autoscale_policies()
    overrides = policy_kwargs or {}
    return {
        name: run_autoscale_experiment(
            config,
            workload,
            name,
            request_rate=request_rate,
            seed=seed,
            **overrides.get(name, {}),
        )
        for name in names
    }


def autoscale_table(results: dict[str, ClusterResult], sla: SLASpec) -> list[dict[str, object]]:
    """Rows for :func:`repro.analysis.tables.render_table`, one per policy."""
    rows: list[dict[str, object]] = []
    for name, result in results.items():
        summary = result.fleet_summary(sla)
        rows.append(
            {
                "policy": name,
                "goodput_per_rs": round(summary.goodput_per_replica_second, 2),
                "goodput_tok_s": round(summary.goodput, 1),
                "replica_s": round(summary.replica_seconds, 1),
                "avg_fleet": round(summary.avg_fleet_size, 2),
                "peak_fleet": max(
                    (sample.provisioned for sample in result.fleet_timeline), default=0
                ),
                "launched": result.num_replicas,
                "sla_attainment": f"{summary.sla_attainment:.1%}",
                "p99_ttft_s": round(summary.p99_ttft, 3),
                "rejected": summary.rejected_requests,
            }
        )
    return rows

"""Cluster experiments: router comparisons over a replica fleet (Figure 10).

Mirrors :mod:`repro.analysis.experiments` one level up: a
:class:`ClusterExperimentConfig` pins every knob of one fleet run, and
:func:`router_comparison_sweep` replays the *same* stamped workload through
the same fleet under each routing policy, so the only varying factor is
placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hardware.platform import Platform
from repro.serving.cluster import ClusterSimulator
from repro.serving.results import ClusterResult
from repro.serving.routing import Router, available_routers
from repro.serving.server import SimulationLimits
from repro.serving.sla import SLASpec, sla_for_model
from repro.workloads.spec import Workload


@dataclass
class ClusterExperimentConfig:
    """Everything needed to reproduce one cluster serving run.

    Exactly one of ``platform`` (homogeneous fleet) / ``platforms``
    (heterogeneous fleet; replicas cycle through the list in launch order)
    must be set.  ``capacity_scale`` is the scaled-experiment knob for
    heterogeneous fleets: it multiplies each replica's *own* platform
    capacity, preserving the capacity ratios an absolute
    ``token_capacity_override`` would erase.
    """

    platform: Platform | None = None
    num_replicas: int = 4
    scheduler_name: str = "past-future"
    scheduler_kwargs: dict = field(default_factory=dict)
    block_size: int = 1
    chunked_prefill_tokens: int | None = None
    token_capacity_override: int | None = None
    capacity_scale: float | None = None
    reject_when_saturated: bool = False
    platforms: Sequence[Platform] | None = None
    limits: SimulationLimits = field(default_factory=SimulationLimits)
    #: event-jump fast path; ``False`` bisects against the reference loop.
    fast_path: bool = True

    @property
    def primary_platform(self) -> Platform:
        """The homogeneous platform, or the first of the heterogeneous cycle."""
        if self.platform is not None:
            return self.platform
        if self.platforms:
            return self.platforms[0]
        raise ValueError("exactly one of platform / platforms is required")

    def build_simulator(self, router: Router | str) -> ClusterSimulator:
        """Instantiate a fresh fleet behind the given router."""
        return ClusterSimulator(
            platform=self.platform,
            num_replicas=self.num_replicas,
            router=router,
            scheduler_name=self.scheduler_name,
            scheduler_kwargs=self.scheduler_kwargs,
            block_size=self.block_size,
            chunked_prefill_tokens=self.chunked_prefill_tokens,
            token_capacity_override=self.token_capacity_override,
            capacity_scale=self.capacity_scale,
            reject_when_saturated=self.reject_when_saturated,
            platforms=self.platforms,
            limits=self.limits,
            fast_path=self.fast_path,
        )

    def default_sla(self) -> SLASpec:
        """The paper's SLA preset for the configured model."""
        return sla_for_model(self.primary_platform.model.name)


def run_cluster_experiment(
    config: ClusterExperimentConfig,
    workload: Workload,
    router: Router | str,
    request_rate: float | None = None,
    seed: int = 0,
) -> ClusterResult:
    """Execute one open-loop cluster run.

    The workload should carry recorded arrival times (e.g. from
    :func:`repro.workloads.arrivals.assign_bursty_arrivals`) unless
    ``request_rate`` is given for plain Poisson arrivals.
    """
    simulator = config.build_simulator(router)
    return simulator.run_open_loop(workload, request_rate=request_rate, seed=seed)


def router_comparison_sweep(
    config: ClusterExperimentConfig,
    workload: Workload,
    routers: list[str] | None = None,
    request_rate: float | None = None,
    seed: int = 0,
) -> dict[str, ClusterResult]:
    """Run the same workload under each routing policy (Figure 10 rows).

    Args:
        config: the fleet configuration shared by every run.
        workload: the requests to serve; identical (including arrival times)
            for every router so results are directly comparable.
        routers: router registry names to compare; all of them by default.
    """
    names = routers if routers is not None else available_routers()
    return {
        name: run_cluster_experiment(config, workload, name, request_rate=request_rate, seed=seed)
        for name in names
    }


def fleet_table(results: dict[str, ClusterResult], sla: SLASpec) -> list[dict[str, object]]:
    """Rows for :func:`repro.analysis.tables.render_table`, one per router."""
    rows: list[dict[str, object]] = []
    for name, result in results.items():
        row: dict[str, object] = {"router": name}
        row.update(result.fleet_summary(sla).as_row())
        rows.append(row)
    return rows


def fleet_class_table(
    results: dict[str, ClusterResult], sla: SLASpec
) -> list[dict[str, object]]:
    """Per-router, per-SLA-class rows (the fig12 breakdown).

    Each row carries one class slice of one router's run: goodput, goodput
    per (fleet-wide) replica-second, attainment under the class's own
    deadlines, and rejects attributed to the class.
    """
    rows: list[dict[str, object]] = []
    for name, result in results.items():
        for class_row in result.fleet_summary(sla).class_rows():
            row: dict[str, object] = {"router": name}
            row.update(class_row)
            rows.append(row)
    return rows

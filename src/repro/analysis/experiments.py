"""Single-run experiment driver: workload x platform x scheduler -> RunResult.

This is the common entry point the benchmarks and examples share.  An
:class:`ExperimentConfig` pins every knob of one run (so results are
reproducible from the config alone); :func:`run_experiment` builds the
simulator and executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cost_model import CostModel
from repro.engine.eviction import EvictionPolicy
from repro.frameworks.profiles import FrameworkProfile
from repro.hardware.platform import Platform, paper_platform
from repro.metrics.memory_stats import MemoryReport, build_memory_report
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import create_scheduler
from repro.serving.results import RunResult
from repro.serving.server import ServingSimulator, SimulationLimits
from repro.serving.sla import SLASpec, sla_for_model
from repro.workloads.spec import Workload


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one serving run."""

    platform: Platform
    scheduler_name: str = "past-future"
    scheduler_kwargs: dict = field(default_factory=dict)
    num_clients: int = 32
    think_time: float = 0.0
    block_size: int = 1
    chunked_prefill_tokens: int | None = None
    token_capacity_override: int | None = None
    speed_factor: float = 1.0
    limits: SimulationLimits = field(default_factory=SimulationLimits)
    #: event-jump fast path; ``False`` bisects against the reference loop.
    fast_path: bool = True

    def build_scheduler(self) -> Scheduler:
        """Instantiate the configured scheduler."""
        return create_scheduler(self.scheduler_name, **self.scheduler_kwargs)

    def build_cost_model(self) -> CostModel:
        """Instantiate the cost model with the configured speed factor."""
        return CostModel(self.platform, speed_factor=self.speed_factor)

    def default_sla(self) -> SLASpec:
        """The paper's SLA preset for the configured model."""
        return sla_for_model(self.platform.model.name)


def run_experiment(
    config: ExperimentConfig,
    workload: Workload,
    scheduler: Scheduler | None = None,
    eviction_policy: EvictionPolicy | None = None,
) -> RunResult:
    """Execute one closed-loop serving run.

    Args:
        config: the experiment configuration.
        workload: the requests to serve.
        scheduler: pre-built scheduler instance; built from the config if
            omitted (passing one lets callers reuse a configured object, e.g.
            a framework profile's scheduler).
        eviction_policy: override for the engine's eviction policy.
    """
    scheduler = scheduler or config.build_scheduler()
    simulator = ServingSimulator(
        platform=config.platform,
        scheduler=scheduler,
        cost_model=config.build_cost_model(),
        eviction_policy=eviction_policy,
        block_size=config.block_size,
        chunked_prefill_tokens=config.chunked_prefill_tokens,
        token_capacity_override=config.token_capacity_override,
        limits=config.limits,
        fast_path=config.fast_path,
    )
    return simulator.run_closed_loop(
        workload,
        num_clients=config.num_clients,
        think_time=config.think_time,
    )


def run_framework(
    profile: FrameworkProfile,
    platform: Platform,
    workload: Workload,
    num_clients: int,
    token_capacity_override: int | None = None,
    limits: SimulationLimits | None = None,
) -> RunResult:
    """Run one framework profile end to end (Figure 9 / Table 2 helper)."""
    config = ExperimentConfig(
        platform=platform,
        num_clients=num_clients,
        chunked_prefill_tokens=profile.chunked_prefill_tokens,
        token_capacity_override=token_capacity_override,
        speed_factor=profile.speed_factor,
        limits=limits or SimulationLimits(),
    )
    result = run_experiment(config, workload, scheduler=profile.build_scheduler())
    result.scheduler = profile.name
    return result


def memory_report_from_run(result: RunResult) -> MemoryReport:
    """Build the Table-1 style memory report from a finished run."""
    if result.memory_timeline is None:
        raise ValueError("run has no memory timeline")
    return build_memory_report(
        scheduler=result.scheduler,
        workload=result.workload,
        stats=result.engine_stats,
        timeline=result.memory_timeline,
        requests=result.requests,
    )


def quick_platform(key: str = "7b-a100") -> Platform:
    """Shortcut to one of the paper's named platforms (defaults to 7B on A100)."""
    return paper_platform(key)

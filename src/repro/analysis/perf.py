"""Tracked performance benchmarks for the simulator core (``BENCH_core.json``).

The reproduction's figures are produced by stepping the continuous-batching
engine one decode iteration at a time; the event-jump fast path
(:meth:`repro.engine.engine.InferenceEngine.try_jump`) fuses provably
event-free iterations into vectorized macro-steps with bit-identical results.
This module pins that claim under regression tracking:

* eight scenarios — single-engine goodput-vs-clients (the fig07 shape), a
  deeply *saturated* single engine (non-empty waiting queue, the regime the
  saturated-phase jump targets), cluster routing (fig10), autoscaling
  (fig11), a heterogeneous mixed-GPU fleet (the fig12 shape), the
  multi-tenant fairness stack (the fig13 shape: VTC scheduling plus
  overload throttling under a heavy-tail tenant population), a chaos
  fleet under a seeded fault plan (the fig14 shape: crashes, a straggler,
  retries, and replacement launches), and a session-affinity fleet serving
  multi-turn agentic interactions with per-replica KV prefix reuse (the
  fig15 shape: closed-loop spawned arrivals bounding the jump horizon) —
  run at
  **full-scale** request lengths (the regime the ROADMAP's fleet experiments
  are bottlenecked on), each once with the fast path and once with the
  reference one-iteration loop (``fast_path=False``);
* the two runs' :class:`~repro.serving.results.RunResult` metrics are hashed
  and compared — any divergence fails the harness before any timing is
  reported;
* wall-clock times and speedups are written to ``BENCH_core.json`` at the
  repo root, which CI's ``perf-smoke`` job regenerates and compares against
  the committed numbers.

Speedups are reported against the *in-repo* reference loop, which already
includes every satellite fix (O(1) pool accounting, incremental admission,
vectorized prediction) — i.e. they are conservative.  The
``seed_loop_seconds`` entries record each scenario measured once against the
tree *before* the PR that introduced it (see :data:`SEED_LOOP_SECONDS`); they
are kept for context and are not re-measured by CI.

Run ``python -m repro.analysis.perf`` to regenerate ``BENCH_core.json``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.engine.engine import JumpStats
from repro.hardware.platform import Platform, paper_platform, paper_platforms
from repro.obs.tracer import Tracer
from repro.schedulers.registry import create_scheduler
from repro.serving.autoscale import Autoscaler, create_autoscale_policy
from repro.serving.cluster import ClusterSimulator
from repro.serving.faults import FaultPlan, ReplicaCrash, RetryPolicy, Straggler
from repro.serving.results import ClusterResult, RunResult
from repro.serving.server import ServingSimulator
from repro.serving.throttle import OverloadThrottle
from repro.workloads.arrivals import (
    assign_bursty_arrivals,
    assign_diurnal_arrivals,
    assign_poisson_arrivals,
)
from repro.workloads.interactions import generate_interactions
from repro.workloads.sharegpt import (
    generate_sharegpt_o1_workload,
    generate_sharegpt_workload,
)
from repro.workloads.spec import assign_sla_classes, scale_workload
from repro.workloads.tenants import assign_tenants, generate_tenant_population


def _repo_root() -> Path:
    """The checkout root (where ``pyproject.toml`` lives), else the cwd."""
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


#: Repo-root output file; the perf trajectory is tracked in version control.
BENCH_PATH = _repo_root() / "BENCH_core.json"

#: Wall-clock seconds of each scenario under the *pre-PR* loop, measured once
#: on the machine that produced the committed ``BENCH_core.json``.  Context
#: only — CI never compares against these.  The first three entries are the
#: loop before the event-jump fast path existed (commit ``53a8e4e``); the
#: saturated and heterogeneous entries are the loop *with* that fast path but
#: before saturated-phase jumps (commit ``7edef41``), i.e. each entry is the
#: best the tree could do before the PR that introduced its scenario.
SEED_LOOP_SECONDS = {
    "fig07_goodput_vs_clients": 14.5,
    "fig10_cluster_routing": 2.70,
    "fig11_autoscaling": 2.38,
    "fig07_saturated": 3.52,
    "fig12_heterogeneous": 0.38,
}


# ---------------------------------------------------- snapshots / fingerprints
def run_snapshot(result: RunResult) -> dict:
    """Everything a :class:`RunResult` exposes, in exact-comparable form.

    The single serialization oracle shared by the fast-path equivalence
    tests (which diff it) and the perf harness (which hashes it) — one
    place to extend when results grow new fields.
    """
    requests = sorted(result.requests, key=lambda r: r.request_id)
    snapshot = {
        "duration": result.duration,
        "completed": result.completed,
        "stats": result.engine_stats,
        "states": [r.state for r in requests],
        "token_times": [tuple(r.token_times) for r in requests],
        "admission_times": [tuple(r.admission_times) for r in requests],
        "finish_times": [r.finish_time for r in requests],
        "evictions": [r.eviction_count for r in requests],
        "memory": [
            (
                s.step,
                s.time,
                s.used_tokens,
                s.future_required_tokens,
                s.running_requests,
                s.queued_requests,
            )
            for s in result.memory_timeline.samples
        ],
    }
    # Throttle bookkeeping is appended only when present, so fingerprints of
    # runs without a throttle — including every committed baseline — are
    # unchanged by the fields' existence.
    if result.rejected:
        snapshot["rejected"] = [r.request_id for r in result.rejected]
        snapshot["reject_reasons"] = dict(sorted(result.reject_reasons.items()))
    # Session and prefix-cache bookkeeping follow the same rule: absent from
    # every session-free run, so the committed baselines are untouched.
    if result.prefix_stats is not None:
        snapshot["prefix"] = result.prefix_stats.summary()
    if any(r.spec.session_id is not None for r in requests):
        snapshot["sessions"] = result.session_summary().summary()
    return snapshot


def cluster_snapshot(result: ClusterResult) -> dict:
    """Exact-comparable view of a fleet run: replicas plus fleet bookkeeping."""
    snapshot = {
        "duration": result.duration,
        "completed": result.completed,
        "replicas": [run_snapshot(replica) for replica in result.replicas],
        "rejected": [r.request_id for r in result.rejected],
        "fleet": [(s.time, s.active, s.warming, s.draining) for s in result.fleet_timeline],
        "lifetimes": [
            (life.replica_id, life.launched_at, life.ready_at, life.retired_at)
            for life in result.lifetimes
        ],
    }
    # Fault bookkeeping is appended only when a fault plan actually acted, so
    # fingerprints of fault-free runs — including every committed baseline —
    # are unchanged by the fields' existence.
    if result.fault_events or result.failed or result.retries or result.migrations:
        snapshot["failed"] = sorted(r.request_id for r in result.failed)
        snapshot["lost_tokens"] = result.lost_tokens
        snapshot["retries"] = result.retries
        snapshot["migrations"] = result.migrations
        snapshot["faults"] = [
            (e.time, e.kind, e.replica, tuple(sorted(e.detail.items())))
            for e in result.fault_events
        ]
    # Fleet-level session/prefix view: absent unless sessions were served (the
    # per-replica prefix stats already live in each replica's snapshot).
    if any(r.spec.session_id is not None for r in result.requests):
        snapshot["sessions"] = result.session_summary().summary()
    return snapshot


def _hash_parts(parts: list[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def run_fingerprint(result: RunResult) -> str:
    """Digest of :func:`run_snapshot`; ``repr`` round-trips floats exactly,
    so two runs collide only when their metrics are bit-identical."""
    return _hash_parts([repr(run_snapshot(result))])


def cluster_fingerprint(result: ClusterResult) -> str:
    """Digest of :func:`cluster_snapshot` (see :func:`run_fingerprint`)."""
    return _hash_parts([repr(cluster_snapshot(result))])


# ------------------------------------------------------------------ scenarios
@dataclass
class Scenario:
    """One timed workload.

    ``run`` executes the scenario under the given loop and returns
    ``(simulation_seconds, fingerprint, jump_summary)`` — only the
    simulation itself is timed; workload generation and fingerprint hashing
    are excluded.  ``jump_summary`` is the merged
    :meth:`~repro.engine.engine.JumpStats.summary` across the scenario's
    runs (the engine's own profile of how much work the event jumps fused).
    An optional ``tracer`` keyword attaches an observer to every simulator
    the scenario builds (see :mod:`repro.obs`); fingerprints are tracer-
    independent, so traced runs remain valid measurements of *results* —
    only the timings become untrustworthy.
    """

    name: str
    description: str
    run: Callable[..., tuple[float, str, dict]] = field(repr=False)


def _fig07_scenario(fast_path: bool, tracer: Tracer | None = None) -> tuple[float, str, dict]:
    """Single-engine goodput-vs-clients sweep (the Figure 7 shape).

    Full-scale ShareGPT-o1 lengths on Llama-2-7B/A100 under the Past-Future
    scheduler, swept over client counts from light load (almost every
    iteration is silent and fuses into jumps) to deep saturation (the
    admission scheduler is consulted every iteration).
    """
    platform = paper_platform("7b-a100")
    parts: list[str] = []
    elapsed = 0.0
    jump = JumpStats()
    for num_clients in (8, 32, 64, 128):
        workload = generate_sharegpt_o1_workload(250, seed=71)
        simulator = ServingSimulator(
            platform,
            create_scheduler("past-future", reserved_fraction=0.03, seed=7, num_samples=4),
            token_capacity_override=platform.token_capacity,
            chunked_prefill_tokens=8192,
            fast_path=fast_path,
            tracer=tracer,
        )
        start = time.perf_counter()
        result = simulator.run_closed_loop(workload, num_clients=num_clients)
        elapsed += time.perf_counter() - start
        jump.merge(result.jump_stats)
        parts.append(f"clients={num_clients}:{run_fingerprint(result)}")
    return elapsed, _hash_parts(parts), jump.summary()


def _fig07_saturated_scenario(
    fast_path: bool, tracer: Tracer | None = None
) -> tuple[float, str, dict]:
    """Deep saturation: the regime the saturated-phase event jump targets.

    256 closed-loop clients against *half* the 7B pool keep the waiting queue
    non-empty for ~90% of all iterations, so the admission scheduler (and its
    RNG stream) is consulted essentially every step — the workload shape that
    dominated fleet-sweep wall-clock before ``try_jump_saturated``.
    """
    platform = paper_platform("7b-a100")
    workload = generate_sharegpt_o1_workload(400, seed=71)
    simulator = ServingSimulator(
        platform,
        create_scheduler("past-future", reserved_fraction=0.03, seed=7, num_samples=4),
        token_capacity_override=platform.token_capacity // 2,
        chunked_prefill_tokens=8192,
        fast_path=fast_path,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_closed_loop(workload, num_clients=256)
    elapsed = time.perf_counter() - start
    return elapsed, run_fingerprint(result), result.jump_stats.summary()


def _make_cluster(
    fast_path: bool,
    *,
    platform: Platform | None = None,
    platforms: Sequence[Platform] | None = None,
    num_replicas: int,
    router: str,
    token_capacity_override: int | None = None,
    capacity_scale: float | None = None,
    chunked_prefill_tokens: int | None = 8192,
    autoscaler: Autoscaler | None = None,
    faults: FaultPlan | None = None,
    prefix_cache_tokens: int | None = None,
    tracer: Tracer | None = None,
) -> ClusterSimulator:
    """Cluster factory shared by the fleet scenarios.

    Accepts either one ``platform`` (homogeneous fleet) or per-replica
    ``platforms`` (heterogeneous fleet, launches cycling the list) plus the
    matching capacity knob, so the harness can track mixed-GPU scenarios with
    the same plumbing the homogeneous ones use.
    """
    return ClusterSimulator(
        platform=platform,
        platforms=platforms,
        num_replicas=num_replicas,
        router=router,
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=token_capacity_override,
        capacity_scale=capacity_scale,
        chunked_prefill_tokens=chunked_prefill_tokens,
        autoscaler=autoscaler,
        faults=faults,
        prefix_cache_tokens=prefix_cache_tokens,
        fast_path=fast_path,
        tracer=tracer,
    )


def _fig10_workload():
    workload = generate_sharegpt_workload(400, seed=71)
    return assign_bursty_arrivals(
        workload,
        base_rate=0.2,
        burst_rate=8.0,
        burst_length=80,
        cycle_length=100,
        seed=9,
    )


def _fig10_scenario(fast_path: bool, tracer: Tracer | None = None) -> tuple[float, str, dict]:
    """Cluster routing under bursty traffic (the Figure 10 shape).

    Four replicas with an eighth of the 7B pool each behind the memory-aware
    router, serving a full-scale bursty ShareGPT trace with the
    aggressive (vLLM-watermark) per-replica scheduler.
    """
    platform = paper_platform("7b-a100")
    workload = _fig10_workload()
    simulator = _make_cluster(
        fast_path,
        platform=platform,
        num_replicas=4,
        router="memory-aware",
        token_capacity_override=platform.token_capacity // 8,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_open_loop(workload)
    elapsed = time.perf_counter() - start
    return elapsed, cluster_fingerprint(result), result.jump_stats.summary()


def _fig12_heterogeneous_scenario(
    fast_path: bool, tracer: Tracer | None = None
) -> tuple[float, str, dict]:
    """Mixed-GPU fleet under diurnal two-class traffic (the Figure 12 shape).

    Two A100 replicas plus one RTX-4090 replica (per-replica capacities scaled
    by ``capacity_scale`` so their ~6.6x ratio survives) behind the
    capacity-normalised memory-aware router, serving a diurnal ShareGPT-o1
    trace stamped with the interactive/batch class mix.  Tracks the
    heterogeneous-fleet plumbing from the placement-API redesign under the
    same fast-path-vs-reference regression harness as the homogeneous
    scenarios.
    """
    workload = scale_workload(
        generate_sharegpt_o1_workload(300, seed=71, max_new_tokens=4096), 0.5
    )
    workload = assign_sla_classes(workload, {"interactive": 0.7, "batch": 0.3}, seed=5)
    workload = assign_diurnal_arrivals(
        workload,
        base_rate=0.5,
        burst_rate=20.0,
        period=60.0,
        amplitude=0.6,
        burst_length=60,
        cycle_length=100,
        seed=9,
    )
    simulator = _make_cluster(
        fast_path,
        platforms=paper_platforms("7b-a100", "7b-a100", "7b-4090"),
        num_replicas=3,
        router="memory-aware",
        capacity_scale=1.0 / 8.0,
        chunked_prefill_tokens=4096,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_open_loop(workload)
    elapsed = time.perf_counter() - start
    return elapsed, cluster_fingerprint(result), result.jump_stats.summary()


def _fig11_scenario(fast_path: bool, tracer: Tracer | None = None) -> tuple[float, str, dict]:
    """Autoscaled fleet under bursty traffic (the Figure 11 shape).

    An elastic fleet (1–6 replicas, predictive policy, warm-up delay) serving
    the same class of full-scale bursty trace through the least-outstanding
    router.
    """
    platform = paper_platform("7b-a100")
    workload = assign_bursty_arrivals(
        generate_sharegpt_workload(400, seed=73),
        base_rate=0.1,
        burst_rate=4.0,
        burst_length=80,
        cycle_length=100,
        seed=11,
    )
    autoscaler = Autoscaler(
        policy=create_autoscale_policy(
            "predictive", target_utilization=0.8, scale_down_cooldown=60.0, default_length=2048
        ),
        interval=5.0,
        min_replicas=1,
        max_replicas=6,
        warmup_delay=30.0,
        sample_window=40.0,
    )
    simulator = _make_cluster(
        fast_path,
        platform=platform,
        num_replicas=2,
        router="least-outstanding",
        token_capacity_override=platform.token_capacity // 8,
        autoscaler=autoscaler,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_open_loop(workload)
    elapsed = time.perf_counter() - start
    return elapsed, cluster_fingerprint(result), result.jump_stats.summary()


def _fig13_fairness_scenario(
    fast_path: bool, tracer: Tracer | None = None
) -> tuple[float, str, dict]:
    """Multi-tenant fairness stack under load (the Figure 13 shape).

    Two single-engine runs over a heavy-tail tenant population (two abusive
    users holding half the traffic over a Zipf tail):

    * a deeply saturated closed-loop run under the VTC fair scheduler — the
      regime where ``saturated_no_admit_horizon`` must prove whole no-admit
      windows with reordered admission in play, and
    * an open-loop run under the weighted variant with a per-user RPM
      throttle in front of routing, exercising the reject path's fingerprint
      fields.
    """
    platform = paper_platform("7b-a100")
    population = generate_tenant_population(
        32, num_apps=4, abusive_users=2, abusive_share=0.5
    )
    parts: list[str] = []
    elapsed = 0.0
    jump = JumpStats()

    workload = assign_tenants(generate_sharegpt_o1_workload(250, seed=71), population, seed=13)
    simulator = ServingSimulator(
        platform,
        create_scheduler("vtc", watermark=0.95),
        token_capacity_override=platform.token_capacity // 2,
        chunked_prefill_tokens=8192,
        fast_path=fast_path,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_closed_loop(workload, num_clients=128)
    elapsed += time.perf_counter() - start
    jump.merge(result.jump_stats)
    parts.append(f"vtc-saturated:{run_fingerprint(result)}")

    workload = assign_tenants(generate_sharegpt_workload(300, seed=73), population, seed=17)
    workload = assign_poisson_arrivals(workload, request_rate=2.0, seed=19)
    simulator = ServingSimulator(
        platform,
        create_scheduler("weighted-vtc", weights={"user-0000": 2.0}, watermark=0.95),
        token_capacity_override=platform.token_capacity // 4,
        chunked_prefill_tokens=8192,
        fast_path=fast_path,
        throttle=OverloadThrottle(user_rpm=12),
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_open_loop(workload)
    elapsed += time.perf_counter() - start
    jump.merge(result.jump_stats)
    parts.append(f"weighted-throttled:{run_fingerprint(result)}")
    return elapsed, _hash_parts(parts), jump.summary()


def _fig14_fault_plan() -> FaultPlan:
    """The fig14 chaos plan: two crashes and one straggler mid-burst.

    Shared by this harness, the fig14 recovery benchmark, and CI's
    chaos-smoke determinism gate, so all three exercise the same seeded
    failure schedule.
    """
    return FaultPlan(
        crashes=[ReplicaCrash(time=40.0, replica=1), ReplicaCrash(time=110.0, replica=2)],
        stragglers=[Straggler(start=60.0, duration=45.0, replica=0, slowdown=3.0)],
        seed=23,
        retry_policy=RetryPolicy(base_delay=0.1, max_attempts=5, seed=23),
        replacement_warmup=15.0,
    )


def _fig14_failure_recovery_scenario(
    fast_path: bool, tracer: Tracer | None = None
) -> tuple[float, str, dict]:
    """Failure recovery under chaos (the Figure 14 shape).

    The fig10 bursty trace on a four-replica fleet, with a seeded fault plan
    layered on top: two replica crashes (replacements boot with a 15 s
    warm-up) and a 45 s 3x straggler window.  Crashed work re-dispatches
    through the retry policy and dead capacity is relaunched, so the run
    exercises every fault path — aborts, retries, replacement launches,
    degraded-health routing — under the same fast-path-vs-reference
    bit-identity gate as the fault-free scenarios.  FAULT events bound the
    event-jump horizon, so this also pins that macro-steps never fuse across
    a fault edge.
    """
    platform = paper_platform("7b-a100")
    workload = _fig10_workload()
    simulator = _make_cluster(
        fast_path,
        platform=platform,
        num_replicas=4,
        router="memory-aware",
        token_capacity_override=platform.token_capacity // 8,
        faults=_fig14_fault_plan(),
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_open_loop(workload)
    elapsed = time.perf_counter() - start
    return elapsed, cluster_fingerprint(result), result.jump_stats.summary()


def _fig15_interactions():
    """The fig15 session trace: heavy-tail multi-turn agentic interactions.

    Shared by this harness and the fig15 affinity benchmark so both exercise
    the same seeded conversation schedule.
    """
    return generate_interactions(
        120,
        seed=71,
        mean_prompt_tokens=256.0,
        mean_output_tokens=128.0,
        min_turns=2,
        max_turns=8,
        think_time=20.0,
        start_spacing=10.0,
    )


def _fig15_session_affinity_scenario(
    fast_path: bool, tracer: Tracer | None = None
) -> tuple[float, str, dict]:
    """Session-affinity fleet serving multi-turn interactions (the fig15 shape).

    120 heavy-tail agentic sessions (2–8 turns, each turn's prompt the full
    accumulated conversation) served closed-loop by a four-replica fleet
    behind the session-affinity router, with a per-replica KV prefix cache
    sized at half each replica's pool.  Every follow-up turn is *spawned* by
    its predecessor's completion, so the scenario pins the jump-horizon
    argument for reactive arrivals (a spawned turn must never be fused past)
    alongside the prefix claim/retain accounting, under the same
    fast-path-vs-reference bit-identity gate as the other fleets.
    """
    platform = paper_platform("7b-a100")
    simulator = _make_cluster(
        fast_path,
        platform=platform,
        num_replicas=4,
        router="session-affinity",
        token_capacity_override=platform.token_capacity // 8,
        prefix_cache_tokens=platform.token_capacity // 16,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = simulator.run_sessions(_fig15_interactions())
    elapsed = time.perf_counter() - start
    return elapsed, cluster_fingerprint(result), result.jump_stats.summary()


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="fig07_goodput_vs_clients",
        description="single engine, ShareGPT-o1 full length, past-future, clients 8-128",
        run=_fig07_scenario,
    ),
    Scenario(
        name="fig07_saturated",
        description="single engine at half pool, 256 clients, ~90% saturated iterations",
        run=_fig07_saturated_scenario,
    ),
    Scenario(
        name="fig10_cluster_routing",
        description="4-replica fleet, memory-aware router, bursty full-length trace",
        run=_fig10_scenario,
    ),
    Scenario(
        name="fig11_autoscaling",
        description="elastic 1-6 replica fleet, predictive policy, bursty full-length trace",
        run=_fig11_scenario,
    ),
    Scenario(
        name="fig12_heterogeneous",
        description="mixed 2x A100 + 1x RTX-4090 fleet, memory-aware router, diurnal two-class trace",
        run=_fig12_heterogeneous_scenario,
    ),
    Scenario(
        name="fig13_fairness",
        description="heavy-tail tenants: saturated VTC engine + throttled weighted-VTC open loop",
        run=_fig13_fairness_scenario,
    ),
    Scenario(
        name="fig14_failure_recovery",
        description="4-replica fleet under chaos: 2 crashes + 45s straggler, retries and replacements",
        run=_fig14_failure_recovery_scenario,
    ),
    Scenario(
        name="fig15_session_affinity",
        description="4-replica fleet, session-affinity router + prefix cache, 120 multi-turn sessions",
        run=_fig15_session_affinity_scenario,
    ),
)


# --------------------------------------------------------------------- driver
class FastPathDivergenceError(AssertionError):
    """The fast path produced different metrics than the reference loop."""


def _timed_runs(scenario: Scenario, fast_path: bool, repeats: int) -> tuple[float, str, dict]:
    """Best-of-``repeats`` wall-clock (the noise-robust estimator) + digest.

    Garbage collection is paused around each run so collection pauses land
    between measurements, not inside them; every repeat must produce the
    same digest (simulations are deterministic).  The jump summary of the
    last repeat is returned (identical across repeats, like the digest).
    """
    import gc

    best = None
    digest = None
    jump: dict = {}
    for _ in range(repeats):
        gc.collect()
        enabled = gc.isenabled()
        gc.disable()
        try:
            seconds, run_digest, jump = scenario.run(fast_path)
        finally:
            if enabled:
                gc.enable()
        if digest is None:
            digest = run_digest
        elif digest != run_digest:
            raise FastPathDivergenceError(
                f"scenario {scenario.name!r}: non-deterministic digest across repeats"
            )
        best = seconds if best is None else min(best, seconds)
    assert best is not None and digest is not None
    return best, digest, jump


def measure_scenario(scenario: Scenario, repeats: int = 2) -> dict:
    """Time one scenario under both loops and verify bit-identical results.

    The ``jump`` block is the fast-path run's
    :meth:`~repro.engine.engine.JumpStats.summary`: deterministic
    simulations make its counters machine-independent, so CI's perf-smoke
    gate can diff the fusion ratios against the committed baseline — a
    fast-path regression that silently falls back to the loop shows up here
    even when wall-clock noise hides it.
    """
    fast_seconds, fast_digest, fast_jump = _timed_runs(scenario, True, repeats)
    reference_seconds, reference_digest, _ = _timed_runs(scenario, False, repeats)
    if fast_digest != reference_digest:
        raise FastPathDivergenceError(
            f"scenario {scenario.name!r}: fast-path digest {fast_digest[:16]} != "
            f"reference digest {reference_digest[:16]}"
        )
    return {
        "description": scenario.description,
        "fast_seconds": round(fast_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "speedup": round(reference_seconds / fast_seconds, 2),
        "fingerprint": fast_digest,
        "jump": fast_jump,
    }


def run_benchmarks(names: list[str] | None = None, repeats: int = 2) -> dict:
    """Measure every (or the named) scenario and return the report dict."""
    report: dict = {
        "schema": 1,
        "note": (
            "reference_seconds is the in-repo reference loop (fast_path=False), "
            "which already includes every satellite optimisation; "
            "seed_loop_seconds is each scenario's pre-PR loop, measured once at "
            "the commit before the PR that introduced the scenario (53a8e4e for "
            "the original three, 7edef41 for fig07_saturated/fig12_heterogeneous) "
            "and is not re-measured by CI."
        ),
        "scenarios": {},
    }
    for scenario in SCENARIOS:
        if names is not None and scenario.name not in names:
            continue
        entry = measure_scenario(scenario, repeats=repeats)
        seed_seconds = SEED_LOOP_SECONDS.get(scenario.name)
        if seed_seconds:
            entry["seed_loop_seconds"] = seed_seconds
            entry["seed_speedup"] = round(seed_seconds / entry["fast_seconds"], 2)
        report["scenarios"][scenario.name] = entry
    return report


def write_report(report: dict, path: Path | None = None) -> Path:
    """Write the report as pretty JSON; returns the output path."""
    path = path or BENCH_PATH
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def trace_scenario(name: str, trace_path: Path) -> dict:
    """Run one named scenario once, fast path, streaming a JSONL trace.

    The untimed observability entry point behind ``--trace``: attaches a
    :class:`~repro.obs.tracer.JsonlTracer` to every simulator the scenario
    builds and returns its jump summary.  The trace file feeds
    ``tools/trace_report.py`` and
    :func:`repro.obs.export.export_chrome_trace`.
    """
    from repro.obs.tracer import JsonlTracer

    by_name = {scenario.name: scenario for scenario in SCENARIOS}
    if name not in by_name:
        raise SystemExit(f"unknown scenario {name!r}; choose from {sorted(by_name)}")
    with JsonlTracer(trace_path) as tracer:
        _, _, jump = by_name[name].run(True, tracer=tracer)
    return jump


def main() -> None:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=BENCH_PATH)
    parser.add_argument("--scenario", action="append", dest="scenarios", default=None)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timed runs per scenario per loop; the minimum is reported "
        "(nightly CI uses a larger value to squeeze out scheduler noise)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="instead of benchmarking, run one scenario (--scenario, default "
        "the first) once with a JSONL tracer attached and write the trace "
        "here; feed the file to tools/trace_report.py",
    )
    args = parser.parse_args()
    if args.trace is not None:
        name = args.scenarios[0] if args.scenarios else SCENARIOS[0].name
        jump = trace_scenario(name, args.trace)
        print(f"{name}: traced to {args.trace}")
        print(f"jump stats: {json.dumps(jump)}")
        return
    report = run_benchmarks(args.scenarios, repeats=args.repeats)
    path = write_report(report, args.output)
    for name, entry in report["scenarios"].items():
        print(
            f"{name}: fast {entry['fast_seconds']}s, reference {entry['reference_seconds']}s, "
            f"speedup {entry['speedup']}x"
        )
    print(f"[written to {path}]")


if __name__ == "__main__":  # pragma: no cover
    main()

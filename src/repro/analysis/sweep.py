"""Parameter sweeps: goodput vs client count, scheduler-parameter trade-offs.

These drive the paper's sweep-style figures:

* Figure 7 — goodput as the number of concurrent clients grows, per scheduler;
* Figure 8 — decoding steps vs evicted-request fraction as scheduler
  parameters vary on a shifting workload;
* Figure 9 — maximum throughput and goodput per framework.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.experiments import ExperimentConfig, run_experiment, run_framework
from repro.frameworks.profiles import FrameworkProfile
from repro.hardware.platform import Platform
from repro.serving.sla import SLASpec
from repro.workloads.spec import Workload


@dataclass(frozen=True)
class SweepPoint:
    """One point of a goodput-vs-clients curve."""

    scheduler: str
    num_clients: int
    goodput: float
    throughput: float
    compliance_rate: float
    evictions: int

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "scheduler": self.scheduler,
            "clients": self.num_clients,
            "goodput_tok_s": round(self.goodput, 1),
            "throughput_tok_s": round(self.throughput, 1),
            "sla_compliance": f"{self.compliance_rate:.1%}",
            "evictions": self.evictions,
        }


def client_sweep(
    config: ExperimentConfig,
    workload: Workload,
    client_counts: Sequence[int],
    sla: SLASpec | None = None,
) -> list[SweepPoint]:
    """Run the same workload at several concurrency levels (Figure 7 curves)."""
    sla = sla or config.default_sla()
    points: list[SweepPoint] = []
    for num_clients in client_counts:
        run_config = replace(config, num_clients=num_clients)
        result = run_experiment(run_config, workload)
        summary = result.throughput_summary(sla)
        points.append(
            SweepPoint(
                scheduler=result.scheduler,
                num_clients=num_clients,
                goodput=summary.goodput,
                throughput=summary.throughput,
                compliance_rate=summary.compliance_rate,
                evictions=result.total_evictions,
            )
        )
    return points


def scheduler_comparison_sweep(
    platform: Platform,
    workload: Workload,
    client_counts: Sequence[int],
    scheduler_configs: dict[str, dict],
    sla: SLASpec | None = None,
    token_capacity_override: int | None = None,
    chunked_prefill_tokens: int | None = None,
) -> dict[str, list[SweepPoint]]:
    """Figure-7 style comparison: one goodput curve per scheduler config.

    Args:
        scheduler_configs: mapping of curve label to
            ``{"scheduler_name": ..., "scheduler_kwargs": {...}}``.
    """
    curves: dict[str, list[SweepPoint]] = {}
    for label, spec in scheduler_configs.items():
        config = ExperimentConfig(
            platform=platform,
            scheduler_name=spec["scheduler_name"],
            scheduler_kwargs=spec.get("scheduler_kwargs", {}),
            token_capacity_override=token_capacity_override,
            chunked_prefill_tokens=chunked_prefill_tokens,
        )
        curves[label] = client_sweep(config, workload, client_counts, sla=sla)
    return curves


@dataclass(frozen=True)
class ParameterPoint:
    """One point of the Figure-8 decoding-steps vs evicted-requests trade-off."""

    scheduler: str
    parameter: str
    decoding_steps: int
    evicted_fraction: float
    consumed_memory_fraction: float

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "scheduler": self.scheduler,
            "parameter": self.parameter,
            "decoding_steps": self.decoding_steps,
            "evicted_requests": f"{self.evicted_fraction:.1%}",
            "consumed_memory": f"{self.consumed_memory_fraction:.1%}",
        }


def parameter_sweep(
    platform: Platform,
    workload: Workload,
    configurations: Sequence[tuple[str, str, dict]],
    num_clients: int = 64,
    token_capacity_override: int | None = None,
    chunked_prefill_tokens: int | None = None,
) -> list[ParameterPoint]:
    """Sweep scheduler parameters on a fixed workload (Figure 8 / Table 1).

    Args:
        configurations: tuples of (label, scheduler_name, scheduler_kwargs).
    """
    from repro.analysis.experiments import memory_report_from_run

    points: list[ParameterPoint] = []
    for label, scheduler_name, scheduler_kwargs in configurations:
        config = ExperimentConfig(
            platform=platform,
            scheduler_name=scheduler_name,
            scheduler_kwargs=scheduler_kwargs,
            num_clients=num_clients,
            token_capacity_override=token_capacity_override,
            chunked_prefill_tokens=chunked_prefill_tokens,
        )
        result = run_experiment(config, workload)
        report = memory_report_from_run(result)
        points.append(
            ParameterPoint(
                scheduler=result.scheduler,
                parameter=label,
                decoding_steps=report.decoding_steps,
                evicted_fraction=report.evicted_request_fraction,
                consumed_memory_fraction=report.consumed_memory_fraction,
            )
        )
    return points


@dataclass(frozen=True)
class FrameworkPoint:
    """Throughput and goodput of one framework at one concurrency level."""

    framework: str
    num_clients: int
    throughput: float
    goodput: float

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "framework": self.framework,
            "clients": self.num_clients,
            "throughput_tok_s": round(self.throughput, 1),
            "goodput_tok_s": round(self.goodput, 1),
        }


def framework_sweep(
    profiles: Sequence[FrameworkProfile],
    platform: Platform,
    workload: Workload,
    client_counts: Sequence[int],
    sla: SLASpec,
    token_capacity_override: int | None = None,
) -> dict[str, list[FrameworkPoint]]:
    """Figure-9 style framework comparison across concurrency levels."""
    curves: dict[str, list[FrameworkPoint]] = {}
    for profile in profiles:
        points: list[FrameworkPoint] = []
        for num_clients in client_counts:
            result = run_framework(
                profile,
                platform,
                workload,
                num_clients=num_clients,
                token_capacity_override=token_capacity_override,
            )
            summary = result.throughput_summary(sla)
            points.append(
                FrameworkPoint(
                    framework=profile.name,
                    num_clients=num_clients,
                    throughput=summary.throughput,
                    goodput=summary.goodput,
                )
            )
        curves[profile.name] = points
    return curves


def best_goodput(points: Sequence[SweepPoint | FrameworkPoint]) -> float:
    """The best goodput across a sweep (the paper reports curve maxima)."""
    return max((p.goodput for p in points), default=0.0)


def best_throughput(points: Sequence[FrameworkPoint]) -> float:
    """The best raw throughput across a sweep."""
    return max((p.throughput for p in points), default=0.0)

"""Plain-text table rendering for benches, examples, and EXPERIMENTS.md.

No plotting dependency is available offline, so every figure of the paper is
re-emitted as a table of the series it plots.  :func:`render_table` produces a
fixed-width text table from dictionaries; :func:`render_curves` lays out one
column per sweep curve.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render dictionaries as an aligned fixed-width text table.

    All rows must share the same keys; the key order of the first row defines
    the column order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ValueError("all rows must have identical keys in identical order")
    widths = {
        column: max(len(str(column)), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(str(row[column]).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def render_curves(
    curves: Mapping[str, Sequence[object]],
    x_label: str,
    x_getter,
    y_getter,
    title: str | None = None,
) -> str:
    """Render sweep curves as one row per x value and one column per curve.

    Args:
        curves: mapping of curve label to sweep points.
        x_label: name of the x-axis column.
        x_getter: callable extracting the x value of a point.
        y_getter: callable extracting the y value of a point.
        title: optional heading.
    """
    x_values: list = []
    for points in curves.values():
        for point in points:
            x = x_getter(point)
            if x not in x_values:
                x_values.append(x)
    x_values.sort()
    rows = []
    for x in x_values:
        row: dict[str, object] = {x_label: x}
        for label, points in curves.items():
            match = next((p for p in points if x_getter(p) == x), None)
            row[label] = round(y_getter(match), 1) if match is not None else "-"
        rows.append(row)
    return render_table(rows, title=title)

"""The paper's core contribution: the Past-Future scheduler and its parts."""

from repro.core.future_memory import (
    BatchEntry,
    future_memory_profile,
    memory_timeline,
    peak_future_memory,
    peak_future_memory_arrays,
)
from repro.core.history import OutputLengthHistory
from repro.core.past_future import PastFutureScheduler
from repro.core.predictor import OutputLengthPredictor, build_predictor

__all__ = [
    "BatchEntry",
    "future_memory_profile",
    "memory_timeline",
    "peak_future_memory",
    "peak_future_memory_arrays",
    "OutputLengthHistory",
    "PastFutureScheduler",
    "OutputLengthPredictor",
    "build_predictor",
]

"""Future-required-memory estimation (Section 3.3, Equations 2–4).

Given the running batch at time *t*, each request *i* is described by

* ``current_tokens[i]`` — the KV tokens it holds right now
  (prompt + generated so far), and
* ``remaining[i]`` — how many more tokens it is predicted to generate.

Memory demand can only peak at the moments requests finish.  Sorting requests
by *descending* remaining length (Eq. 2), the occupancy when request *i*
(i.e. the *i*-th to finish counting from the longest-running end) completes is

    M_i = sum_{j <= i} current_tokens[j] + remaining[i] * i        (Eq. 3)

and the future required memory of the batch is ``max_i M_i`` (Eq. 4).  This is
the minimum pool size that lets every admitted request run to completion with
no eviction, assuming the remaining-length estimates hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class BatchEntry:
    """One request's contribution to the future-memory calculation."""

    current_tokens: int
    remaining_tokens: int

    def __post_init__(self) -> None:
        if self.current_tokens < 0:
            raise ValueError("current_tokens must be non-negative")
        if self.remaining_tokens < 0:
            raise ValueError("remaining_tokens must be non-negative")


def peak_future_memory(entries: Sequence[BatchEntry] | Iterable[BatchEntry]) -> int:
    """Peak future memory (tokens) required to finish the batch (Eq. 2–4)."""
    entries = list(entries)
    if not entries:
        return 0
    current = np.array([e.current_tokens for e in entries], dtype=np.int64)
    remaining = np.array([e.remaining_tokens for e in entries], dtype=np.int64)
    return int(_peak_from_arrays(current, remaining))


def future_memory_profile(entries: Sequence[BatchEntry]) -> list[int]:
    """The per-completion occupancies ``[M_1, ..., M_k]`` of Eq. 3.

    ``M_i`` is the memory occupied at the moment the request with the *i*-th
    longest remaining generation finishes.  Useful for plotting the memory
    timeline of Figure 5/6.
    """
    if not entries:
        return []
    current = np.array([e.current_tokens for e in entries], dtype=np.int64)
    remaining = np.array([e.remaining_tokens for e in entries], dtype=np.int64)
    return [int(m) for m in _profile_from_arrays(current, remaining)]


def _order_by_remaining(current: np.ndarray, remaining: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(-remaining, kind="stable")
    return current[order], remaining[order]


def _profile_from_arrays(current: np.ndarray, remaining: np.ndarray) -> np.ndarray:
    current_sorted, remaining_sorted = _order_by_remaining(current, remaining)
    prefix = np.cumsum(current_sorted)
    counts = np.arange(1, current_sorted.size + 1, dtype=np.int64)
    return prefix + remaining_sorted * counts


def _peak_from_arrays(current: np.ndarray, remaining: np.ndarray) -> int:
    if current.size == 0:
        return 0
    return int(_profile_from_arrays(current, remaining).max())


def peak_future_memory_arrays(current: np.ndarray | Sequence[int],
                              remaining: np.ndarray | Sequence[int]) -> int:
    """Array-based variant of :func:`peak_future_memory` (no dataclass boxing).

    Used on the scheduler hot path, where entries are already numpy arrays.
    """
    current_arr = np.asarray(current, dtype=np.int64)
    remaining_arr = np.asarray(remaining, dtype=np.int64)
    if current_arr.shape != remaining_arr.shape:
        raise ValueError("current and remaining must have the same shape")
    if current_arr.ndim != 1:
        raise ValueError("current and remaining must be 1-D")
    if np.any(current_arr < 0) or np.any(remaining_arr < 0):
        raise ValueError("token counts must be non-negative")
    if current_arr.size == 0:
        return 0
    return _peak_from_arrays(current_arr, remaining_arr)


def memory_timeline(entries: Sequence[BatchEntry]) -> list[int]:
    """Occupied tokens at every future decode step until the batch drains.

    Step 0 is "now".  At each subsequent step every unfinished request grows by
    one token; requests whose remaining generation is exhausted release all
    their tokens.  The maximum of this timeline equals
    :func:`peak_future_memory`; the full series is used by the admission
    walk-through example and the Figure 5/6 bench.
    """
    if not entries:
        return [0]
    current = np.array([e.current_tokens for e in entries], dtype=np.int64)
    remaining = np.array([e.remaining_tokens for e in entries], dtype=np.int64)
    horizon = int(remaining.max())
    timeline: list[int] = [int(current.sum())]
    for step in range(1, horizon + 1):
        alive = remaining >= step
        occupied = current[alive] + step
        timeline.append(int(occupied.sum()))
    return timeline

"""Future-required-memory estimation (Section 3.3, Equations 2–4).

Given the running batch at time *t*, each request *i* is described by

* ``current_tokens[i]`` — the KV tokens it holds right now
  (prompt + generated so far), and
* ``remaining[i]`` — how many more tokens it is predicted to generate.

Memory demand can only peak at the moments requests finish.  Sorting requests
by *descending* remaining length (Eq. 2), the occupancy when request *i*
(i.e. the *i*-th to finish counting from the longest-running end) completes is

    M_i = sum_{j <= i} current_tokens[j] + remaining[i] * i        (Eq. 3)

and the future required memory of the batch is ``max_i M_i`` (Eq. 4).  This is
the minimum pool size that lets every admitted request run to completion with
no eviction, assuming the remaining-length estimates hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class BatchEntry:
    """One request's contribution to the future-memory calculation."""

    current_tokens: int
    remaining_tokens: int

    def __post_init__(self) -> None:
        if self.current_tokens < 0:
            raise ValueError("current_tokens must be non-negative")
        if self.remaining_tokens < 0:
            raise ValueError("remaining_tokens must be non-negative")


def peak_future_memory(entries: Sequence[BatchEntry] | Iterable[BatchEntry]) -> int:
    """Peak future memory (tokens) required to finish the batch (Eq. 2–4)."""
    entries = list(entries)
    if not entries:
        return 0
    current = np.array([e.current_tokens for e in entries], dtype=np.int64)
    remaining = np.array([e.remaining_tokens for e in entries], dtype=np.int64)
    return int(_peak_from_arrays(current, remaining))


def future_memory_profile(entries: Sequence[BatchEntry]) -> list[int]:
    """The per-completion occupancies ``[M_1, ..., M_k]`` of Eq. 3.

    ``M_i`` is the memory occupied at the moment the request with the *i*-th
    longest remaining generation finishes.  Useful for plotting the memory
    timeline of Figure 5/6.
    """
    if not entries:
        return []
    current = np.array([e.current_tokens for e in entries], dtype=np.int64)
    remaining = np.array([e.remaining_tokens for e in entries], dtype=np.int64)
    return [int(m) for m in _profile_from_arrays(current, remaining)]


def _order_by_remaining(current: np.ndarray, remaining: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(-remaining, kind="stable")
    return current[order], remaining[order]


def _profile_from_arrays(current: np.ndarray, remaining: np.ndarray) -> np.ndarray:
    current_sorted, remaining_sorted = _order_by_remaining(current, remaining)
    prefix = np.cumsum(current_sorted)
    counts = np.arange(1, current_sorted.size + 1, dtype=np.int64)
    return prefix + remaining_sorted * counts


def _peak_from_arrays(current: np.ndarray, remaining: np.ndarray) -> int:
    if current.size == 0:
        return 0
    return int(_profile_from_arrays(current, remaining).max())


def peak_future_memory_arrays(current: np.ndarray | Sequence[int],
                              remaining: np.ndarray | Sequence[int]) -> int:
    """Array-based variant of :func:`peak_future_memory` (no dataclass boxing).

    Used on the scheduler hot path, where entries are already numpy arrays.
    """
    current_arr = np.asarray(current, dtype=np.int64)
    remaining_arr = np.asarray(remaining, dtype=np.int64)
    if current_arr.shape != remaining_arr.shape:
        raise ValueError("current and remaining must have the same shape")
    if current_arr.ndim != 1:
        raise ValueError("current and remaining must be 1-D")
    if np.any(current_arr < 0) or np.any(remaining_arr < 0):
        raise ValueError("token counts must be non-negative")
    if current_arr.size == 0:
        return 0
    return _peak_from_arrays(current_arr, remaining_arr)


def memory_timeline(entries: Sequence[BatchEntry]) -> list[int]:
    """Occupied tokens at every future decode step until the batch drains.

    Step 0 is "now".  At each subsequent step every unfinished request grows by
    one token; requests whose remaining generation is exhausted release all
    their tokens.  The maximum of this timeline equals
    :func:`peak_future_memory`; the full series is used by the admission
    walk-through example and the Figure 5/6 bench.

    Computed in one cumulative pass over the horizon: with requests sorted by
    remaining length, the survivors at step *s* are a suffix, so the occupied
    tokens are ``suffix_current_sum(s) + survivors(s) * s`` — no per-step
    Python loop.
    """
    if not entries:
        return [0]
    current = np.array([e.current_tokens for e in entries], dtype=np.int64)
    remaining = np.array([e.remaining_tokens for e in entries], dtype=np.int64)
    horizon = int(remaining.max())
    order = np.argsort(remaining, kind="stable")
    remaining_sorted = remaining[order]
    prefix_current = np.concatenate(([0], np.cumsum(current[order])))
    steps = np.arange(horizon + 1, dtype=np.int64)
    # Requests with remaining < s have drained before step s; they form a
    # prefix of the ascending sort.
    drained = np.searchsorted(remaining_sorted, steps, side="left")
    survivors = remaining.size - drained
    occupied = (prefix_current[-1] - prefix_current[drained]) + survivors * steps
    return [int(x) for x in occupied]


def batched_peak_with_candidate(
    current: np.ndarray,
    remaining: np.ndarray,
    candidate_current: int,
    candidate_remaining: np.ndarray,
) -> np.ndarray:
    """Eq. 2–4 peaks of *batch + one candidate* for many what-if rows at once.

    Row ``k`` answers the same question :meth:`FutureMemoryIndex.peak_with`
    answers for one iteration: what would the peak future memory be if the
    candidate joined the running batch whose per-request state is
    ``(current[k], remaining[k])``?  The saturated-phase event jump evaluates
    one row per upcoming iteration, so the whole proof window is a handful of
    vectorized array operations instead of per-iteration Python.

    The candidate is appended as the *last* column before the stable
    descending sort, which places it after every incumbent with an equal
    remaining length — the same tie order :class:`FutureMemoryIndex` commits
    to, so row ``k`` is bit-identical (exact integer arithmetic) to the
    incremental evaluation the reference admission loop performs.

    Args:
        current: ``(rows, batch)`` current context tokens per request.
        remaining: ``(rows, batch)`` predicted remaining tokens per request.
        candidate_current: the candidate's current context tokens (constant —
            a waiting request does not grow while it waits).
        candidate_remaining: ``(rows,)`` predicted remaining tokens of the
            candidate, one prediction per row.

    Returns:
        ``(rows,)`` int64 peak future memory with the candidate included.
    """
    current = np.asarray(current, dtype=np.int64)
    remaining = np.asarray(remaining, dtype=np.int64)
    candidate_remaining = np.asarray(candidate_remaining, dtype=np.int64)
    if current.ndim != 2 or current.shape != remaining.shape:
        raise ValueError("current and remaining must be 2-D arrays of equal shape")
    rows = current.shape[0]
    if candidate_remaining.shape != (rows,):
        raise ValueError("candidate_remaining must have one entry per row")
    if (
        candidate_current < 0
        or np.any(current < 0)
        or np.any(remaining < 0)
        or np.any(candidate_remaining < 0)
    ):
        raise ValueError("token counts must be non-negative")
    current_all = np.concatenate(
        (current, np.full((rows, 1), candidate_current, dtype=np.int64)), axis=1
    )
    remaining_all = np.concatenate((remaining, candidate_remaining[:, None]), axis=1)
    order = np.argsort(-remaining_all, axis=1, kind="stable")
    current_sorted = np.take_along_axis(current_all, order, axis=1)
    remaining_sorted = np.take_along_axis(remaining_all, order, axis=1)
    prefix = np.cumsum(current_sorted, axis=1)
    counts = np.arange(1, current_all.shape[1] + 1, dtype=np.int64)
    profile = prefix + remaining_sorted * counts[None, :]
    return profile.max(axis=1)


class FutureMemoryIndex:
    """Incremental Eq. 2–4 evaluation for per-candidate admission tests.

    The admission loop of the Past-Future and oracle schedulers asks, for each
    waiting candidate in FCFS order, "what would the batch's peak future
    memory be with this candidate added?"  Recomputing Eq. 2–4 from scratch
    makes each step O(Q·B log B) over Q candidates.  This index sorts the
    running batch **once** (O(B log B)), caches the prefix sums and running
    maxima of the completion-time profile, and answers each what-if query in
    O(log B) via :func:`numpy.searchsorted`; admitting a candidate
    (:meth:`insert`) rebuilds the caches in O(B).

    Queries are exact integer arithmetic, so admission decisions are
    bit-identical to the from-scratch evaluation, including the stable
    tie-order of the reference ``argsort`` (a candidate sorts *after* every
    incumbent with equal remaining length, matching its position at the end
    of the trial array).
    """

    __slots__ = ("_current", "_remaining", "_prefix", "_neg_remaining", "_left_max", "_tail_max")

    def __init__(
        self,
        current: np.ndarray | Sequence[int],
        remaining: np.ndarray | Sequence[int],
    ) -> None:
        current_arr = np.asarray(current, dtype=np.int64)
        remaining_arr = np.asarray(remaining, dtype=np.int64)
        if current_arr.shape != remaining_arr.shape or current_arr.ndim != 1:
            raise ValueError("current and remaining must be 1-D arrays of equal length")
        if np.any(current_arr < 0) or np.any(remaining_arr < 0):
            raise ValueError("token counts must be non-negative")
        order = np.argsort(-remaining_arr, kind="stable")
        self._current = current_arr[order]
        self._remaining = remaining_arr[order]
        self._recompute()

    def _recompute(self) -> None:
        remaining = self._remaining
        self._prefix = np.cumsum(self._current)
        self._neg_remaining = -remaining
        if remaining.size:
            counts = np.arange(1, remaining.size + 1, dtype=np.int64)
            profile = self._prefix + remaining * counts
            self._left_max = np.maximum.accumulate(profile)
            # Insertion at position p shifts every later entry's completion
            # rank by one: M'_i = M_i + remaining_i + cand_current.
            self._tail_max = np.maximum.accumulate((profile + remaining)[::-1])[::-1]
        else:
            self._left_max = profile = np.zeros(0, dtype=np.int64)
            self._tail_max = profile

    def __len__(self) -> int:
        return int(self._current.size)

    @property
    def peak(self) -> int:
        """Peak future memory of the base batch alone (Eq. 4)."""
        return int(self._left_max[-1]) if self._left_max.size else 0

    def _insert_position(self, remaining_tokens: int) -> int:
        return int(np.searchsorted(self._neg_remaining, -remaining_tokens, side="right"))

    def peak_with(self, current_tokens: int, remaining_tokens: int) -> int:
        """Peak future memory of the batch plus one hypothetical candidate."""
        if current_tokens < 0 or remaining_tokens < 0:
            raise ValueError("token counts must be non-negative")
        p = self._insert_position(remaining_tokens)
        before = int(self._prefix[p - 1]) if p else 0
        peak = before + current_tokens + remaining_tokens * (p + 1)
        if p:
            peak = max(peak, int(self._left_max[p - 1]))
        if p < self._current.size:
            peak = max(peak, int(self._tail_max[p]) + current_tokens)
        return peak

    def insert(self, current_tokens: int, remaining_tokens: int) -> None:
        """Commit a candidate to the batch (it was admitted)."""
        if current_tokens < 0 or remaining_tokens < 0:
            raise ValueError("token counts must be non-negative")
        p = self._insert_position(remaining_tokens)
        self._current = np.insert(self._current, p, current_tokens)
        self._remaining = np.insert(self._remaining, p, remaining_tokens)
        self._recompute()

"""Sliding-window history of finished request output lengths (the "Past").

Section 3.2 of the paper observes that the output-length distribution of the
most recent *w* finished requests (the "historical window", w = 1000 in the
paper) predicts the distribution of the requests currently being served.  The
:class:`OutputLengthHistory` keeps exactly that window and exposes it as an
empirical distribution.

Before any request has finished (service start-up), the paper initialises the
distribution with the preset maximum output length; :meth:`snapshot` mirrors
that by falling back to a configurable default length until real observations
arrive.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class OutputLengthHistory:
    """Fixed-size sliding window over finished output lengths.

    Args:
        window_size: maximum number of recent observations retained
            (the paper's *historical request window*, default 1000).
        default_length: length used to seed the distribution before any
            request has finished (the paper uses the preset
            ``max_new_tokens``).
    """

    def __init__(self, window_size: int = 1000, default_length: int = 2048) -> None:
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        if default_length <= 0:
            raise ValueError("default_length must be positive")
        self._window_size = window_size
        self._default_length = default_length
        self._lengths: deque[int] = deque(maxlen=window_size)
        self._version = 0
        self._sorted_cache: np.ndarray | None = None
        self._sorted_cache_version = -1

    @property
    def window_size(self) -> int:
        """Maximum number of retained observations."""
        return self._window_size

    @property
    def default_length(self) -> int:
        """Seed length used while the window is empty."""
        return self._default_length

    def __len__(self) -> int:
        return len(self._lengths)

    @property
    def is_empty(self) -> bool:
        """Whether no request has finished yet."""
        return not self._lengths

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation.

        Lets consumers cache derived views (e.g. the sorted window used by
        the per-iteration predictor) and invalidate them only when the window
        actually changed.
        """
        return self._version

    def record(self, output_length: int) -> None:
        """Add one finished request's output length to the window."""
        if output_length <= 0:
            raise ValueError("output_length must be positive")
        self._lengths.append(int(output_length))
        self._version += 1

    def extend(self, output_lengths: list[int]) -> None:
        """Add several finished output lengths at once."""
        for length in output_lengths:
            self.record(length)

    def snapshot(self) -> np.ndarray:
        """Current window as an integer array (the seed value if empty)."""
        if self.is_empty:
            return np.array([self._default_length], dtype=np.int64)
        return np.fromiter(self._lengths, dtype=np.int64, count=len(self._lengths))

    def sorted_snapshot(self) -> np.ndarray:
        """Ascending-sorted window, cached until the next mutation.

        Per-iteration predictor construction and the batched saturated-phase
        admission path both want the window sorted (conditional sampling is a
        ``searchsorted`` over it); sorting per consultation would be
        O(w log w) each time.  The cache is invalidated by :attr:`version`,
        so the array is re-sorted only when an observation actually arrived.
        Callers must treat the returned array as read-only — it is shared
        between consumers until the window changes.
        """
        if self._sorted_cache is None or self._sorted_cache_version != self._version:
            self._sorted_cache = np.sort(self.snapshot())
            self._sorted_cache_version = self._version
        return self._sorted_cache

    def clear(self) -> None:
        """Drop all observations (used between simulation runs)."""
        self._lengths.clear()
        self._version += 1

    # ----------------------------------------------------------- statistics
    def mean(self) -> float:
        """Mean of the current window (or the seed value if empty)."""
        return float(self.snapshot().mean())

    def quantile(self, q: float) -> float:
        """Empirical quantile of the current window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self.snapshot(), q))

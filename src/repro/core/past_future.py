"""The Past-Future request scheduler (Section 3, Algorithm 1).

Per continuous-batching iteration the scheduler

1. rebuilds the empirical output-length distribution ``P(l)`` from the
   sliding window of recently finished requests (the **past**),
2. re-samples a predicted total output length for every running request from
   the conditional distribution ``P(l | l > generated)`` and samples one for
   each queued candidate from ``P(l)``,
3. computes the **future** required memory of the running batch plus the
   candidate (Eq. 2–4) and admits the candidate only if that peak fits within
   the usable capacity (total capacity minus a small reserved fraction that
   absorbs prediction error), and
4. stops at the first candidate that does not fit (FCFS admission).

The scheduler never inspects the hidden true output lengths.

For the engine's saturated-phase event jump
(:meth:`repro.engine.engine.InferenceEngine.try_jump_saturated`) the
scheduler additionally implements
:meth:`PastFutureScheduler.saturated_no_admit_horizon`: it pre-draws the
predictor samples of many upcoming iterations — each from the exact
per-iteration generator the sequential path would seed — evaluates all of
their head-admission tests in a few vectorized array operations, and reports
how many leading iterations provably admit nothing.  The RNG-stream contract
is spelled out in ``docs/simulation-semantics.md`` and enforced by
``tests/test_saturated_jump.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.future_memory import FutureMemoryIndex, batched_peak_with_candidate
from repro.core.history import OutputLengthHistory
from repro.core.predictor import (
    Aggregation,
    OutputLengthPredictor,
    aggregate_samples,
    conditional_prediction_samples,
)
from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext

#: First chunk size of the lazy saturated-horizon evaluation.  Kept tiny so an
#: iteration that *does* admit (the common case outside deep saturation) is
#: discovered after evaluating almost nothing; chunks then grow geometrically
#: so deep no-admit phases still amortise to a few vectorized passes.  Growth
#: is doubling rather than anything steeper because the per-iteration
#: generator draws are the dominant cost: evaluating past the first admitting
#: iteration is pure waste, and doubling caps that overshoot at 2x.
_HORIZON_FIRST_CHUNK = 2

#: Geometric growth factor and ceiling for subsequent horizon chunks.
_HORIZON_CHUNK_GROWTH = 2
_HORIZON_CHUNK_MAX = 1024


def _probe_choice_via_integers() -> bool:
    """Whether ``Generator.choice`` (replace, no weights) equals index draws.

    For a uniform with-replacement ``choice`` the documented fast path draws
    ``integers(0, n, size)`` and indexes the population, which skips
    ``choice``'s considerable per-call overhead — a win worth having on the
    saturated-horizon path, where one tiny draw happens per proven iteration.
    Stream identity with :meth:`OutputLengthPredictor.predict_new` is the
    whole point, so the equivalence (values *and* post-call generator state)
    is probed once at import; if a future numpy changes ``choice``'s
    internals, the probe fails closed and the slow-but-identical ``choice``
    call is used instead.
    """
    probe_a = np.random.default_rng(0xC0FFEE)
    probe_b = np.random.default_rng(0xC0FFEE)
    population = np.arange(3, 17, dtype=np.int64)
    drawn = probe_a.choice(population, size=(3, 2), replace=True)
    indexed = population[probe_b.integers(0, population.size, size=(3, 2))]
    return bool(
        np.array_equal(drawn, indexed)
        and probe_a.bit_generator.state == probe_b.bit_generator.state
    )


_CHOICE_VIA_INTEGERS = _probe_choice_via_integers()


class PastFutureScheduler(Scheduler):
    """Admission control using past output-length history and future memory.

    Args:
        reserved_fraction: fraction of the token capacity withheld from the
            admission budget to absorb prediction error (the paper evaluates
            3%, 5%, 10% and 20%).
        window_size: size of the historical output-length window (1000 in the
            paper).
        default_length: output length used to seed the distribution before
            any request finishes (the paper uses the preset maximum output
            length).
        seed: RNG seed for prediction sampling.
        num_samples: repeated-sampling count used to stabilise predictions
            when the batch is small.
        aggregation: how repeated samples are combined.
        max_running_requests: optional hard cap on the running batch size.
    """

    name = "past-future"

    def __init__(
        self,
        reserved_fraction: float = 0.03,
        window_size: int = 1000,
        default_length: int = 2048,
        seed: int = 0,
        num_samples: int = 1,
        aggregation: Aggregation = "max",
        max_running_requests: int | None = None,
    ) -> None:
        if not 0.0 <= reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must be in [0, 1)")
        self.reserved_fraction = reserved_fraction
        self.window_size = window_size
        self.default_length = default_length
        self.seed = seed
        self.num_samples = num_samples
        self.aggregation: Aggregation = aggregation
        self.max_running_requests = max_running_requests
        self.history = OutputLengthHistory(window_size=window_size, default_length=default_length)
        self._sample_counter = 0

    # ------------------------------------------------------------- lifecycle
    def on_run_start(self) -> None:
        """Reset the history window and the per-iteration sampling counter."""
        self.history.clear()
        self._sample_counter = 0

    def on_request_finished(self, request: Request, time: float) -> None:
        """Record the finished request's true output length in the window."""
        self.history.record(max(request.generated_tokens, 1))

    # -------------------------------------------------------------- scheduling
    def _make_predictor(self) -> OutputLengthPredictor:
        # A fresh per-call seed keeps runs reproducible while avoiding
        # re-drawing identical samples every iteration.  The ascending-sorted
        # window is cached on the history itself (invalidated by its version
        # counter), so per-call construction is O(1) instead of O(w log w).
        self._sample_counter += 1
        return OutputLengthPredictor(
            lengths=self.history.sorted_snapshot(),
            seed=self.seed + self._sample_counter,
            num_samples=self.num_samples,
            aggregation=self.aggregation,
            presorted=True,
        )

    def admission_budget(self, context: SchedulingContext) -> int:
        """Token budget available to the admission decision."""
        return int(context.token_capacity * (1.0 - self.reserved_fraction))

    def _predicted_entries(
        self,
        predictor: OutputLengthPredictor,
        requests: list[Request],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Current-token and predicted-remaining arrays for resident requests."""
        if not requests:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        generated = np.array([r.generated_tokens for r in requests], dtype=np.int64)
        caps = np.array([r.spec.max_new_tokens for r in requests], dtype=np.int64)
        predicted = predictor.predict_running(generated)
        predicted = np.minimum(predicted, caps)
        predicted = np.maximum(predicted, generated + 1)
        current = np.array([r.current_context_tokens for r in requests], dtype=np.int64)
        remaining = predicted - generated
        return current, remaining

    def _candidate_entry(
        self,
        predictor: OutputLengthPredictor,
        request: Request,
    ) -> tuple[int, int]:
        """(current_tokens, predicted_remaining) for a waiting candidate."""
        if request.generated_tokens > 0:
            # Re-queued after eviction: predict conditionally on what it has
            # already produced, exactly like a running request.
            predicted = int(predictor.predict_running([request.generated_tokens])[0])
        else:
            predicted = int(predictor.predict_new(1)[0])
        predicted = min(predicted, request.spec.max_new_tokens)
        predicted = max(predicted, request.generated_tokens + 1)
        current = request.current_context_tokens
        remaining = predicted - request.generated_tokens
        return current, remaining

    def schedule(self, context: SchedulingContext) -> list[Request]:
        """Admit the longest queue prefix whose predicted peak memory fits."""
        if not context.waiting:
            return []
        predictor = self._make_predictor()
        budget = self.admission_budget(context)
        current, remaining = self._predicted_entries(predictor, context.running)

        # Incremental admission: the running batch is sorted once; each
        # candidate is a searchsorted query over cached prefix sums instead of
        # a from-scratch re-sort of the whole trial batch (O(B log B + Q·B)
        # instead of O(Q·B log B)); decisions are bit-identical.
        index = FutureMemoryIndex(current, remaining)
        admitted: list[Request] = []
        for candidate in context.waiting:
            cand_current, cand_remaining = self._candidate_entry(predictor, candidate)
            if index.peak_with(cand_current, cand_remaining) <= budget:
                admitted.append(candidate)
                index.insert(cand_current, cand_remaining)
            else:
                break
        # Progress guarantee: an empty system must always admit its head
        # request, otherwise a single request larger than the reserved budget
        # would starve forever.
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    # -------------------------------------------------- saturated-phase jumps
    def saturated_no_admit_horizon(self, context: SchedulingContext, max_steps: int) -> int:
        """Count upcoming iterations whose head-admission test provably fails.

        For each of the next ``max_steps`` uniform-decode iterations this
        replays the admission decision :meth:`schedule` would make — with the
        *same* randomness.  A no-admit iteration consumes the per-iteration
        predictor stream in a fixed pattern (one conditional draw for the
        running batch, then one draw for the queue head, then the FCFS loop
        breaks), so the whole window can be pre-drawn: one small generator per
        iteration, seeded exactly as :meth:`_make_predictor` would seed it,
        with all downstream math — conditional sampling, cap clamping, and the
        Eq. 2–4 peak with the head as candidate — evaluated in a handful of
        vectorized operations over the window
        (:func:`repro.core.predictor.conditional_prediction_samples` /
        :func:`repro.core.future_memory.batched_peak_with_candidate`).

        Evaluation is lazy: a tiny first chunk, growing geometrically, so an
        iteration that *does* admit is discovered almost immediately while
        deep saturation amortises to a few vectorized passes.  The method
        draws only from throwaway generators; persistent state
        (``_sample_counter``) advances in :meth:`on_saturated_steps_fused`,
        for exactly the iterations the engine actually fuses.
        """
        if max_steps <= 0 or not context.waiting or not context.running:
            # With an empty running batch the progress guarantee admits the
            # head, so no saturated iteration can be proven silent.
            return 0
        head = context.waiting[0]
        budget = self.admission_budget(context)
        window = self.history.sorted_snapshot()
        running = context.running
        generated = np.array([r.generated_tokens for r in running], dtype=np.int64)
        caps = np.array([r.spec.max_new_tokens for r in running], dtype=np.int64)
        current = np.array([r.current_context_tokens for r in running], dtype=np.int64)
        head_generated = head.generated_tokens
        head_current = head.current_context_tokens
        head_cap = head.spec.max_new_tokens
        batch = generated.size
        num_samples = self.num_samples

        horizon = 0
        chunk = _HORIZON_FIRST_CHUNK
        while horizon < max_steps:
            size = min(chunk, max_steps - horizon)
            run_uniforms = np.empty((size, num_samples, batch), dtype=np.float64)
            if head_generated > 0:
                cand_uniforms = np.empty((size, num_samples, 1), dtype=np.float64)
            else:
                cand_choices = np.empty((size, num_samples, 1), dtype=np.int64)
            for j in range(size):
                # The exact generator `size` sequential _make_predictor calls
                # would seed, consumed in the exact order schedule() consumes
                # it: the running-batch conditional draw first, the head
                # candidate's draw second.
                rng = np.random.default_rng(
                    self.seed + self._sample_counter + 1 + horizon + j
                )
                run_uniforms[j] = rng.random((num_samples, batch))
                if head_generated > 0:
                    cand_uniforms[j] = rng.random((num_samples, 1))
                elif _CHOICE_VIA_INTEGERS:
                    cand_choices[j] = window[rng.integers(0, window.size, size=(num_samples, 1))]
                else:
                    cand_choices[j] = rng.choice(window, size=(num_samples, 1), replace=True)
            offsets = np.arange(horizon, horizon + size, dtype=np.int64)
            gens = generated[None, :] + offsets[:, None]
            samples = conditional_prediction_samples(window, run_uniforms, gens)
            predicted = aggregate_samples(samples, self.aggregation).astype(np.int64)
            predicted = np.minimum(predicted, caps[None, :])
            predicted = np.maximum(predicted, gens + 1)
            remaining = predicted - gens
            current_rows = current[None, :] + offsets[:, None]
            if head_generated > 0:
                cand_gen = np.full((size, 1), head_generated, dtype=np.int64)
                cand_samples = conditional_prediction_samples(window, cand_uniforms, cand_gen)
                cand_predicted = aggregate_samples(cand_samples, self.aggregation)
            else:
                cand_predicted = aggregate_samples(cand_choices, self.aggregation)
            cand_predicted = cand_predicted.astype(np.int64)[:, 0]
            cand_predicted = np.minimum(cand_predicted, head_cap)
            cand_predicted = np.maximum(cand_predicted, head_generated + 1)
            cand_remaining = cand_predicted - head_generated
            peaks = batched_peak_with_candidate(
                current_rows, remaining, head_current, cand_remaining
            )
            admit = peaks <= budget
            if admit.any():
                return horizon + int(np.argmax(admit))
            horizon += size
            chunk = min(chunk * _HORIZON_CHUNK_GROWTH, _HORIZON_CHUNK_MAX)
        return horizon

    def on_saturated_steps_fused(self, steps: int) -> None:
        """Advance the per-iteration predictor seed past the fused iterations.

        Each fused no-admit iteration would have consumed one
        :meth:`_make_predictor` call; bumping the counter by ``steps`` leaves
        the next reference-path consultation with exactly the seed it would
        have had, so the RNG stream across the whole run is bit-identical.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        self._sample_counter += steps

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return f"past-future (reserved={self.reserved_fraction:.0%}, window={self.window_size})"

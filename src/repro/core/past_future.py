"""The Past-Future request scheduler (Section 3, Algorithm 1).

Per continuous-batching iteration the scheduler

1. rebuilds the empirical output-length distribution ``P(l)`` from the
   sliding window of recently finished requests (the **past**),
2. re-samples a predicted total output length for every running request from
   the conditional distribution ``P(l | l > generated)`` and samples one for
   each queued candidate from ``P(l)``,
3. computes the **future** required memory of the running batch plus the
   candidate (Eq. 2–4) and admits the candidate only if that peak fits within
   the usable capacity (total capacity minus a small reserved fraction that
   absorbs prediction error), and
4. stops at the first candidate that does not fit (FCFS admission).

The scheduler never inspects the hidden true output lengths.
"""

from __future__ import annotations

import numpy as np

from repro.core.future_memory import FutureMemoryIndex
from repro.core.history import OutputLengthHistory
from repro.core.predictor import Aggregation, OutputLengthPredictor
from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext


class PastFutureScheduler(Scheduler):
    """Admission control using past output-length history and future memory.

    Args:
        reserved_fraction: fraction of the token capacity withheld from the
            admission budget to absorb prediction error (the paper evaluates
            3%, 5%, 10% and 20%).
        window_size: size of the historical output-length window (1000 in the
            paper).
        default_length: output length used to seed the distribution before
            any request finishes (the paper uses the preset maximum output
            length).
        seed: RNG seed for prediction sampling.
        num_samples: repeated-sampling count used to stabilise predictions
            when the batch is small.
        aggregation: how repeated samples are combined.
        max_running_requests: optional hard cap on the running batch size.
    """

    name = "past-future"

    def __init__(
        self,
        reserved_fraction: float = 0.03,
        window_size: int = 1000,
        default_length: int = 2048,
        seed: int = 0,
        num_samples: int = 1,
        aggregation: Aggregation = "max",
        max_running_requests: int | None = None,
    ) -> None:
        if not 0.0 <= reserved_fraction < 1.0:
            raise ValueError("reserved_fraction must be in [0, 1)")
        self.reserved_fraction = reserved_fraction
        self.window_size = window_size
        self.default_length = default_length
        self.seed = seed
        self.num_samples = num_samples
        self.aggregation: Aggregation = aggregation
        self.max_running_requests = max_running_requests
        self.history = OutputLengthHistory(window_size=window_size, default_length=default_length)
        self._sample_counter = 0
        self._sorted_window: np.ndarray | None = None
        self._sorted_window_version = -1

    # ------------------------------------------------------------- lifecycle
    def on_run_start(self) -> None:
        self.history.clear()
        self._sample_counter = 0
        self._sorted_window = None
        self._sorted_window_version = -1

    def on_request_finished(self, request: Request, time: float) -> None:
        self.history.record(max(request.generated_tokens, 1))

    # -------------------------------------------------------------- scheduling
    def _make_predictor(self) -> OutputLengthPredictor:
        # A fresh per-call seed keeps runs reproducible while avoiding
        # re-drawing identical samples every iteration.  The sorted window is
        # cached across iterations (invalidated by the history's version
        # counter) so per-call construction is O(1) instead of O(w log w).
        self._sample_counter += 1
        version = self.history.version
        if self._sorted_window is None or self._sorted_window_version != version:
            self._sorted_window = np.sort(self.history.snapshot())
            self._sorted_window_version = version
        return OutputLengthPredictor(
            lengths=self._sorted_window,
            seed=self.seed + self._sample_counter,
            num_samples=self.num_samples,
            aggregation=self.aggregation,
            presorted=True,
        )

    def admission_budget(self, context: SchedulingContext) -> int:
        """Token budget available to the admission decision."""
        return int(context.token_capacity * (1.0 - self.reserved_fraction))

    def _predicted_entries(
        self,
        predictor: OutputLengthPredictor,
        requests: list[Request],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Current-token and predicted-remaining arrays for resident requests."""
        if not requests:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        generated = np.array([r.generated_tokens for r in requests], dtype=np.int64)
        caps = np.array([r.spec.max_new_tokens for r in requests], dtype=np.int64)
        predicted = predictor.predict_running(generated)
        predicted = np.minimum(predicted, caps)
        predicted = np.maximum(predicted, generated + 1)
        current = np.array([r.current_context_tokens for r in requests], dtype=np.int64)
        remaining = predicted - generated
        return current, remaining

    def _candidate_entry(
        self,
        predictor: OutputLengthPredictor,
        request: Request,
    ) -> tuple[int, int]:
        """(current_tokens, predicted_remaining) for a waiting candidate."""
        if request.generated_tokens > 0:
            # Re-queued after eviction: predict conditionally on what it has
            # already produced, exactly like a running request.
            predicted = int(predictor.predict_running([request.generated_tokens])[0])
        else:
            predicted = int(predictor.predict_new(1)[0])
        predicted = min(predicted, request.spec.max_new_tokens)
        predicted = max(predicted, request.generated_tokens + 1)
        current = request.current_context_tokens
        remaining = predicted - request.generated_tokens
        return current, remaining

    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        predictor = self._make_predictor()
        budget = self.admission_budget(context)
        current, remaining = self._predicted_entries(predictor, context.running)

        # Incremental admission: the running batch is sorted once; each
        # candidate is a searchsorted query over cached prefix sums instead of
        # a from-scratch re-sort of the whole trial batch (O(B log B + Q·B)
        # instead of O(Q·B log B)); decisions are bit-identical.
        index = FutureMemoryIndex(current, remaining)
        admitted: list[Request] = []
        for candidate in context.waiting:
            cand_current, cand_remaining = self._candidate_entry(predictor, candidate)
            if index.peak_with(cand_current, cand_remaining) <= budget:
                admitted.append(candidate)
                index.insert(cand_current, cand_remaining)
            else:
                break
        # Progress guarantee: an empty system must always admit its head
        # request, otherwise a single request larger than the reserved budget
        # would starve forever.
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    def describe(self) -> str:
        return f"past-future (reserved={self.reserved_fraction:.0%}, window={self.window_size})"

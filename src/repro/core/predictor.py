"""Output-length distribution prediction (Section 3.2, Equation 1).

The predictor turns the historical window into an empirical distribution
``P(l)`` and provides the two sampling operations Algorithm 1 needs:

* for **queued** requests, sample a predicted total output length from
  ``P(l)``;
* for **running** requests that have already generated ``l_cur`` tokens,
  resample from the *conditional* distribution ``P(l | l > l_cur)`` so the
  prediction can only stay ahead of what has actually been produced.

When the running batch is small the paper repeats the sampling several times
to stabilise the estimate; ``num_samples``/``aggregation`` expose that knob
(aggregating with ``max`` keeps the estimate on the safe side, which is what
admission control wants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

Aggregation = Literal["max", "mean", "median"]


def _aggregate(samples: np.ndarray, how: Aggregation) -> np.ndarray:
    """Collapse the sample axis (axis 0) of a (num_samples, n) array."""
    if how == "max":
        return samples.max(axis=0)
    if how == "mean":
        return np.ceil(samples.mean(axis=0))
    if how == "median":
        return np.ceil(np.median(samples, axis=0))
    raise ValueError(f"unknown aggregation {how!r}")


@dataclass
class OutputLengthPredictor:
    """Samples predicted output lengths from an empirical distribution.

    Args:
        lengths: the historical output lengths (the window snapshot).
        seed: RNG seed for reproducible sampling.
        num_samples: how many independent samples to draw per request before
            aggregating.
        aggregation: how to combine repeated samples.
        presorted: promise that ``lengths`` is already sorted ascending,
            skipping the per-construction sort.  Callers that build one
            predictor per iteration over a slowly changing window (the
            Past-Future scheduler) cache the sorted array and pass it here;
            sampling is over the sorted array either way, so results are
            identical.
    """

    lengths: np.ndarray
    seed: int = 0
    num_samples: int = 1
    aggregation: Aggregation = "max"
    presorted: bool = False

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if lengths.ndim != 1 or lengths.size == 0:
            raise ValueError("lengths must be a non-empty 1-D array")
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.presorted:
            if lengths[0] <= 0:
                raise ValueError("lengths must be positive")
            object.__setattr__(self, "_sorted", lengths)
        else:
            if np.any(lengths <= 0):
                raise ValueError("lengths must be positive")
            # Sorted copy enables O(log n) conditional sampling via searchsorted.
            object.__setattr__(self, "_sorted", np.sort(lengths))
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    # ------------------------------------------------------------ distribution
    @property
    def support(self) -> np.ndarray:
        """Distinct lengths present in the window, ascending."""
        return np.unique(self._sorted)

    @property
    def max_length(self) -> int:
        """Largest length observed in the window."""
        return int(self._sorted[-1])

    def probability(self, length: int) -> float:
        """Empirical probability ``P(l == length)`` (Equation 1)."""
        left = np.searchsorted(self._sorted, length, side="left")
        right = np.searchsorted(self._sorted, length, side="right")
        return float(right - left) / self._sorted.size

    def exceedance(self, length: int) -> float:
        """Empirical probability ``P(l > length)``."""
        right = np.searchsorted(self._sorted, length, side="right")
        return float(self._sorted.size - right) / self._sorted.size

    # ---------------------------------------------------------------- sampling
    def predict_new(self, count: int) -> np.ndarray:
        """Sample predicted output lengths for ``count`` queued requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        samples = self._rng.choice(self._sorted, size=(self.num_samples, count), replace=True)
        return _aggregate(samples, self.aggregation).astype(np.int64)

    def predict_running(self, generated: np.ndarray | list[int]) -> np.ndarray:
        """Resample predictions for running requests from ``P(l | l > generated)``.

        For a request whose generated token count already exceeds every length
        in the window, the prediction falls back to ``generated + 1`` — the
        most optimistic consistent estimate (the request may stop at the very
        next token), matching the scheduler's behaviour of trusting the
        history only while it remains informative.
        """
        generated_arr = np.asarray(generated, dtype=np.int64)
        if generated_arr.ndim != 1:
            raise ValueError("generated must be 1-D")
        if generated_arr.size == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any(generated_arr < 0):
            raise ValueError("generated token counts must be non-negative")
        sorted_lengths = self._sorted
        n = sorted_lengths.size
        # Index of the first historical length strictly greater than each
        # generated count; everything at or beyond it is a valid sample.
        starts = np.searchsorted(sorted_lengths, generated_arr, side="right")
        # One (num_samples, n) draw consumes the generator stream in exactly
        # the order of num_samples successive row draws (C-contiguous fill),
        # so the samples are identical to the per-row loop it replaces.
        uniforms = self._rng.random((self.num_samples, generated_arr.size))
        # Draw a uniform index in [start, n); exhausted tails handled below.
        spans = np.maximum(n - starts, 1)
        indices = starts + np.floor(uniforms * spans).astype(np.int64)
        np.minimum(indices, n - 1, out=indices)
        predictions = sorted_lengths[indices]
        exhausted = starts >= n
        if exhausted.any():
            predictions = np.where(exhausted, generated_arr + 1, predictions)
        return _aggregate(predictions, self.aggregation).astype(np.int64)


def build_predictor(
    lengths: np.ndarray,
    seed: int = 0,
    num_samples: int = 1,
    aggregation: Aggregation = "max",
) -> OutputLengthPredictor:
    """Convenience constructor mirroring :class:`OutputLengthPredictor`."""
    return OutputLengthPredictor(
        lengths=np.asarray(lengths, dtype=np.int64),
        seed=seed,
        num_samples=num_samples,
        aggregation=aggregation,
    )

"""Output-length distribution prediction (Section 3.2, Equation 1).

The predictor turns the historical window into an empirical distribution
``P(l)`` and provides the two sampling operations Algorithm 1 needs:

* for **queued** requests, sample a predicted total output length from
  ``P(l)``;
* for **running** requests that have already generated ``l_cur`` tokens,
  resample from the *conditional* distribution ``P(l | l > l_cur)`` so the
  prediction can only stay ahead of what has actually been produced.

When the running batch is small the paper repeats the sampling several times
to stabilise the estimate; ``num_samples``/``aggregation`` expose that knob
(aggregating with ``max`` keeps the estimate on the safe side, which is what
admission control wants).

Because the RNG stream is part of the reproduced semantics (see
``docs/simulation-semantics.md``), every batched entry point here documents —
and the test suite proves — exactly how it consumes the generator relative to
the scalar calls it replaces.  :meth:`OutputLengthPredictor.predict_running`
is itself the one-iteration case of
:meth:`OutputLengthPredictor.predict_running_batch`, whose single
``(steps, num_samples, n)`` uniform draw fills C-contiguously and therefore
consumes the stream in exactly the order of ``steps`` successive
``(num_samples, n)`` draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

Aggregation = Literal["max", "mean", "median"]


def aggregate_samples(samples: np.ndarray, how: Aggregation) -> np.ndarray:
    """Collapse the sample axis (axis ``-2``) of a ``(..., num_samples, n)`` array."""
    if how == "max":
        return samples.max(axis=-2)
    if how == "mean":
        return np.ceil(samples.mean(axis=-2))
    if how == "median":
        return np.ceil(np.median(samples, axis=-2))
    raise ValueError(f"unknown aggregation {how!r}")


def conditional_prediction_samples(
    sorted_lengths: np.ndarray,
    uniforms: np.ndarray,
    generated: np.ndarray,
) -> np.ndarray:
    """Map pre-drawn uniforms to conditional length samples ``P(l | l > generated)``.

    The shared kernel behind :meth:`OutputLengthPredictor.predict_running`,
    :meth:`OutputLengthPredictor.predict_running_batch`, and the Past-Future
    scheduler's batched saturated-phase admission path (which stacks the
    uniforms of several per-iteration predictors and maps them in one call).

    Args:
        sorted_lengths: the historical window, ascending.
        uniforms: samples in ``[0, 1)`` of shape ``(..., num_samples, n)``.
        generated: generated-token counts of shape ``(..., n)`` — the same
            shape as ``uniforms`` minus the sample axis.

    Returns:
        Length samples with the shape of ``uniforms``.  Entries whose
        generated count meets or exceeds every historical length fall back to
        ``generated + 1`` (the most optimistic consistent estimate).
    """
    n = sorted_lengths.size
    # Index of the first historical length strictly greater than each
    # generated count; everything at or beyond it is a valid sample.
    starts = np.searchsorted(sorted_lengths, generated, side="right")
    starts_b = np.expand_dims(starts, -2)
    # Draw a uniform index in [start, n); exhausted tails handled below.
    spans = np.maximum(n - starts_b, 1)
    indices = starts_b + np.floor(uniforms * spans).astype(np.int64)
    np.minimum(indices, n - 1, out=indices)
    predictions = sorted_lengths[indices]
    exhausted = starts_b >= n
    if exhausted.any():
        predictions = np.where(exhausted, np.expand_dims(generated, -2) + 1, predictions)
    return predictions


@dataclass
class OutputLengthPredictor:
    """Samples predicted output lengths from an empirical distribution.

    Args:
        lengths: the historical output lengths (the window snapshot).
        seed: RNG seed for reproducible sampling.
        num_samples: how many independent samples to draw per request before
            aggregating.
        aggregation: how to combine repeated samples.
        presorted: promise that ``lengths`` is already sorted ascending,
            skipping the per-construction sort.  Callers that build one
            predictor per iteration over a slowly changing window (the
            Past-Future scheduler) cache the sorted array and pass it here;
            sampling is over the sorted array either way, so results are
            identical.
    """

    lengths: np.ndarray
    seed: int = 0
    num_samples: int = 1
    aggregation: Aggregation = "max"
    presorted: bool = False

    def __post_init__(self) -> None:
        """Validate the window, sort it unless promised sorted, seed the RNG."""
        lengths = np.asarray(self.lengths, dtype=np.int64)
        if lengths.ndim != 1 or lengths.size == 0:
            raise ValueError("lengths must be a non-empty 1-D array")
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.presorted:
            if lengths[0] <= 0:
                raise ValueError("lengths must be positive")
            object.__setattr__(self, "_sorted", lengths)
        else:
            if np.any(lengths <= 0):
                raise ValueError("lengths must be positive")
            # Sorted copy enables O(log n) conditional sampling via searchsorted.
            object.__setattr__(self, "_sorted", np.sort(lengths))
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))

    # ------------------------------------------------------------ distribution
    @property
    def support(self) -> np.ndarray:
        """Distinct lengths present in the window, ascending."""
        return np.unique(self._sorted)

    @property
    def max_length(self) -> int:
        """Largest length observed in the window."""
        return int(self._sorted[-1])

    def probability(self, length: int) -> float:
        """Empirical probability ``P(l == length)`` (Equation 1)."""
        left = np.searchsorted(self._sorted, length, side="left")
        right = np.searchsorted(self._sorted, length, side="right")
        return float(right - left) / self._sorted.size

    def exceedance(self, length: int) -> float:
        """Empirical probability ``P(l > length)``."""
        right = np.searchsorted(self._sorted, length, side="right")
        return float(self._sorted.size - right) / self._sorted.size

    # ---------------------------------------------------------------- sampling
    def predict_new(self, count: int) -> np.ndarray:
        """Sample predicted output lengths for ``count`` queued requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        samples = self._rng.choice(self._sorted, size=(self.num_samples, count), replace=True)
        return aggregate_samples(samples, self.aggregation).astype(np.int64)

    def predict_running(self, generated: np.ndarray | list[int]) -> np.ndarray:
        """Resample predictions for running requests from ``P(l | l > generated)``.

        For a request whose generated token count already exceeds every length
        in the window, the prediction falls back to ``generated + 1`` — the
        most optimistic consistent estimate (the request may stop at the very
        next token), matching the scheduler's behaviour of trusting the
        history only while it remains informative.

        This is exactly :meth:`predict_running_batch` with ``steps=1``: a
        ``(1, num_samples, n)`` uniform draw consumes the generator stream
        identically to an ``(num_samples, n)`` draw (C-contiguous fill), so
        delegating keeps both values and stream bit-identical while leaving a
        single sampling kernel to maintain.
        """
        return self.predict_running_batch(generated, 1)[0]

    def predict_running_batch(
        self,
        generated: np.ndarray | list[int],
        steps: int,
    ) -> np.ndarray:
        """Predictions for ``steps`` successive uniform-decode iterations.

        Row ``k`` holds the predictions :meth:`predict_running` would return
        for generated counts ``generated + k`` — the running batch after ``k``
        silent decode iterations in which every resident grew by one token.

        The entire batch is one ``(steps, num_samples, n)`` uniform draw.
        Because :meth:`numpy.random.Generator.random` fills C-contiguously,
        that single call consumes the generator stream in exactly the order of
        ``steps`` sequential ``(num_samples, n)`` draws, so both the returned
        predictions and the post-call generator state are bit-identical to the
        sequential loop it replaces (``tests/test_saturated_jump.py`` compares
        ``bit_generator.state`` directly).

        Args:
            generated: generated-token counts of the running batch, 1-D.
            steps: number of successive iterations to pre-draw.

        Returns:
            ``(steps, len(generated))`` int64 predictions.
        """
        generated_arr = np.asarray(generated, dtype=np.int64)
        if generated_arr.ndim != 1:
            raise ValueError("generated must be 1-D")
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if generated_arr.size == 0 or steps == 0:
            return np.zeros((steps, generated_arr.size), dtype=np.int64)
        if np.any(generated_arr < 0):
            raise ValueError("generated token counts must be non-negative")
        uniforms = self._rng.random((steps, self.num_samples, generated_arr.size))
        gens = generated_arr[None, :] + np.arange(steps, dtype=np.int64)[:, None]
        samples = conditional_prediction_samples(self._sorted, uniforms, gens)
        return aggregate_samples(samples, self.aggregation).astype(np.int64)


def build_predictor(
    lengths: np.ndarray,
    seed: int = 0,
    num_samples: int = 1,
    aggregation: Aggregation = "max",
) -> OutputLengthPredictor:
    """Convenience constructor mirroring :class:`OutputLengthPredictor`."""
    return OutputLengthPredictor(
        lengths=np.asarray(lengths, dtype=np.int64),
        seed=seed,
        num_samples=num_samples,
        aggregation=aggregation,
    )

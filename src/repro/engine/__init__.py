"""Inference-engine substrate: requests, batching, cost model, eviction, engine."""

from repro.engine.batch import RunningBatch
from repro.engine.cost_model import CostModel, StepWork
from repro.engine.engine import EngineStats, InferenceEngine, StepResult
from repro.engine.eviction import (
    EvictionPolicy,
    RecomputeNewestFirst,
    RecomputeOldestFirst,
    SwapEviction,
)
from repro.engine.request import Request, RequestState

__all__ = [
    "RunningBatch",
    "CostModel",
    "StepWork",
    "EngineStats",
    "InferenceEngine",
    "StepResult",
    "EvictionPolicy",
    "RecomputeNewestFirst",
    "RecomputeOldestFirst",
    "SwapEviction",
    "Request",
    "RequestState",
]

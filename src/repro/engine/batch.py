"""Running-batch container used by the continuous-batching engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.request import Request, RequestState


@dataclass
class RunningBatch:
    """Requests currently resident in the KV cache.

    Admission order is preserved because eviction policies pick victims by
    recency (the most recently admitted request is the cheapest to throw away).
    """

    requests: list[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __contains__(self, request: Request) -> bool:
        return request in self.requests

    @property
    def is_empty(self) -> bool:
        """Whether no request is resident."""
        return not self.requests

    def add(self, request: Request) -> None:
        """Append a newly admitted request."""
        self.requests.append(request)

    def remove(self, request: Request) -> None:
        """Remove a finished or evicted request."""
        self.requests.remove(request)

    @property
    def decoding(self) -> list[Request]:
        """Requests whose prefill is complete and are generating tokens."""
        return [r for r in self.requests if r.state is RequestState.DECODING]

    @property
    def prefilling(self) -> list[Request]:
        """Requests still processing their prompt (chunked prefill)."""
        return [r for r in self.requests if r.state is RequestState.PREFILLING]

    @property
    def total_context_tokens(self) -> int:
        """KV tokens held by all resident requests."""
        return sum(r.current_context_tokens for r in self.requests)

    def by_recency(self) -> list[Request]:
        """Resident requests ordered most-recently-admitted first."""
        return sorted(
            self.requests,
            key=lambda r: r.admission_times[-1] if r.admission_times else 0.0,
            reverse=True,
        )

"""Roofline-style latency model for prefill and decode iterations.

The simulator replaces GPU kernel execution with an analytical cost model.
Per continuous-batching iteration the engine reports

* how many *prompt* tokens were processed this step (prefill work, which is
  compute-bound: every token runs the full forward pass), and
* how many requests decoded one token and how much KV context they hold
  (decode work, which is memory-bound: the model weights are read once per
  step and the KV cache of every resident token is read once).

Latency is then ``max(compute_time, memory_time) + fixed_overhead``, the
standard roofline estimate, scaled by an empirical efficiency factor and the
framework-specific speed factor used by the end-to-end comparison (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.platform import Platform


@dataclass(frozen=True)
class StepWork:
    """Work performed in one continuous-batching iteration."""

    #: prompt tokens processed (prefill / recompute / chunked prefill).
    prefill_tokens: int = 0
    #: number of requests that decoded exactly one token this step.
    decode_requests: int = 0
    #: total KV context tokens across the decoding requests (attention reads).
    decode_context_tokens: int = 0
    #: number of images encoded this step (multimodal admissions).
    images_encoded: int = 0

    @property
    def is_idle(self) -> bool:
        """Whether the step performed no model work at all."""
        return (
            self.prefill_tokens == 0
            and self.decode_requests == 0
            and self.images_encoded == 0
        )


@dataclass(frozen=True)
class CostModel:
    """Analytical latency model for one platform.

    Args:
        platform: the (model, GPU, TP) deployment to cost.
        compute_efficiency: fraction of peak FLOP/s achieved by prefill GEMMs.
        bandwidth_efficiency: fraction of peak bandwidth achieved by decode.
        step_overhead_seconds: fixed per-iteration overhead (kernel launches,
            Python scheduling, tokenization/detokenization).
        speed_factor: multiplier on the final latency; ``1.0`` is the LightLLM
            baseline, other frameworks use values from
            :mod:`repro.frameworks.profiles`.
    """

    platform: Platform
    compute_efficiency: float = 0.55
    bandwidth_efficiency: float = 0.70
    step_overhead_seconds: float = 0.004
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if self.step_overhead_seconds < 0:
            raise ValueError("step_overhead_seconds must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")

    # -------------------------------------------------------------- components
    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Compute-bound time to run ``prompt_tokens`` through the model."""
        if prompt_tokens <= 0:
            return 0.0
        model = self.platform.model
        flops = prompt_tokens * model.flops_per_token
        return flops / (self.platform.aggregate_flops * self.compute_efficiency)

    def decode_seconds(self, decode_requests: int, decode_context_tokens: int) -> float:
        """Memory-bound time for one decode iteration over the running batch."""
        if decode_requests <= 0:
            return 0.0
        model = self.platform.model
        weight_bytes = model.weight_bytes
        kv_bytes = decode_context_tokens * model.kv_bytes_per_token
        memory_time = (weight_bytes + kv_bytes) / (
            self.platform.aggregate_bandwidth * self.bandwidth_efficiency
        )
        flops = decode_requests * model.flops_per_token
        compute_time = flops / (self.platform.aggregate_flops * self.compute_efficiency)
        return max(memory_time, compute_time)

    @property
    def effective_decode_bandwidth(self) -> float:
        """Bytes/s the decode roofline can actually stream on this platform.

        Decode is memory-bound, so this single scalar — aggregate bandwidth
        discounted by the empirical efficiency factor — is the speed axis on
        which replicas of different GPU generations compare.
        """
        return self.platform.aggregate_bandwidth * self.bandwidth_efficiency

    def relative_speed(self, reference: "CostModel") -> float:
        """Decode speed of this platform relative to ``reference`` (1.0 = equal).

        Used by :class:`~repro.serving.cluster.ClusterSimulator` to stamp
        each :class:`~repro.serving.routing.ReplicaView` with a
        ``speed_factor`` normalised against the fastest platform in the
        fleet, so routers can weigh headroom against replica speed without
        re-deriving hardware numbers.
        """
        return self.effective_decode_bandwidth / reference.effective_decode_bandwidth

    def vision_seconds(self, images_encoded: int) -> float:
        """Vision-encoder time for multimodal admissions."""
        if images_encoded <= 0:
            return 0.0
        return images_encoded * self.platform.model.vision_encoder_seconds

    # ------------------------------------------------------------------ totals
    def step_seconds(self, work: StepWork) -> float:
        """Latency of one continuous-batching iteration."""
        if work.is_idle:
            return 0.0
        prefill = self.prefill_seconds(work.prefill_tokens)
        decode = self.decode_seconds(work.decode_requests, work.decode_context_tokens)
        vision = self.vision_seconds(work.images_encoded)
        total = prefill + decode + vision + self.step_overhead_seconds
        return total * self.speed_factor

    def decode_step_durations(
        self,
        decode_requests: int,
        start_context_tokens: int,
        num_steps: int,
    ) -> np.ndarray:
        """Latencies of ``num_steps`` consecutive decode-only iterations.

        Step ``j`` (0-based) decodes one token for each of ``decode_requests``
        residents whose aggregate KV context is ``start_context_tokens +
        j * decode_requests`` — exactly the work sequence of a batch that
        admits nothing, prefills nothing, and finishes nothing.  This is the
        cost model's multi-step integration for the engine's event-jump fast
        path.

        The per-step evaluation is vectorized rather than reduced to the
        arithmetic-series closed form on purpose: each element performs the
        *same* float64 operations in the *same* order as a scalar
        :meth:`step_seconds` call, so the returned durations are bit-identical
        to the reference one-iteration-at-a-time loop (a closed-form sum would
        round differently).
        """
        if decode_requests <= 0:
            raise ValueError("decode_requests must be positive")
        if num_steps <= 0:
            return np.zeros(0, dtype=np.float64)
        model = self.platform.model
        context = start_context_tokens + np.arange(num_steps, dtype=np.int64) * decode_requests
        kv_bytes = context * model.kv_bytes_per_token
        memory_time = (model.weight_bytes + kv_bytes) / (
            self.platform.aggregate_bandwidth * self.bandwidth_efficiency
        )
        flops = decode_requests * model.flops_per_token
        compute_time = flops / (self.platform.aggregate_flops * self.compute_efficiency)
        decode = np.maximum(memory_time, compute_time)
        return (decode + self.step_overhead_seconds) * self.speed_factor

    def tokens_per_second_upper_bound(self, context_tokens_per_request: int, batch_size: int) -> float:
        """Rough decode-throughput ceiling, used for sanity checks in tests."""
        if batch_size <= 0:
            return 0.0
        work = StepWork(
            decode_requests=batch_size,
            decode_context_tokens=context_tokens_per_request * batch_size,
        )
        seconds = self.step_seconds(work)
        return batch_size / seconds if seconds > 0 else 0.0

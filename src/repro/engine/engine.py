"""Continuous-batching inference engine (discrete-event simulation).

The engine executes the serving loop the paper describes in Sections 2.3–2.4:
one *iteration* (decode step) at a time it

1. asks the admission scheduler which waiting requests join the running batch,
2. (chunked-)prefills newly admitted requests,
3. decodes one token for every resident request, evicting requests when the
   KV-cache pool cannot grow, and
4. retires finished requests, feeding their true output lengths back to the
   scheduler so history-based policies can learn the workload.

The wall-clock duration of each iteration comes from the roofline
:class:`~repro.engine.cost_model.CostModel`; the caller (usually
:class:`repro.serving.server.ServingSimulator`) owns the clock and injects
request arrivals between iterations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.future_memory import peak_future_memory_arrays
from repro.engine.batch import RunningBatch
from repro.engine.cost_model import CostModel, StepWork
from repro.engine.eviction import EvictionPolicy, RecomputeNewestFirst
from repro.engine.request import Request, RequestState
from repro.hardware.platform import Platform
from repro.memory.block_manager import BlockKVCachePool, OutOfMemoryError
from repro.memory.pool_stats import MemoryTimeline
from repro.memory.prefix_cache import PrefixCache, PrefixEntry
from repro.obs import events as obs
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer
from repro.schedulers.base import Scheduler, SchedulingContext


@dataclass
class StepResult:
    """Outcome of one continuous-batching iteration.

    ``source`` tags which execution path produced the result; reference
    iterations always report ``"loop"`` (event-jump macro-steps produce
    :class:`JumpResult` instead, tagged ``"silent"`` / ``"saturated"``), so
    equivalence tests can assert jump coverage instead of inferring it from
    timings.
    """

    step: int
    start_time: float
    duration: float
    admitted: list[Request] = field(default_factory=list)
    finished: list[Request] = field(default_factory=list)
    evicted: list[Request] = field(default_factory=list)
    work: StepWork = field(default_factory=StepWork)
    used_tokens: int = 0
    future_required_tokens: int = 0
    #: execution path that produced this iteration (always ``"loop"``).
    source: str = "loop"

    @property
    def end_time(self) -> float:
        """Wall-clock time at which the iteration completed."""
        return self.start_time + self.duration

    @property
    def was_idle(self) -> bool:
        """Whether the iteration performed no model work."""
        return self.work.is_idle


@dataclass
class JumpResult:
    """Outcome of one event-jump macro-step (``steps`` fused iterations).

    Produced by :meth:`InferenceEngine.try_jump` when the engine can prove
    that no scheduling event occurs for the next ``steps`` iterations, and by
    :meth:`InferenceEngine.try_jump_saturated` when the admission scheduler
    additionally proves its next ``steps`` decisions admit nothing; either
    way the macro-step admits nothing, finishes nothing, and evicts nothing —
    it only fast-forwards decode.
    """

    #: number of decode iterations fused into this macro-step.
    steps: int
    start_time: float
    #: wall-clock time after the last fused iteration; bit-identical to the
    #: sequentially accumulated end time of the reference loop.
    end_time: float
    #: decode tokens delivered (``steps * batch_size``).
    decode_tokens: int
    #: which jump produced the macro-step: ``"silent"`` (empty waiting queue,
    #: :meth:`InferenceEngine.try_jump`) or ``"saturated"``
    #: (:meth:`InferenceEngine.try_jump_saturated`).
    source: str = "silent"


@dataclass
class EngineStats:
    """Counters accumulated over an engine's lifetime."""

    decoding_steps: int = 0
    idle_steps: int = 0
    total_prefill_tokens: int = 0
    total_decode_tokens: int = 0
    total_evictions: int = 0
    total_admissions: int = 0
    total_finished: int = 0


@dataclass
class JumpStats:
    """Self-profiling counters of the event-jump fast path.

    Answers "what did the fast path actually do" for one engine's lifetime:
    how often each jump was attempted and taken, how many iterations each
    fused, why attempts fell back to the reference loop, and how often the
    admission scheduler was consulted.  Kept separate from
    :class:`EngineStats` on purpose — these counters describe the *execution
    strategy*, not the simulated system, so they differ between fast-path
    and reference runs and are deliberately excluded from result
    fingerprints (see :func:`repro.analysis.perf.run_snapshot`).
    """

    #: reference iterations executed via :meth:`InferenceEngine.step`.
    loop_steps: int = 0
    #: silent-jump attempts (:meth:`InferenceEngine.try_jump` calls).
    silent_attempts: int = 0
    #: silent-jump attempts that produced a macro-step.
    silent_jumps: int = 0
    #: iterations fused across all silent macro-steps.
    silent_steps_fused: int = 0
    #: saturated-jump attempts (:meth:`InferenceEngine.try_jump_saturated`).
    saturated_attempts: int = 0
    #: saturated-jump attempts that produced a macro-step.
    saturated_jumps: int = 0
    #: iterations fused across all saturated macro-steps.
    saturated_steps_fused: int = 0
    #: iterations on which the admission scheduler was consulted (non-empty
    #: waiting queue at :meth:`InferenceEngine.step` time).
    scheduler_consults: int = 0
    #: why jump attempts fell back to the reference loop, per reason.
    fallback_reasons: dict[str, int] = field(default_factory=dict)

    def note_fallback(self, reason: str) -> None:
        """Count one attempt that fell back to the reference loop."""
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    # ------------------------------------------------------------ derived
    @property
    def steps_fused(self) -> int:
        """Iterations advanced by macro-steps of either kind."""
        return self.silent_steps_fused + self.saturated_steps_fused

    @property
    def total_steps(self) -> int:
        """Iterations the engine advanced by any path."""
        return self.loop_steps + self.steps_fused

    @property
    def jumps(self) -> int:
        """Macro-steps taken of either kind."""
        return self.silent_jumps + self.saturated_jumps

    @property
    def fused_fraction(self) -> float:
        """Fraction of all iterations advanced inside macro-steps."""
        total = self.total_steps
        return self.steps_fused / total if total else 0.0

    @property
    def mean_steps_per_jump(self) -> float:
        """Average iterations fused per taken macro-step."""
        return self.steps_fused / self.jumps if self.jumps else 0.0

    def merge(self, other: "JumpStats") -> None:
        """Accumulate another engine's counters into this one (fleet totals)."""
        self.loop_steps += other.loop_steps
        self.silent_attempts += other.silent_attempts
        self.silent_jumps += other.silent_jumps
        self.silent_steps_fused += other.silent_steps_fused
        self.saturated_attempts += other.saturated_attempts
        self.saturated_jumps += other.saturated_jumps
        self.saturated_steps_fused += other.saturated_steps_fused
        self.scheduler_consults += other.scheduler_consults
        for reason, count in other.fallback_reasons.items():
            self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + count

    def summary(self) -> dict:
        """Compact JSON-ready view (the ``jump`` block of ``BENCH_core.json``)."""
        return {
            "loop_steps": self.loop_steps,
            "jumps": self.jumps,
            "steps_fused": self.steps_fused,
            "silent_jumps": self.silent_jumps,
            "saturated_jumps": self.saturated_jumps,
            "scheduler_consults": self.scheduler_consults,
            "fused_fraction": round(self.fused_fraction, 4),
            "mean_steps_per_jump": round(self.mean_steps_per_jump, 2),
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
        }


class InferenceEngine:
    """Continuous-batching executor over a simulated KV-cache pool.

    Args:
        platform: deployment target; supplies the token capacity and feeds the
            default cost model.
        scheduler: admission-control policy.
        cost_model: latency model; built from ``platform`` if omitted.
        eviction_policy: what to do when the pool cannot grow (defaults to
            vLLM-style recompute of the newest request).
        block_size: KV-cache block size in tokens.
        chunked_prefill_tokens: if set, at most this many prompt tokens are
            processed per iteration (DeepSpeed-MII "splitfuse" style); ``None``
            prefills each admitted request in a single iteration.
        token_capacity_override: replaces the platform's KV token capacity,
            used by scaled-down experiments and unit tests.
        fast_path: whether :meth:`try_jump` / :meth:`try_jump_saturated` may
            fuse provably event-free decode iterations into vectorized
            macro-steps.  Metrics are bit-identical either way; the flag
            exists so any future discrepancy can be bisected against the
            reference loop in one flip.
        prefix_cache_tokens: if set, a per-engine
            :class:`~repro.memory.prefix_cache.PrefixCache` retains the KV
            context of finished non-final session turns (up to this many
            tokens, clamped to the pool capacity) so follow-up turns that
            land here skip recomputing and re-allocating the shared prefix.
            ``None`` (the default) disables the cache entirely — no
            allocation is retained and no prefix event is ever emitted,
            keeping sessionless runs byte-identical to earlier versions.
        tracer: observability sink for request-lifecycle and macro-step
            events (see :mod:`repro.obs`); defaults to the zero-overhead
            :data:`~repro.obs.tracer.NULL_TRACER`.  Tracing only reads
            state — results are byte-identical with any tracer attached.
    """

    def __init__(
        self,
        platform: Platform,
        scheduler: Scheduler,
        cost_model: CostModel | None = None,
        eviction_policy: EvictionPolicy | None = None,
        block_size: int = 1,
        chunked_prefill_tokens: int | None = None,
        token_capacity_override: int | None = None,
        fast_path: bool = True,
        tracer: Tracer | None = None,
        prefix_cache_tokens: int | None = None,
    ) -> None:
        self.platform = platform
        self.scheduler = scheduler
        self.cost_model = cost_model or CostModel(platform)
        self.eviction_policy = eviction_policy or RecomputeNewestFirst()
        if chunked_prefill_tokens is not None and chunked_prefill_tokens <= 0:
            raise ValueError("chunked_prefill_tokens must be positive when set")
        self.chunked_prefill_tokens = chunked_prefill_tokens
        capacity = token_capacity_override if token_capacity_override is not None else platform.token_capacity
        if capacity <= 0:
            raise ValueError("token capacity must be positive")
        self.token_capacity = capacity
        self.pool = BlockKVCachePool(capacity, block_size=block_size)
        if prefix_cache_tokens is not None and prefix_cache_tokens <= 0:
            raise ValueError("prefix_cache_tokens must be positive when set")
        self.prefix_cache: PrefixCache | None = (
            PrefixCache(self.pool, capacity_tokens=min(prefix_cache_tokens, capacity))
            if prefix_cache_tokens is not None
            else None
        )
        self.waiting: deque[Request] = deque()
        self.batch = RunningBatch()
        self.stats = EngineStats()
        self.jump_stats = JumpStats()
        self.memory_timeline = MemoryTimeline(token_capacity=self.pool.token_capacity)
        self.fast_path = fast_path
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # The enabled flag is immutable per tracer; caching it keeps the
        # per-token and per-step guards to one attribute read.
        self._tracing = self.tracer.enabled
        #: replica index stamped on emitted events (the cluster assigns it;
        #: standalone engines trace as replica 0).
        self.trace_replica = 0
        self._step_counter = 0
        # Epoch-guarded profile of a *uniform* batch (every resident decoding).
        # Bumped on any membership/state change (admission, eviction, finish);
        # while it is unchanged, each iteration grows every resident by
        # exactly one token, so the batch's context sum, oracle future-memory
        # peak, and steps-until-first-finish all advance in closed form
        # instead of being recomputed O(B) / O(B log B) per step.
        # Layout: (epoch, batch_size, next_context_sum, future_required,
        #          min_remaining).
        self._batch_epoch = 0
        self._silent_cache: tuple[int, int, int, int, int] | None = None
        self.scheduler.on_run_start()

    # ------------------------------------------------------------------ state
    @property
    def num_waiting(self) -> int:
        """Requests currently queued for admission."""
        return len(self.waiting)

    @property
    def num_running(self) -> int:
        """Requests currently resident in the KV cache."""
        return len(self.batch)

    def has_work(self) -> bool:
        """Whether any request is queued or resident."""
        return bool(self.waiting) or not self.batch.is_empty

    def submit(self, request: Request, time: float | None = None) -> None:
        """Add an arriving request to the waiting queue.

        ``time`` is the simulation clock at queue entry, used only for
        tracing (it defaults to the request's arrival time, which is exact
        whenever the caller injects arrivals at their timestamps).
        """
        if request.state is not RequestState.QUEUED:
            raise ValueError("only queued requests can be submitted")
        self.waiting.append(request)
        self.scheduler.on_request_submitted(request)
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_QUEUED,
                    time if time is not None else request.arrival_time,
                    request_id=request.request_id,
                    replica=self.trace_replica,
                    attrs={"queue_depth": len(self.waiting)},
                )
            )

    # ------------------------------------------------------------- fault hooks
    def abort_all(self, time: float) -> list[Request]:
        """Kill every resident and queued request (replica crash semantics).

        Frees the KV pool, aborts each request (their partial token timelines
        stay recorded, so callers can account the work lost with them), and
        invalidates the fast path's batch profile.  Returns the aborted
        requests, running batch first in batch order, then the waiting queue
        front to back.
        """
        aborted: list[Request] = []
        if self.prefix_cache is not None:
            # A crash takes the cached prefixes with it (no eviction events:
            # the replica is gone, not under memory pressure).
            self.prefix_cache.clear()
        for request in list(self.batch):
            self.pool.free(request.request_id)
            self.batch.remove(request)
            request.abort(time)
            aborted.append(request)
        for request in self.waiting:
            request.abort(time)
            aborted.append(request)
        self.waiting.clear()
        if aborted:
            self._batch_epoch += 1
            self._silent_cache = None
        return aborted

    def drain_waiting(self) -> list[Request]:
        """Remove and return the waiting queue (queue migration off a drain).

        The requests stay ``QUEUED`` — they hold no KV and can be submitted
        to another engine.  The running batch is untouched, so the silent
        cache stays valid.  Note the scheduler is *not* told about the
        removal; migrating work off a replica whose scheduler keeps
        cross-request state (e.g. VTC counters) leaves that state behind,
        exactly as a real drain abandons a dying scheduler's bookkeeping.
        """
        drained = list(self.waiting)
        self.waiting.clear()
        return drained

    # ------------------------------------------------------------- admission
    def _scheduling_context(self, time: float) -> SchedulingContext:
        # Only built when the scheduler is actually consulted (non-empty
        # waiting queue — see the guard in _admit); the running/waiting list
        # copies here must never be constructed on pure decode iterations.
        return SchedulingContext(
            time=time,
            step=self._step_counter,
            running=list(self.batch),
            waiting=list(self.waiting),
            token_capacity=self.pool.token_capacity,
            used_tokens=self.pool.used_tokens,
        )

    def _admit(self, time: float) -> list[Request]:
        if not self.waiting:
            return []
        self.jump_stats.scheduler_consults += 1
        decisions = self.scheduler.schedule(self._scheduling_context(time))
        admitted: list[Request] = []
        cache = self.prefix_cache
        for request in decisions:
            needed = request.current_context_tokens
            entry = cache.lookup(request.spec) if cache is not None else None
            if entry is not None:
                # The shared blocks are already resident; only the new
                # suffix needs room.  Live admissions outrank other cached
                # prefixes, so LRU-evict them first (never the entry itself).
                extra = needed - entry.tokens
                if extra > 0 and not self.pool.can_extend(entry.cache_key, extra):
                    self._evict_prefixes(
                        cache.evict_for_extension(
                            entry.cache_key, extra, protect=entry.session_id
                        ),
                        time,
                    )
                    if not self.pool.can_extend(entry.cache_key, extra):
                        break
            elif not self.pool.can_allocate(needed):
                if cache is not None and len(cache):
                    self._evict_prefixes(cache.evict_for_allocation(needed), time)
                if not self.pool.can_allocate(needed):
                    break
            if self.waiting and self.waiting[0] is request:
                # The common (FCFS prefix) case: exactly the operation the
                # pre-fair-scheduler engine performed, so prefix-admitting
                # policies replay bit-identically.
                self.waiting.popleft()
            else:
                # Fair schedulers admit across the queue in counter order;
                # remove by identity (Request equality is structural and two
                # distinct requests can compare equal).
                for position, queued in enumerate(self.waiting):
                    if queued is request:
                        del self.waiting[position]
                        break
                else:
                    # A request the queue does not hold (or admitted twice) is
                    # a policy bug we surface immediately.
                    raise RuntimeError(
                        f"scheduler {self.scheduler.name!r} admitted "
                        f"{request.request_id}, which is not in the waiting queue"
                    )
            if entry is not None:
                cache.claim(entry, request.request_id)
                if needed > entry.tokens:
                    self.pool.append_tokens(request.request_id, needed - entry.tokens)
                request.admit(time)
                # The reused prefix's KV is already computed; only the new
                # suffix remains as prefill work (mirrors the eviction-credit
                # mechanism below).
                request.note_prefill(entry.tokens)
                if self._tracing:
                    self.tracer.emit(
                        TraceEvent(
                            obs.PREFIX_HIT,
                            time,
                            request_id=request.request_id,
                            replica=self.trace_replica,
                            attrs={
                                "session_id": entry.session_id,
                                "reused_tokens": entry.tokens,
                                "new_tokens": needed - entry.tokens,
                            },
                        )
                    )
            else:
                self.pool.allocate(request.request_id, needed)
                request.admit(time)
                if cache is not None and request.spec.session_id is not None:
                    cache.note_miss()
                    if self._tracing:
                        self.tracer.emit(
                            TraceEvent(
                                obs.PREFIX_MISS,
                                time,
                                request_id=request.request_id,
                                replica=self.trace_replica,
                                attrs={
                                    "session_id": request.spec.session_id,
                                    "prompt_tokens": needed,
                                },
                            )
                        )
                if request.eviction_count > 0:
                    # Swap-style eviction policies make re-admission cheaper
                    # than a full recompute; credit the difference so the
                    # remaining prefill work equals the policy's re-admission
                    # cost.
                    credit = request.recompute_tokens - self._prefill_cost_tokens(request)
                    if credit > 0:
                        request.note_prefill(credit)
            admitted.append(request)
            self.batch.add(request)
        if admitted:
            self._batch_epoch += 1
        self.stats.total_admissions += len(admitted)
        if self._tracing and admitted:
            signals = self.scheduler.trace_signals()
            for request in admitted:
                self.tracer.emit(
                    TraceEvent(
                        obs.REQUEST_ADMITTED,
                        time,
                        request_id=request.request_id,
                        replica=self.trace_replica,
                        attrs={
                            "step": self._step_counter,
                            "used_tokens": self.pool.used_tokens,
                            "batch_size": len(self.batch),
                            **signals,
                        },
                    )
                )
        return admitted

    # ---------------------------------------------------------------- prefill
    def _prefill_cost_tokens(self, request: Request) -> int:
        """Prompt-equivalent tokens to process for this residency."""
        if request.eviction_count > 0:
            return self.eviction_policy.recompute_cost_tokens(request)
        return request.recompute_tokens

    def _plan_prefill(self) -> tuple[int, list[Request]]:
        """Assign prefill work for this iteration.

        Returns the number of prompt tokens processed and the requests whose
        prefill completed (and therefore deliver their first token this step).
        """
        prefilling = self.batch.prefilling
        if not prefilling:
            return 0, []
        budget = self.chunked_prefill_tokens
        processed = 0
        completed: list[Request] = []
        for request in prefilling:
            remaining = request.prefill_remaining
            if remaining == 0:
                request.note_prefill(0)
                completed.append(request)
                continue
            if budget is None:
                share = remaining
            else:
                share = min(remaining, budget - processed)
                if share <= 0:
                    break
            request.note_prefill(share)
            processed += share
            if request.prefill_remaining == 0:
                completed.append(request)
        return processed, completed

    # ----------------------------------------------------------------- decode
    def _evict_prefixes(self, entries: list[PrefixEntry], time: float) -> None:
        """Emit ``prefix.evict`` events for cache entries dropped under pressure."""
        if not entries or not self._tracing:
            return
        for entry in entries:
            self.tracer.emit(
                TraceEvent(
                    obs.PREFIX_EVICT,
                    time,
                    replica=self.trace_replica,
                    attrs={
                        "session_id": entry.session_id,
                        "tokens": entry.tokens,
                        "cause": "pool-pressure",
                    },
                )
            )

    def _make_room(self, protect: Request, time: float, evicted: list[Request]) -> bool:
        """Evict requests until one block frees up.

        Cached session prefixes go first — dropping a cold prefix is strictly
        cheaper than evicting a running request's whole context.  Returns
        ``False`` if the protected request itself had to be evicted (its
        token cannot be produced this step).
        """
        if self.prefix_cache is not None and len(self.prefix_cache):
            self._evict_prefixes(self.prefix_cache.evict_for_one_block(), time)
            if self.pool.free_blocks > 0:
                return True
        while True:
            victim = self.eviction_policy.select_victim(self.batch, protect=protect)
            if victim is None:
                return False
            self._evict(victim, time)
            evicted.append(victim)
            if victim is protect:
                return False
            if self.pool.free_blocks > 0:
                return True

    def _evict(self, request: Request, time: float) -> None:
        self.pool.free(request.request_id)
        self.batch.remove(request)
        request.evict()
        self.waiting.appendleft(request)
        self._batch_epoch += 1
        self.stats.total_evictions += 1
        self.scheduler.on_request_evicted(request, time)
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_EVICTED,
                    time,
                    request_id=request.request_id,
                    replica=self.trace_replica,
                    attrs={
                        "generated_tokens": request.generated_tokens,
                        "eviction_count": request.eviction_count,
                    },
                )
            )

    def _deliver_one_token(
        self,
        request: Request,
        end_time: float,
        evicted: list[Request],
        finished: list[Request],
    ) -> bool:
        """Grow the request by one token and stream it to the client."""
        try:
            self.pool.append_token(request.request_id)
        except OutOfMemoryError:
            if not self._make_room(request, end_time, evicted):
                return False
            self.pool.append_token(request.request_id)
        request.deliver_token(end_time)
        self.stats.total_decode_tokens += 1
        if self._tracing and request.generated_tokens == 1:
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_FIRST_TOKEN,
                    end_time,
                    request_id=request.request_id,
                    replica=self.trace_replica,
                    attrs={"prefill_tokens": request.prefilled_tokens},
                )
            )
        if request.should_stop:
            request.finish(end_time)
            retained = False
            spec = request.spec
            if (
                self.prefix_cache is not None
                and spec.session_id is not None
                and spec.session_stage is not None
                and not spec.is_final_stage
            ):
                # Park the accumulated context for the session's next turn
                # instead of freeing it; the blocks stay charged to the pool.
                outcome = self.prefix_cache.retain(
                    request.request_id,
                    spec.session_id,
                    spec.session_stage,
                    request.current_context_tokens,
                )
                self._evict_prefixes(outcome.evicted, end_time)
                retained = outcome.retained
            if not retained:
                self.pool.free(request.request_id)
            self.batch.remove(request)
            self._batch_epoch += 1
            finished.append(request)
            self.stats.total_finished += 1
            self.scheduler.on_request_finished(request, end_time)
            if self._tracing:
                self.tracer.emit(
                    TraceEvent(
                        obs.REQUEST_FINISHED,
                        end_time,
                        request_id=request.request_id,
                        replica=self.trace_replica,
                        attrs={
                            "generated_tokens": request.generated_tokens,
                            "evictions": request.eviction_count,
                        },
                    )
                )
        return True

    # ------------------------------------------------------------------- step
    def step(self, time: float) -> StepResult:
        """Run one continuous-batching iteration starting at ``time``."""
        self._step_counter += 1
        admitted = self._admit(time)
        # The incremental batch profile is part of the fast path: with
        # ``fast_path=False`` every quantity below is recomputed from scratch,
        # keeping the reference loop a faithful bisection baseline.
        cache = self._silent_cache if self.fast_path else None
        if cache is not None and cache[0] != self._batch_epoch:
            cache = self._silent_cache = None
        if cache is not None:
            # Unchanged epoch: same membership as when the cache was written,
            # every resident decoding, each grown by exactly one token per
            # iteration since — the context sum advanced in closed form.
            decode_targets = self.batch.requests
            decode_count = len(decode_targets)
            decode_context = cache[2]
        else:
            decode_targets = [r for r in self.batch if r.state is RequestState.DECODING]
            decode_count = len(decode_targets)
            decode_context = sum(r.current_context_tokens for r in decode_targets)
        prefill_tokens, completed_prefill = self._plan_prefill()
        images = sum(1 for r in admitted if r.spec.image_tokens > 0)
        work = StepWork(
            prefill_tokens=prefill_tokens,
            decode_requests=decode_count,
            decode_context_tokens=decode_context,
            images_encoded=images,
        )
        duration = self.cost_model.step_seconds(work)
        end_time = time + duration

        evicted: list[Request] = []
        finished: list[Request] = []
        if cache is not None and cache[4] > 1 and self.pool.can_grow_each_by_one():
            # Assured-silent iteration: no request can stop (min remaining
            # length > 1) and the pool can grow every resident, so the
            # per-token bookkeeping collapses to a bulk append.
            self.pool.append_token_to_all()
            for request in decode_targets:
                request.generated_tokens += 1
                request.token_times.append(end_time)
            self.stats.total_decode_tokens += decode_count
            future_required = cache[3]
            self._silent_cache = (
                self._batch_epoch,
                decode_count,
                decode_context + decode_count,
                future_required,
                cache[4] - 1,
            )
        else:
            if decode_targets is self.batch.requests:
                # Finishes/evictions mutate the batch mid-loop; iterate a copy
                # exactly as the cold-path list comprehension does.
                decode_targets = list(decode_targets)
            for request in decode_targets:
                if request.is_running:
                    self._deliver_one_token(request, end_time, evicted, finished)
            for request in completed_prefill:
                if request.is_running:
                    self._deliver_one_token(request, end_time, evicted, finished)
            if self.fast_path:
                future_required = self._refresh_silent_cache()
            else:
                future_required = self._true_future_required()

        self.stats.total_prefill_tokens += prefill_tokens
        self.jump_stats.loop_steps += 1
        if work.is_idle:
            self.stats.idle_steps += 1
        else:
            self.stats.decoding_steps += 1
        if self._tracing and (admitted or finished or evicted or prefill_tokens):
            # Silent iterations are covered by engine.jump spans (or are not
            # interesting enough to log one-by-one); eventful ones carry the
            # whole story of where scheduling activity happened.
            self.tracer.emit(
                TraceEvent(
                    obs.ENGINE_STEP,
                    time,
                    replica=self.trace_replica,
                    duration=duration,
                    attrs={
                        "step": self._step_counter,
                        "source": "loop",
                        "admitted": len(admitted),
                        "finished": len(finished),
                        "evicted": len(evicted),
                        "prefill_tokens": prefill_tokens,
                        "batch_size": len(self.batch),
                    },
                )
            )

        used = self.pool.used_tokens
        self.memory_timeline.record(
            step=self._step_counter,
            time=end_time,
            used_tokens=used,
            future_required_tokens=future_required,
            running_requests=len(self.batch),
            queued_requests=len(self.waiting),
        )
        return StepResult(
            step=self._step_counter,
            start_time=time,
            duration=duration,
            admitted=admitted,
            finished=finished,
            evicted=evicted,
            work=work,
            used_tokens=used,
            future_required_tokens=future_required,
        )

    def _refresh_silent_cache(self) -> int:
        """Recompute the batch profile after an event-bearing iteration.

        Returns the oracle future-required memory of the post-step batch and
        seeds :attr:`_silent_cache` when the batch is uniform (every resident
        decoding), enabling closed-form accounting on subsequent iterations.
        """
        requests = self.batch.requests
        if not requests:
            self._silent_cache = None
            return 0
        current = np.array([r.current_context_tokens for r in requests], dtype=np.int64)
        remaining = np.array(
            [min(r.remaining_true_tokens, r.remaining_cap_tokens) for r in requests],
            dtype=np.int64,
        )
        future_required = peak_future_memory_arrays(current, remaining)
        if all(r.state is RequestState.DECODING for r in requests):
            self._silent_cache = (
                self._batch_epoch,
                len(requests),
                int(current.sum()),
                future_required,
                int(remaining.min()),
            )
        else:
            self._silent_cache = None
        return future_required

    # ------------------------------------------------------------- event jump
    def _uniform_decode_bound(self) -> int:
        """Iterations of provably uniform decode, ignoring the waiting queue.

        The shared engine-side half of both event-jump proofs: batch
        membership cannot change for this many iterations because every
        resident is decoding, nobody reaches its last token (finishes are
        events), and the pool provably grows every resident each step (so no
        eviction is possible).  Whether the *scheduler* would also stay
        silent is the caller's concern: :meth:`silent_steps_bound` requires
        an empty waiting queue, :meth:`try_jump_saturated` asks the scheduler
        to prove its decisions instead.
        """
        if not self.fast_path or not self.batch.requests:
            return 0
        cache = self._silent_cache
        if cache is not None and cache[0] != self._batch_epoch:
            cache = self._silent_cache = None
        if cache is None:
            self._refresh_silent_cache()
            cache = self._silent_cache
            if cache is None:
                # Some resident is still prefilling; the next iteration is
                # not a pure decode step.
                return 0
        # The iteration that delivers some request's last token finishes it
        # (an event); everything strictly before is silent.
        bound = cache[4] - 1
        if bound <= 0:
            return 0
        return self.pool.max_uniform_growth(bound)

    def silent_steps_bound(self) -> int:
        """Upper bound on decode iterations provably free of any event.

        An iteration is *silent* when it admits nothing (empty waiting
        queue), prefills nothing, finishes nothing, and cannot evict (the
        pool is guaranteed to grow every resident by one token).  Returns 0
        whenever the next iteration might do any of those, in which case the
        caller must take the reference :meth:`step` path.
        """
        if self.waiting:
            return 0
        return self._uniform_decode_bound()

    def try_jump(
        self,
        time: float,
        horizon: float | None = None,
        max_steps: int | None = None,
        max_time: float | None = None,
        min_steps: int = 2,
    ) -> JumpResult | None:
        """Fuse as many provably event-free decode iterations as possible.

        The macro-step reproduces the reference loop exactly: per-iteration
        durations come from :meth:`CostModel.decode_step_durations` (the same
        float64 operations the scalar path performs), token timestamps are the
        cumulative-sum chain of those durations, the pool grows via bulk
        appends that acquire the same blocks sequential appends would, and the
        memory timeline receives one sample per fused iteration.

        Args:
            time: simulation clock at the start of the macro-step.
            horizon: earliest external event (next arrival, autoscale
                decision, replica warm-up, ...).  Intermediate iteration ends
                stay strictly below it; only the final fused iteration may
                cross it, exactly as a reference step started before the event
                would.
            max_steps: remaining step budget of the caller's safety limits.
            max_time: the caller's simulation-time limit; the jump stops with
                the first iteration that crosses it (the caller then
                terminates, as the reference loop does).
            min_steps: below this many fusable iterations the macro-step is
                not worth its planning cost and ``None`` is returned.

        Returns:
            ``None`` when the fast path is disabled or the next iterations
            are not provably silent — the caller must fall back to
            :meth:`step`.
        """
        if not self.fast_path:
            return None
        stats = self.jump_stats
        stats.silent_attempts += 1
        bound = self.silent_steps_bound()
        if bound < min_steps:
            stats.note_fallback("silent:no-window")
            return None
        if max_steps is not None and max_steps < bound:
            bound = max_steps
        if bound < min_steps:
            stats.note_fallback("silent:step-budget")
            return None
        result = self._execute_jump(
            time, bound, horizon, max_time, min_steps, queued_requests=0, source="silent"
        )
        if result is None:
            stats.note_fallback("silent:horizon-clip")
        else:
            stats.silent_jumps += 1
            stats.silent_steps_fused += result.steps
        return result

    def try_jump_any(
        self,
        time: float,
        horizon: float | None = None,
        max_steps: int | None = None,
        max_time: float | None = None,
        min_steps: int = 2,
    ) -> JumpResult | None:
        """Try whichever event-jump applies to the current queue state.

        The single entry point drivers use: an empty waiting queue makes the
        next iterations candidates for a silent jump (:meth:`try_jump`), a
        non-empty one for a saturated jump (:meth:`try_jump_saturated`).
        Keeping the dispatch here means callers only plumb horizons, not
        queue-state knowledge.
        """
        if self.waiting:
            return self.try_jump_saturated(time, horizon, max_steps, max_time, min_steps)
        return self.try_jump(time, horizon, max_steps, max_time, min_steps)

    def try_jump_saturated(
        self,
        time: float,
        horizon: float | None = None,
        max_steps: int | None = None,
        max_time: float | None = None,
        min_steps: int = 2,
    ) -> JumpResult | None:
        """Fuse decode iterations whose admission decisions provably admit nothing.

        The saturated-phase counterpart of :meth:`try_jump`: while the
        waiting queue is non-empty, every iteration consults the admission
        scheduler — whose RNG stream is part of the reproduced semantics — so
        iterations are only fusable when the *scheduler itself* proves that
        its next decisions would all return the empty list
        (:meth:`~repro.schedulers.base.Scheduler.saturated_no_admit_horizon`).
        The engine first establishes the uniform-decode half of the proof
        (nothing prefills, finishes, or can evict — exactly as for a silent
        jump), hands the scheduler the scheduling context of the first
        upcoming iteration, and fuses the smaller of the two horizons.  After
        a successful macro-step the scheduler is told how many consultations
        were fused
        (:meth:`~repro.schedulers.base.Scheduler.on_saturated_steps_fused`)
        so RNG-consuming policies advance their stream to exactly where K
        sequential consultations would have left it.

        Arguments and the ``None`` fallback contract are those of
        :meth:`try_jump`; the macro-step additionally records the (constant)
        waiting-queue depth in the memory timeline, as the reference
        iterations would.
        """
        if not self.fast_path or not self.waiting:
            return None
        stats = self.jump_stats
        stats.saturated_attempts += 1
        bound = self._uniform_decode_bound()
        if bound < min_steps:
            stats.note_fallback("saturated:not-uniform")
            return None
        if max_steps is not None and max_steps < bound:
            bound = max_steps
        if bound < min_steps:
            stats.note_fallback("saturated:step-budget")
            return None
        # The context the scheduler would see at the first fused iteration;
        # ``step`` accounts for the pre-admission counter increment in
        # :meth:`step`.  Built once per attempt (the reference loop builds
        # one per iteration).
        context = SchedulingContext(
            time=time,
            step=self._step_counter + 1,
            running=list(self.batch),
            waiting=list(self.waiting),
            token_capacity=self.pool.token_capacity,
            used_tokens=self.pool.used_tokens,
        )
        bound = min(bound, self.scheduler.saturated_no_admit_horizon(context, bound))
        if bound < min_steps:
            stats.note_fallback("saturated:scheduler-horizon")
            return None
        result = self._execute_jump(
            time,
            bound,
            horizon,
            max_time,
            min_steps,
            queued_requests=len(self.waiting),
            source="saturated",
        )
        if result is None:
            stats.note_fallback("saturated:horizon-clip")
        else:
            stats.saturated_jumps += 1
            stats.saturated_steps_fused += result.steps
            self.scheduler.on_saturated_steps_fused(result.steps)
        return result

    def _execute_jump(
        self,
        time: float,
        bound: int,
        horizon: float | None,
        max_time: float | None,
        min_steps: int,
        queued_requests: int,
        source: str = "silent",
    ) -> JumpResult | None:
        """Advance up to ``bound`` proven-event-free iterations in one macro-step.

        Shared tail of :meth:`try_jump` and :meth:`try_jump_saturated`; the
        caller has already proven that the next ``bound`` iterations are pure
        uniform decode with no admissions.
        """
        requests = self.batch.requests
        cache = self._silent_cache
        assert cache is not None  # established by the caller's bound proof
        batch_size = cache[1]
        context_tokens = cache[2]
        durations = self.cost_model.decode_step_durations(batch_size, context_tokens, bound)
        # cumsum chains the additions sequentially from ``time``, giving the
        # exact floats the reference loop's ``time += duration`` produces.
        ends = np.cumsum(np.concatenate(((time,), durations)))[1:]
        steps = bound
        if horizon is not None:
            # Iterations whose end reaches the horizon must not be fused past:
            # the reference loop would process the event before the next one.
            steps = min(steps, int(np.searchsorted(ends, horizon, side="left")) + 1)
        if max_time is not None:
            steps = min(steps, int(np.searchsorted(ends, max_time, side="left")) + 1)
        if steps < min_steps:
            return None

        end_times: list[float] = ends[:steps].tolist()
        used_before = self.pool.used_tokens
        future_required = cache[3]
        for request in requests:
            self.pool.append_tokens(request.request_id, steps)
            request.deliver_tokens(end_times)
        self.memory_timeline.record_jump(
            first_step=self._step_counter,
            times=end_times,
            first_used_tokens=used_before,
            used_tokens_per_step=batch_size,
            future_required_tokens=future_required,
            running_requests=batch_size,
            queued_requests=queued_requests,
        )
        self._step_counter += steps
        self.stats.decoding_steps += steps
        self.stats.total_decode_tokens += steps * batch_size
        self._silent_cache = (
            self._batch_epoch,
            batch_size,
            context_tokens + steps * batch_size,
            future_required,
            cache[4] - steps,
        )
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.ENGINE_JUMP,
                    time,
                    replica=self.trace_replica,
                    duration=end_times[-1] - time,
                    attrs={
                        "source": source,
                        "steps": steps,
                        "decode_tokens": steps * batch_size,
                        "batch_size": batch_size,
                    },
                )
            )
        return JumpResult(
            steps=steps,
            start_time=time,
            end_time=end_times[-1],
            decode_tokens=steps * batch_size,
            source=source,
        )

    def _true_future_required(self) -> int:
        """Oracle peak future memory of the current batch (metric only).

        Uses the hidden true output lengths, so it measures how much memory
        the admitted batch *will actually* need — the "Future Required Memory"
        column of Table 1.  The schedulers never see this value.
        """
        if self.batch.is_empty:
            return 0
        current = np.array([r.current_context_tokens for r in self.batch], dtype=np.int64)
        remaining = np.array(
            [min(r.remaining_true_tokens, r.remaining_cap_tokens) for r in self.batch],
            dtype=np.int64,
        )
        return peak_future_memory_arrays(current, remaining)

"""Eviction (preemption) policies for the continuous-batching engine.

When the KV-cache pool cannot grow every running request by one token, the
engine must evict requests until the remaining batch fits.  Evicted requests
lose their KV cache and are re-queued; their prompt and already generated
tokens are recomputed when they are admitted again (the recomputation variant
used by vLLM and LightLLM), or their KV is copied to host memory and back (the
swap variant).  The scheduling papers agree that either way the client
observes a long token gap, so the SLA effect is captured by the re-queue; the
swap variant only changes the recompute cost.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.engine.batch import RunningBatch
from repro.engine.request import Request


class EvictionPolicy(abc.ABC):
    """Chooses which resident request to sacrifice when memory runs out."""

    name: str = "abstract"

    @abc.abstractmethod
    def select_victim(self, batch: RunningBatch, protect: Request | None = None) -> Request | None:
        """Return the request to evict, or ``None`` if no victim is available.

        Args:
            batch: the current running batch.
            protect: a request that must not be selected (typically the one
                whose token allocation triggered the shortage) unless it is
                the only resident request.
        """

    def recompute_cost_tokens(self, request: Request) -> int:
        """Prompt-equivalent tokens that must be recomputed on re-admission."""
        return request.recompute_tokens


@dataclass
class RecomputeNewestFirst(EvictionPolicy):
    """Evict the most recently admitted request first (vLLM-style preemption).

    The newest request has the least KV investment, so evicting it wastes the
    least work; it is also the request whose SLA is least damaged by being
    restarted, because it has delivered the fewest tokens.
    """

    name: str = "recompute-newest-first"

    def select_victim(self, batch: RunningBatch, protect: Request | None = None) -> Request | None:
        candidates = batch.by_recency()
        for request in candidates:
            if request is not protect:
                return request
        # Only the protected request remains: it must be the victim of last
        # resort (its own growth cannot be satisfied).
        return candidates[0] if candidates else None


@dataclass
class RecomputeOldestFirst(EvictionPolicy):
    """Evict the oldest resident request first.

    Included as an ablation: it maximises wasted work and is strictly worse
    for MTPOT, which tests assert.
    """

    name: str = "recompute-oldest-first"

    def select_victim(self, batch: RunningBatch, protect: Request | None = None) -> Request | None:
        candidates = list(reversed(batch.by_recency()))
        for request in candidates:
            if request is not protect:
                return request
        return candidates[0] if candidates else None


@dataclass
class SwapEviction(RecomputeNewestFirst):
    """Swap-to-host eviction: same victim choice, cheaper re-admission.

    The re-admission cost models a PCIe copy instead of a full recompute: the
    engine charges only ``swap_fraction`` of the recompute tokens.
    """

    name: str = "swap-newest-first"
    swap_fraction: float = 0.25

    def recompute_cost_tokens(self, request: Request) -> int:
        return max(1, int(request.recompute_tokens * self.swap_fraction))

"""Engine-side request lifecycle.

A :class:`Request` wraps a :class:`~repro.workloads.spec.RequestSpec` with the
mutable state the engine and schedulers track: how many tokens have been
generated, when each token was delivered to the client (for TTFT/TPOT/MTPOT),
how often the request has been evicted, and which lifecycle state it is in.

Lifecycle::

    QUEUED --admit--> PREFILLING --prompt done--> DECODING --EOS/cap--> FINISHED
       ^                                      |
       +---------------- evict ---------------+

An evicted request loses its KV cache and returns to the waiting queue; on
re-admission its prompt *and* previously generated tokens must be recomputed
(the paper's "request re-queuing and recomputation"), but the tokens that were
already streamed to the client are not re-delivered — the client simply
observes a long inter-token gap, which is what breaks the MTPOT SLA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.workloads.spec import RequestSpec


class RequestState(enum.Enum):
    """Lifecycle states of a request inside the serving system."""

    QUEUED = "queued"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    FINISHED = "finished"
    #: killed before completion (replica crash / preemption deadline); the
    #: tokens already streamed stay recorded as the work lost with it.
    ABORTED = "aborted"


@dataclass
class Request:
    """Mutable serving-time state of one request."""

    spec: RequestSpec
    arrival_time: float
    state: RequestState = RequestState.QUEUED
    #: number of output tokens generated so far (across evictions).
    generated_tokens: int = 0
    #: prompt tokens whose KV has been computed in the current residency;
    #: relevant for chunked prefill and after eviction (recomputation).
    prefilled_tokens: int = 0
    #: wall-clock times at which each output token reached the client.
    token_times: list[float] = field(default_factory=list)
    #: times at which the request was admitted into the running batch.
    admission_times: list[float] = field(default_factory=list)
    #: number of times the request was evicted from the running batch.
    eviction_count: int = 0
    finish_time: float | None = None
    #: wall-clock time at which the request was aborted, if it ever was.
    abort_time: float | None = None

    def __post_init__(self) -> None:
        # The spec is immutable; snapshot the hot-path token count so the
        # per-iteration accounting does one attribute read instead of a
        # property chain through the spec.
        self._prompt_tokens = self.spec.prompt_tokens

    # ------------------------------------------------------------ identities
    @property
    def request_id(self) -> str:
        """Stable identifier (the spec's id)."""
        return self.spec.request_id

    # ------------------------------------------------------------ token math
    @property
    def prompt_tokens(self) -> int:
        """Prompt tokens including any image prefix."""
        return self._prompt_tokens

    @property
    def recompute_tokens(self) -> int:
        """Tokens that must be (re)computed at admission: prompt plus any
        previously generated tokens lost to an eviction."""
        return self._prompt_tokens + self.generated_tokens

    @property
    def current_context_tokens(self) -> int:
        """KV tokens the request holds once resident: prompt + generated."""
        return self._prompt_tokens + self.generated_tokens

    @property
    def remaining_true_tokens(self) -> int:
        """Tokens still to be generated according to the hidden true length."""
        return max(self.spec.output_length - self.generated_tokens, 0)

    @property
    def remaining_cap_tokens(self) -> int:
        """Tokens still allowed by ``max_new_tokens``."""
        return max(self.spec.max_new_tokens - self.generated_tokens, 0)

    @property
    def is_finished(self) -> bool:
        """Whether the request has completed generation."""
        return self.state is RequestState.FINISHED

    @property
    def is_running(self) -> bool:
        """Whether the request currently occupies the running batch."""
        return self.state in (RequestState.PREFILLING, RequestState.DECODING)

    @property
    def prefill_remaining(self) -> int:
        """Prompt/recompute tokens not yet processed in this residency."""
        return max(self.recompute_tokens - self.prefilled_tokens, 0)

    # ------------------------------------------------------------ transitions
    def admit(self, time: float) -> None:
        """Move the request from the queue into the running batch."""
        if self.state is not RequestState.QUEUED:
            raise ValueError(f"cannot admit request in state {self.state}")
        self.state = RequestState.PREFILLING
        self.prefilled_tokens = 0
        self.admission_times.append(time)

    def note_prefill(self, tokens: int) -> None:
        """Record ``tokens`` prompt tokens processed by (chunked) prefill."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        self.prefilled_tokens = min(self.prefilled_tokens + tokens, self.recompute_tokens)
        if self.prefill_remaining == 0 and self.state is RequestState.PREFILLING:
            self.state = RequestState.DECODING

    def deliver_token(self, time: float) -> None:
        """Record one generated token delivered to the client at ``time``."""
        if not self.is_running:
            raise ValueError(f"cannot deliver token in state {self.state}")
        self.generated_tokens += 1
        self.token_times.append(time)

    def deliver_tokens(self, times: list[float]) -> None:
        """Record one generated token per entry of ``times`` in one call.

        Bulk variant of :meth:`deliver_token` used by the engine's event-jump
        fast path; the caller guarantees none of these tokens triggers
        :attr:`should_stop` before the last one.
        """
        if not self.is_running:
            raise ValueError(f"cannot deliver tokens in state {self.state}")
        self.generated_tokens += len(times)
        self.token_times.extend(times)

    def evict(self) -> None:
        """Remove the request from the running batch, losing its KV cache."""
        if not self.is_running:
            raise ValueError(f"cannot evict request in state {self.state}")
        self.state = RequestState.QUEUED
        self.prefilled_tokens = 0
        self.eviction_count += 1

    def finish(self, time: float) -> None:
        """Mark the request complete."""
        if not self.is_running:
            raise ValueError(f"cannot finish request in state {self.state}")
        self.state = RequestState.FINISHED
        self.finish_time = time

    def abort(self, time: float) -> None:
        """Kill the request before completion (replica crash / preemption).

        Legal from any live state — queued, prefilling, or decoding — since a
        dying replica takes its whole queue and batch with it.  The token
        timeline is kept: ``generated_tokens`` after an abort is exactly the
        work lost with the request.
        """
        if self.state in (RequestState.FINISHED, RequestState.ABORTED):
            raise ValueError(f"cannot abort request in state {self.state}")
        self.state = RequestState.ABORTED
        self.abort_time = time

    @property
    def should_stop(self) -> bool:
        """Whether generation must stop (EOS reached or cap exhausted)."""
        return (
            self.generated_tokens >= self.spec.output_length
            or self.generated_tokens >= self.spec.max_new_tokens
        )

    # ------------------------------------------------------------ SLA metrics
    @property
    def first_token_time(self) -> float | None:
        """Wall-clock time of the first delivered token, if any."""
        return self.token_times[0] if self.token_times else None

    @property
    def ttft(self) -> float | None:
        """Time To First Token (seconds), if the first token was delivered."""
        first = self.first_token_time
        return None if first is None else first - self.arrival_time

    @property
    def tpots(self) -> list[float]:
        """Per-token inter-arrival gaps after the first token."""
        times = self.token_times
        return [later - earlier for earlier, later in zip(times, times[1:])]

    @property
    def max_tpot(self) -> float | None:
        """Maximum inter-token gap (MTPOT), if at least two tokens arrived."""
        gaps = self.tpots
        return max(gaps) if gaps else None

    @property
    def mean_tpot(self) -> float | None:
        """Mean inter-token gap, if at least two tokens arrived."""
        gaps = self.tpots
        return sum(gaps) / len(gaps) if gaps else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request({self.request_id}, state={self.state.value}, "
            f"gen={self.generated_tokens}/{self.spec.output_length})"
        )

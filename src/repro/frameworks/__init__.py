"""Comparator framework profiles (Figure 9 / Table 2)."""

from repro.frameworks.profiles import (
    DEEPSPEED_MII,
    FIGURE9_FRAMEWORKS,
    FRAMEWORK_REGISTRY,
    FrameworkProfile,
    LIGHTLLM,
    MULTIMODAL_ORIGIN,
    TENSORRT_LLM,
    TGI,
    VLLM,
    get_framework,
)

__all__ = [
    "DEEPSPEED_MII",
    "FIGURE9_FRAMEWORKS",
    "FRAMEWORK_REGISTRY",
    "FrameworkProfile",
    "LIGHTLLM",
    "MULTIMODAL_ORIGIN",
    "TENSORRT_LLM",
    "TGI",
    "VLLM",
    "get_framework",
]

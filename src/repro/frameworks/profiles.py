"""Comparator serving-framework profiles for the end-to-end comparison (Fig. 9).

The paper compares LightLLM (with the Past-Future scheduler) against four
frameworks that bundle a *scheduler policy* with an *inference backend*:

* **TGI** — conservative scheduler, solid kernels;
* **vLLM** — aggressive scheduler, PagedAttention kernels;
* **DeepSpeed-MII (FastGen)** — conservative scheduler with SplitFuse chunked
  prefill;
* **TensorRT-LLM** — conservative scheduler, the fastest static kernels.

The paper's own caveat is that the backend speeds are a December-2023
snapshot and that the comparison is meant to isolate the *scheduler* effect.
A profile therefore pairs a scheduler factory with a relative per-step speed
factor (LightLLM = 1.0; a smaller factor means faster kernels) and optional
chunked-prefill behaviour.  Multimodal "original implementation" baselines
(Table 2) are modelled as static-batching style conservative serving with a
slower backend, reflecting the HuggingFace reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.past_future import PastFutureScheduler
from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.conservative import ConservativeScheduler

SchedulerFactory = Callable[[], Scheduler]


@dataclass(frozen=True)
class FrameworkProfile:
    """A named serving framework: scheduler policy + backend characteristics."""

    name: str
    scheduler_factory: SchedulerFactory
    #: per-step latency multiplier relative to the LightLLM backend (1.0);
    #: < 1.0 means a faster backend, > 1.0 a slower one.
    speed_factor: float = 1.0
    #: maximum prompt tokens processed per engine iteration.  Every framework
    #: bounds the tokens of one forward pass (vLLM's ``max_num_batched_tokens``,
    #: TGI's ``max_batch_prefill_tokens``); DeepSpeed-MII's SplitFuse uses a
    #: much finer chunk to interleave prefill with decode.  ``None`` means the
    #: whole admission burst is prefilled in a single iteration.
    chunked_prefill_tokens: int | None = None
    #: hard cap on concurrently running requests, if the framework has one.
    max_running_requests: int | None = None

    def build_scheduler(self) -> Scheduler:
        """Instantiate a fresh scheduler for one run."""
        scheduler = self.scheduler_factory()
        if self.max_running_requests is not None:
            scheduler.max_running_requests = self.max_running_requests
        return scheduler


LIGHTLLM = FrameworkProfile(
    name="LightLLM",
    scheduler_factory=lambda: PastFutureScheduler(reserved_fraction=0.03),
    speed_factor=1.0,
    chunked_prefill_tokens=8192,
)

VLLM = FrameworkProfile(
    name="vLLM",
    scheduler_factory=lambda: AggressiveScheduler(watermark=0.99),
    speed_factor=1.0,
    chunked_prefill_tokens=8192,
)

TGI = FrameworkProfile(
    name="TGI",
    scheduler_factory=lambda: ConservativeScheduler(overcommit=1.0),
    speed_factor=1.1,
    chunked_prefill_tokens=8192,
)

DEEPSPEED_MII = FrameworkProfile(
    name="DeepSpeed-MII",
    scheduler_factory=lambda: ConservativeScheduler(overcommit=1.0),
    speed_factor=1.05,
    chunked_prefill_tokens=512,
)

TENSORRT_LLM = FrameworkProfile(
    name="TensorRT-LLM",
    scheduler_factory=lambda: ConservativeScheduler(overcommit=1.0),
    speed_factor=0.9,
    chunked_prefill_tokens=8192,
)

#: "Original implementation" baseline used for the multimodal comparison in
#: Table 2: HuggingFace-style serving with conservative admission, a small
#: static batch, and a slower backend.
MULTIMODAL_ORIGIN = FrameworkProfile(
    name="Origin",
    scheduler_factory=lambda: ConservativeScheduler(overcommit=1.0),
    speed_factor=1.6,
    max_running_requests=8,
)

FRAMEWORK_REGISTRY: dict[str, FrameworkProfile] = {
    profile.name: profile
    for profile in (LIGHTLLM, VLLM, TGI, DEEPSPEED_MII, TENSORRT_LLM, MULTIMODAL_ORIGIN)
}

#: The frameworks compared in Figure 9, in the paper's plotting order.
FIGURE9_FRAMEWORKS: tuple[str, ...] = (
    "TGI",
    "vLLM",
    "DeepSpeed-MII",
    "TensorRT-LLM",
    "LightLLM",
)


def get_framework(name: str) -> FrameworkProfile:
    """Look up a framework profile by name.

    Raises:
        KeyError: if the framework is unknown.
    """
    try:
        return FRAMEWORK_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(FRAMEWORK_REGISTRY))
        raise KeyError(f"unknown framework {name!r}; known: {known}") from None

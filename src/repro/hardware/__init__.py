"""Hardware substrate: model and GPU descriptors and deployment platforms."""

from repro.hardware.gpus import (
    A30,
    A100_80G,
    GPU_REGISTRY,
    GPUConfig,
    H800,
    RTX_4090,
    get_gpu,
)
from repro.hardware.models import (
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAVA_15_7B,
    LLAVA_15_13B,
    MODEL_REGISTRY,
    ModelConfig,
    QWEN_VL_CHAT,
    get_model,
)
from repro.hardware.platform import (
    PAPER_PLATFORMS,
    Platform,
    PlatformError,
    make_platform,
    paper_platform,
)

__all__ = [
    "A30",
    "A100_80G",
    "GPU_REGISTRY",
    "GPUConfig",
    "H800",
    "RTX_4090",
    "get_gpu",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAVA_15_7B",
    "LLAVA_15_13B",
    "MODEL_REGISTRY",
    "ModelConfig",
    "QWEN_VL_CHAT",
    "get_model",
    "PAPER_PLATFORMS",
    "Platform",
    "PlatformError",
    "make_platform",
    "paper_platform",
]

"""GPU descriptors for the hardware platforms used in the paper's evaluation.

The paper reports results on NVIDIA A100-80G, H800, RTX 4090 and A30 devices.
The simulator only needs three numbers per device: memory capacity (bounds the
KV-cache pool), dense FP16 throughput (bounds prefill) and memory bandwidth
(bounds decode, which is memory-bound).  ``nvlink`` marks devices with a fast
interconnect, which lowers the tensor-parallel communication penalty.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUConfig:
    """Static description of one GPU device."""

    name: str
    memory_bytes: float
    fp16_tflops: float
    bandwidth_gbps: float
    nvlink: bool = False
    #: fraction of device memory usable for weights + KV cache (the remainder
    #: is activation workspace, CUDA context, fragmentation headroom).
    usable_fraction: float = 0.9

    @property
    def usable_memory_bytes(self) -> float:
        """Bytes available for model weights plus the KV-cache pool."""
        return self.memory_bytes * self.usable_fraction

    @property
    def flops_per_second(self) -> float:
        """Peak dense FP16 FLOP/s."""
        return self.fp16_tflops * 1e12

    @property
    def bytes_per_second(self) -> float:
        """Peak memory bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9


_GB = 1024 ** 3

A100_80G = GPUConfig(
    name="A100-80G",
    memory_bytes=80 * _GB,
    fp16_tflops=312.0,
    bandwidth_gbps=2039.0,
    nvlink=True,
)

H800 = GPUConfig(
    name="H800",
    memory_bytes=80 * _GB,
    fp16_tflops=756.0,
    bandwidth_gbps=3350.0,
    nvlink=True,
)

RTX_4090 = GPUConfig(
    name="RTX-4090",
    memory_bytes=24 * _GB,
    fp16_tflops=165.0,
    bandwidth_gbps=1008.0,
    nvlink=False,
)

A30 = GPUConfig(
    name="A30",
    memory_bytes=24 * _GB,
    fp16_tflops=165.0,
    bandwidth_gbps=933.0,
    nvlink=False,
)

GPU_REGISTRY: dict[str, GPUConfig] = {
    g.name: g for g in (A100_80G, H800, RTX_4090, A30)
}


def get_gpu(name: str) -> GPUConfig:
    """Look up a GPU by name.

    Raises:
        KeyError: if the GPU is unknown.
    """
    try:
        return GPU_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known GPUs: {known}") from None

"""Model descriptors for the LLMs evaluated in the paper.

The paper evaluates Llama-2 Chat models at 7B, 13B and 70B scale plus two
multimodal models (Qwen-VL-Chat and LLaVA-1.5).  The scheduler itself never
looks at model weights; all it needs from a model is

* how many bytes of KV cache one token occupies (which, together with the GPU
  memory budget, determines the token capacity of the KV-cache pool), and
* how much compute / memory traffic one prefill or decode step costs (consumed
  by :mod:`repro.engine.cost_model`).

Both are derivable from the architectural parameters below.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Architectural description of a served LLM.

    Parameters mirror the HuggingFace config fields of the corresponding
    open-source checkpoints.  ``num_key_value_heads`` differs from
    ``num_attention_heads`` for models using grouped-query attention
    (Llama-2-70B).
    """

    name: str
    num_parameters: float
    num_layers: int
    hidden_size: int
    num_attention_heads: int
    num_key_value_heads: int
    intermediate_size: int
    vocab_size: int = 32000
    dtype_bytes: int = 2
    #: extra tokens prepended to every request (e.g. image patch tokens for
    #: multimodal models); 0 for text-only models.
    vision_prefix_tokens: int = 0
    #: wall-clock cost (seconds) of the vision encoder per request, if any.
    vision_encoder_seconds: float = 0.0

    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.hidden_size // self.num_attention_heads

    @property
    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache one token occupies across all layers.

        Per layer a token stores a key and a value vector of
        ``num_key_value_heads * head_dim`` elements each.
        """
        per_layer = 2 * self.num_key_value_heads * self.head_dim * self.dtype_bytes
        return per_layer * self.num_layers

    @property
    def weight_bytes(self) -> int:
        """Approximate bytes occupied by the model weights."""
        return int(self.num_parameters * self.dtype_bytes)

    @property
    def flops_per_token(self) -> float:
        """Approximate forward FLOPs for one token (2 * parameters)."""
        return 2.0 * self.num_parameters

    @property
    def is_multimodal(self) -> bool:
        """Whether requests carry an image prefix."""
        return self.vision_prefix_tokens > 0


def _llama2(name: str, params: float, layers: int, hidden: int, heads: int,
            kv_heads: int, inter: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        num_parameters=params,
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        num_key_value_heads=kv_heads,
        intermediate_size=inter,
    )


LLAMA2_7B = _llama2("Llama-2-7B-Chat", 6.74e9, 32, 4096, 32, 32, 11008)
LLAMA2_13B = _llama2("Llama-2-13B-Chat", 13.0e9, 40, 5120, 40, 40, 13824)
LLAMA2_70B = _llama2("Llama-2-70B-Chat", 68.9e9, 80, 8192, 64, 8, 28672)

#: Qwen-VL-Chat: ~9.6B parameters, 256 image tokens after the visual adapter.
QWEN_VL_CHAT = ModelConfig(
    name="Qwen-VL-Chat",
    num_parameters=9.6e9,
    num_layers=32,
    hidden_size=4096,
    num_attention_heads=32,
    num_key_value_heads=32,
    intermediate_size=11008,
    vocab_size=151936,
    vision_prefix_tokens=256,
    vision_encoder_seconds=0.020,
)

#: LLaVA-1.5-7B: Llama-2-7B language tower + CLIP ViT-L/14-336 (576 patches).
LLAVA_15_7B = ModelConfig(
    name="LLaVA-1.5-7B",
    num_parameters=7.0e9,
    num_layers=32,
    hidden_size=4096,
    num_attention_heads=32,
    num_key_value_heads=32,
    intermediate_size=11008,
    vision_prefix_tokens=576,
    vision_encoder_seconds=0.015,
)

#: LLaVA-1.5-13B: Llama-2-13B language tower + the same vision tower.
LLAVA_15_13B = ModelConfig(
    name="LLaVA-1.5-13B",
    num_parameters=13.0e9,
    num_layers=40,
    hidden_size=5120,
    num_attention_heads=40,
    num_key_value_heads=40,
    intermediate_size=13824,
    vision_prefix_tokens=576,
    vision_encoder_seconds=0.015,
)

MODEL_REGISTRY: dict[str, ModelConfig] = {
    m.name: m
    for m in (LLAMA2_7B, LLAMA2_13B, LLAMA2_70B, QWEN_VL_CHAT, LLAVA_15_7B, LLAVA_15_13B)
}


def get_model(name: str) -> ModelConfig:
    """Look up a model by name.

    Raises:
        KeyError: if the model is unknown.
    """
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None

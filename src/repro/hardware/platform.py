"""Platform = model x GPU x tensor-parallel degree.

A :class:`Platform` resolves the one number every scheduler in this repository
cares about — the **KV-cache token capacity** — and carries the model/GPU pair
down to the cost model.

The capacity computation follows how real serving frameworks size their KV
pools: take the usable device memory across the tensor-parallel group,
subtract the (sharded) model weights, and divide what is left by the per-token
KV footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hardware.gpus import GPUConfig, get_gpu
from repro.hardware.models import ModelConfig, get_model


class PlatformError(ValueError):
    """Raised when a model does not fit on the requested device group."""


@dataclass(frozen=True)
class Platform:
    """A deployable (model, GPU, tensor-parallel) combination."""

    model: ModelConfig
    gpu: GPUConfig
    tensor_parallel: int = 1
    #: multiplicative penalty on per-step latency from TP communication.  The
    #: penalty is smaller on NVLink-connected devices.
    _tp_overhead_nvlink: float = field(default=0.08, repr=False)
    _tp_overhead_pcie: float = field(default=0.20, repr=False)

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1:
            raise PlatformError("tensor_parallel must be >= 1")
        if self.kv_pool_bytes <= 0:
            raise PlatformError(
                f"{self.model.name} does not fit on {self.tensor_parallel}x {self.gpu.name}"
            )

    @property
    def total_usable_bytes(self) -> float:
        """Usable memory summed across the tensor-parallel group."""
        return self.gpu.usable_memory_bytes * self.tensor_parallel

    @property
    def kv_pool_bytes(self) -> float:
        """Bytes left for the KV-cache pool after loading the model weights."""
        return self.total_usable_bytes - self.model.weight_bytes

    @property
    def token_capacity(self) -> int:
        """Number of KV-cache token slots the platform can hold."""
        return int(self.kv_pool_bytes // self.model.kv_bytes_per_token)

    @property
    def tp_overhead(self) -> float:
        """Fractional latency overhead added by tensor-parallel communication."""
        if self.tensor_parallel == 1:
            return 0.0
        factor = self._tp_overhead_nvlink if self.gpu.nvlink else self._tp_overhead_pcie
        return factor

    @property
    def aggregate_flops(self) -> float:
        """Aggregate FLOP/s across the group, discounted by TP overhead."""
        return self.gpu.flops_per_second * self.tensor_parallel / (1.0 + self.tp_overhead)

    @property
    def aggregate_bandwidth(self) -> float:
        """Aggregate memory bandwidth across the group, discounted by TP overhead."""
        return self.gpu.bytes_per_second * self.tensor_parallel / (1.0 + self.tp_overhead)

    def describe(self) -> str:
        """Human-readable one-line description."""
        tp = f" x {self.tensor_parallel}" if self.tensor_parallel > 1 else ""
        return (
            f"{self.model.name} on {self.gpu.name}{tp}: "
            f"{self.token_capacity:,} KV token slots"
        )


def make_platform(model_name: str, gpu_name: str, tensor_parallel: int = 1) -> Platform:
    """Build a platform from registry names."""
    return Platform(
        model=get_model(model_name),
        gpu=get_gpu(gpu_name),
        tensor_parallel=tensor_parallel,
    )


#: Platforms used throughout the paper's evaluation section.
PAPER_PLATFORMS: dict[str, tuple[str, str, int]] = {
    "7b-a100": ("Llama-2-7B-Chat", "A100-80G", 1),
    "13b-a100": ("Llama-2-13B-Chat", "A100-80G", 1),
    "70b-a100x4": ("Llama-2-70B-Chat", "A100-80G", 4),
    "7b-h800": ("Llama-2-7B-Chat", "H800", 1),
    "13b-h800": ("Llama-2-13B-Chat", "H800", 1),
    "70b-h800x4": ("Llama-2-70B-Chat", "H800", 4),
    "7b-4090": ("Llama-2-7B-Chat", "RTX-4090", 1),
    "13b-4090x2": ("Llama-2-13B-Chat", "RTX-4090", 2),
    "70b-4090x8": ("Llama-2-70B-Chat", "RTX-4090", 8),
    "7b-a30": ("Llama-2-7B-Chat", "A30", 1),
    "13b-a30x2": ("Llama-2-13B-Chat", "A30", 2),
    "70b-a30x8": ("Llama-2-70B-Chat", "A30", 8),
}


def paper_platform(key: str) -> Platform:
    """Return one of the named paper evaluation platforms (e.g. ``"7b-a100"``)."""
    try:
        model_name, gpu_name, tp = PAPER_PLATFORMS[key]
    except KeyError:
        known = ", ".join(sorted(PAPER_PLATFORMS))
        raise KeyError(f"unknown platform key {key!r}; known: {known}") from None
    return make_platform(model_name, gpu_name, tp)


def ensure_single_model(platforms: "Sequence[Platform]") -> None:
    """Validate that every platform of a fleet serves the same model.

    Replicas are interchangeable backends of one service, so a fleet may mix
    GPU generations but never models.

    Raises:
        PlatformError: naming the offending models otherwise.
    """
    models = {platform.model.name for platform in platforms}
    if len(models) > 1:
        raise PlatformError(f"a fleet must serve one model, got {sorted(models)}")


def paper_platforms(*keys: str) -> list[Platform]:
    """Resolve several platform keys at once, preserving order.

    Convenience for heterogeneous fleets — real clusters mix accelerator
    generations, and :class:`~repro.serving.cluster.ClusterSimulator` accepts
    the resulting list directly::

        ClusterSimulator(platforms=paper_platforms("7b-a100", "7b-a100", "7b-4090"), ...)

    Every platform in one fleet must serve the same model (see
    :func:`ensure_single_model`); mixing models raises.
    """
    if not keys:
        raise ValueError("at least one platform key is required")
    platforms = [paper_platform(key) for key in keys]
    ensure_single_model(platforms)
    return platforms

"""KV-cache memory substrate: paged pool, contiguous baseline, accounting."""

from repro.memory.block_manager import (
    AllocationError,
    BlockKVCachePool,
    BlockTable,
    OutOfMemoryError,
)
from repro.memory.contiguous import ContiguousKVCachePool, Extent
from repro.memory.pool_stats import MemorySample, MemoryTimeline

__all__ = [
    "AllocationError",
    "BlockKVCachePool",
    "BlockTable",
    "OutOfMemoryError",
    "ContiguousKVCachePool",
    "Extent",
    "MemorySample",
    "MemoryTimeline",
]

"""KV-cache memory substrate: paged pool, contiguous baseline, accounting."""

from repro.memory.block_manager import (
    AllocationError,
    BlockKVCachePool,
    BlockTable,
    OutOfMemoryError,
)
from repro.memory.contiguous import ContiguousKVCachePool, Extent
from repro.memory.pool_stats import MemorySample, MemoryTimeline
from repro.memory.prefix_cache import PrefixCache, PrefixCacheStats, PrefixEntry

__all__ = [
    "AllocationError",
    "BlockKVCachePool",
    "BlockTable",
    "OutOfMemoryError",
    "PrefixCache",
    "PrefixCacheStats",
    "PrefixEntry",
    "ContiguousKVCachePool",
    "Extent",
    "MemorySample",
    "MemoryTimeline",
]

"""Paged (block) KV-cache pool, in the spirit of vLLM's PagedAttention manager.

The pool owns a fixed number of fixed-size blocks.  Each running request holds
an ordered block table; the last block may be partially filled.  The engine
asks the pool to

* allocate the prompt KV of a request at prefill time (``allocate``),
* grow a request by one token per decode step (``append_token``), and
* release everything a request holds when it finishes or is evicted
  (``free``).

The block abstraction matters for the reproduction because the *aggressive*
scheduler reasons in terms of free blocks/watermarks (as vLLM does) while the
Past-Future scheduler reasons in terms of token counts; both views are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation does not fit in the pool."""


class AllocationError(ValueError):
    """Raised on invalid allocation requests (double alloc, unknown request...)."""


@dataclass
class BlockTable:
    """Block table of one request: ordered block ids plus token occupancy."""

    request_id: str
    block_ids: list[int] = field(default_factory=list)
    num_tokens: int = 0


class BlockKVCachePool:
    """Fixed-capacity paged KV-cache pool.

    Args:
        token_capacity: total number of token slots the pool can hold.
        block_size: tokens per block.  The effective capacity in blocks is
            ``token_capacity // block_size``; a ``token_capacity`` that is not
            a multiple of ``block_size`` is rounded down.
    """

    def __init__(self, token_capacity: int, block_size: int = 1) -> None:
        if token_capacity <= 0:
            raise ValueError("token_capacity must be positive")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size
        self._num_blocks = token_capacity // block_size
        if self._num_blocks == 0:
            raise ValueError("token_capacity smaller than one block")
        self._free_blocks: list[int] = list(range(self._num_blocks - 1, -1, -1))
        self._tables: dict[str, BlockTable] = {}
        # Pinned allocations hold blocks but never grow: cached session
        # prefixes (repro.memory.prefix_cache) park here between turns.  The
        # bulk decode operations below skip them, so a pinned table exerts
        # pool pressure without participating in uniform growth.
        self._pinned: set[str] = set()
        self._peak_tokens_used = 0
        # Incremental occupancy counter: kept in sync by every allocate /
        # append / free so `used_tokens` (queried once per decode token by the
        # engine's accounting) is O(1) instead of a full sum over all tables.
        self._used_tokens = 0

    # ------------------------------------------------------------------ sizes
    @property
    def block_size(self) -> int:
        """Tokens per block."""
        return self._block_size

    @property
    def num_blocks(self) -> int:
        """Total number of blocks in the pool."""
        return self._num_blocks

    @property
    def token_capacity(self) -> int:
        """Total token slots (``num_blocks * block_size``)."""
        return self._num_blocks * self._block_size

    @property
    def free_blocks(self) -> int:
        """Number of currently unallocated blocks."""
        return len(self._free_blocks)

    @property
    def used_blocks(self) -> int:
        """Number of currently allocated blocks."""
        return self._num_blocks - len(self._free_blocks)

    @property
    def used_tokens(self) -> int:
        """Total tokens currently stored across all requests (O(1))."""
        return self._used_tokens

    @property
    def free_tokens(self) -> int:
        """Token slots still available, counting partially filled blocks.

        Equals ``free_blocks * block_size`` plus the slack of every partial
        block, which algebraically reduces to ``token_capacity - used_tokens``.
        """
        return self.token_capacity - self._used_tokens

    @property
    def utilization(self) -> float:
        """Fraction of token capacity currently in use (O(1))."""
        return self._used_tokens / self.token_capacity

    @property
    def peak_tokens_used(self) -> int:
        """High-water mark of :attr:`used_tokens` over the pool's lifetime."""
        return self._peak_tokens_used

    def _slack(self, table: BlockTable) -> int:
        """Unused token slots in the request's last (partial) block."""
        allocated = len(table.block_ids) * self._block_size
        return allocated - table.num_tokens

    # ------------------------------------------------------------- allocation
    def holds(self, request_id: str) -> bool:
        """Whether the request currently owns any blocks."""
        return request_id in self._tables

    def tokens_of(self, request_id: str) -> int:
        """Tokens stored for a request (0 if it holds nothing)."""
        table = self._tables.get(request_id)
        return table.num_tokens if table else 0

    def blocks_needed(self, num_tokens: int) -> int:
        """Blocks needed to store ``num_tokens`` fresh tokens."""
        return -(-num_tokens // self._block_size)

    def can_allocate(self, num_tokens: int) -> bool:
        """Whether a fresh allocation of ``num_tokens`` would succeed."""
        return self.blocks_needed(num_tokens) <= len(self._free_blocks)

    def allocate(self, request_id: str, num_tokens: int) -> BlockTable:
        """Allocate the initial (prompt) KV of a request.

        Raises:
            AllocationError: if the request already holds blocks or
                ``num_tokens`` is not positive.
            OutOfMemoryError: if the pool does not have enough free blocks.
        """
        if num_tokens <= 0:
            raise AllocationError("num_tokens must be positive")
        if request_id in self._tables:
            raise AllocationError(f"request {request_id!r} already allocated")
        needed = self.blocks_needed(num_tokens)
        if needed > len(self._free_blocks):
            raise OutOfMemoryError(
                f"need {needed} blocks for {num_tokens} tokens, "
                f"only {len(self._free_blocks)} free"
            )
        block_ids = [self._free_blocks.pop() for _ in range(needed)]
        table = BlockTable(request_id=request_id, block_ids=block_ids, num_tokens=num_tokens)
        self._tables[request_id] = table
        self._used_tokens += num_tokens
        self._note_usage()
        return table

    def can_append_token(self, request_id: str) -> bool:
        """Whether the request can grow by one token without a new block, or
        a free block exists for it."""
        table = self._tables.get(request_id)
        if table is None:
            return False
        if self._slack(table) > 0:
            return True
        return len(self._free_blocks) > 0

    def append_token(self, request_id: str) -> None:
        """Grow a request by one generated token.

        Raises:
            AllocationError: if the request holds no blocks.
            OutOfMemoryError: if a new block is required but none is free.
        """
        table = self._tables.get(request_id)
        if table is None:
            raise AllocationError(f"request {request_id!r} has no allocation")
        if self._slack(table) == 0:
            if not self._free_blocks:
                raise OutOfMemoryError(
                    f"no free block to extend request {request_id!r}"
                )
            table.block_ids.append(self._free_blocks.pop())
        table.num_tokens += 1
        self._used_tokens += 1
        self._note_usage()

    def append_tokens(self, request_id: str, num_tokens: int) -> None:
        """Grow a request by ``num_tokens`` generated tokens in one call.

        Equivalent to ``num_tokens`` successive :meth:`append_token` calls
        (same block acquisition order from the free list), but O(blocks)
        instead of O(tokens) — the bulk path used by the engine's event-jump
        fast forward.

        Raises:
            AllocationError: if the request holds no blocks or ``num_tokens``
                is not positive.
            OutOfMemoryError: if more free blocks are required than exist (no
                partial growth is performed).
        """
        if num_tokens <= 0:
            raise AllocationError("num_tokens must be positive")
        table = self._tables.get(request_id)
        if table is None:
            raise AllocationError(f"request {request_id!r} has no allocation")
        needed = self.blocks_needed(table.num_tokens + num_tokens) - len(table.block_ids)
        if needed > len(self._free_blocks):
            raise OutOfMemoryError(
                f"need {needed} blocks to grow request {request_id!r} by "
                f"{num_tokens} tokens, only {len(self._free_blocks)} free"
            )
        if needed > 0:
            # Identical block ids, in the same order, as sequential pop()s.
            grabbed = self._free_blocks[-needed:]
            grabbed.reverse()
            del self._free_blocks[-needed:]
            table.block_ids.extend(grabbed)
        table.num_tokens += num_tokens
        self._used_tokens += num_tokens
        self._note_usage()

    def _growing_tables(self) -> list[BlockTable]:
        """Tables that participate in bulk decode growth (unpinned)."""
        if not self._pinned:
            return list(self._tables.values())
        return [t for rid, t in self._tables.items() if rid not in self._pinned]

    def can_grow_each_by_one(self) -> bool:
        """Whether every resident (unpinned) request can grow by one token."""
        if self._block_size == 1 and not self._pinned:
            return len(self._free_blocks) >= len(self._tables)
        bs = self._block_size
        tables = self._growing_tables()
        if bs == 1:
            return len(self._free_blocks) >= len(tables)
        full = sum(1 for t in tables if len(t.block_ids) * bs == t.num_tokens)
        return full <= len(self._free_blocks)

    def append_token_to_all(self) -> None:
        """Grow every resident (unpinned) request by one token (bulk decode).

        Equivalent to one :meth:`append_token` per growing request; callers
        should establish :meth:`can_grow_each_by_one` first.  Pinned tables
        (cached prefixes) are untouched.

        Raises:
            OutOfMemoryError: if some request needs a new block and none is
                free (no partial growth is performed).
        """
        bs = self._block_size
        tables = self._tables.values() if not self._pinned else self._growing_tables()
        num_growing = len(tables)
        if bs == 1:
            # Every table fills a block per token; all need one.
            needing: list[BlockTable] | object = tables
            num_needing = num_growing
        else:
            needing = [t for t in tables if len(t.block_ids) * bs == t.num_tokens]
            num_needing = len(needing)
        if num_needing > len(self._free_blocks):
            raise OutOfMemoryError(
                f"{num_needing} requests need a new block, "
                f"only {len(self._free_blocks)} free"
            )
        free_pop = self._free_blocks.pop
        for table in needing:
            table.block_ids.append(free_pop())
        for table in tables:
            table.num_tokens += 1
        self._used_tokens += num_growing
        self._note_usage()

    def max_uniform_growth(self, cap: int | None = None) -> int:
        """Largest ``K`` such that *every* resident request can grow by ``K``
        tokens without exhausting the pool, regardless of interleaving.

        Used by the event-jump planner to prove that ``K`` macro-advanced
        decode iterations cannot trigger an eviction.  Returns ``cap`` when
        no request is resident (unbounded growth), and ``0`` when even one
        more token per request may not fit.  Pinned tables do not grow; they
        only shrink the free list the growing requests draw from.
        """
        tables = (
            list(self._tables.values()) if not self._pinned else self._growing_tables()
        )
        n = len(tables)
        if n == 0:
            return cap if cap is not None else self.token_capacity
        bs = self._block_size
        free = len(self._free_blocks)
        if bs == 1:
            # No partial-block slack can exist: each request needs exactly one
            # fresh block per token.
            best = free // n
            return best if cap is None else min(best, cap)
        slacks = np.fromiter(
            (len(t.block_ids) * bs - t.num_tokens for t in tables),
            dtype=np.int64,
            count=n,
        )
        min_slack = int(slacks.min())

        def fits(k: int) -> bool:
            needed = (np.maximum(k - slacks, 0) + bs - 1) // bs
            return int(needed.sum()) <= free

        # K <= min_slack needs no new block at all; beyond min_slack + free*bs
        # the tightest request alone outgrows the free list.
        hi = min_slack + free * bs
        if cap is not None:
            hi = min(hi, cap)
        if hi <= min_slack:
            return max(hi, 0)
        if fits(hi):
            return hi
        lo = max(min_slack, 0)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if fits(mid):
                lo = mid
            else:
                hi = mid
        return lo

    def can_extend(self, request_id: str, num_tokens: int) -> bool:
        """Whether :meth:`append_tokens` of ``num_tokens`` would succeed.

        Accounts for the slack in the request's last partial block, so it is
        the correct pre-check for growing an *existing* allocation (unlike
        :meth:`can_allocate`, which prices a fresh one).
        """
        table = self._tables.get(request_id)
        if table is None or num_tokens <= 0:
            return False
        needed = self.blocks_needed(table.num_tokens + num_tokens) - len(table.block_ids)
        return needed <= len(self._free_blocks)

    # ---------------------------------------------------------------- pinning
    def pin(self, request_id: str) -> None:
        """Exclude a table from bulk decode growth (cached-prefix parking).

        Raises:
            AllocationError: if the request holds nothing.
        """
        if request_id not in self._tables:
            raise AllocationError(f"request {request_id!r} has no allocation")
        self._pinned.add(request_id)

    def unpin(self, request_id: str) -> None:
        """Re-include a table in bulk decode growth (no-op if not pinned)."""
        self._pinned.discard(request_id)

    def is_pinned(self, request_id: str) -> bool:
        """Whether the table is currently pinned."""
        return request_id in self._pinned

    @property
    def pinned_tokens(self) -> int:
        """Tokens held by pinned tables (cached prefixes)."""
        if not self._pinned:
            return 0
        return sum(self._tables[rid].num_tokens for rid in self._pinned)

    def rename(self, old_id: str, new_id: str) -> BlockTable:
        """Transfer an allocation to a new owner id, keeping its blocks.

        The handoff primitive behind prefix reuse: a finished turn's blocks
        move under a cache key without touching the free list, and back under
        the follow-up request's id on a hit.  Pinned status travels with the
        table.

        Raises:
            AllocationError: if ``old_id`` holds nothing or ``new_id``
                already holds an allocation.
        """
        table = self._tables.get(old_id)
        if table is None:
            raise AllocationError(f"request {old_id!r} has no allocation")
        if new_id in self._tables:
            raise AllocationError(f"request {new_id!r} already allocated")
        del self._tables[old_id]
        table.request_id = new_id
        self._tables[new_id] = table
        if old_id in self._pinned:
            self._pinned.discard(old_id)
            self._pinned.add(new_id)
        return table

    def free(self, request_id: str) -> int:
        """Release all blocks of a request, returning the number released.

        Freeing a request that holds nothing is a no-op returning 0, so the
        engine can call it unconditionally on finish/evict paths.
        """
        table = self._tables.pop(request_id, None)
        if table is None:
            return 0
        self._pinned.discard(request_id)
        self._free_blocks.extend(reversed(table.block_ids))
        self._used_tokens -= table.num_tokens
        return len(table.block_ids)

    def reset(self) -> None:
        """Release every allocation and clear the high-water mark."""
        self._tables.clear()
        self._pinned.clear()
        self._free_blocks = list(range(self._num_blocks - 1, -1, -1))
        self._peak_tokens_used = 0
        self._used_tokens = 0

    def _note_usage(self) -> None:
        if self._used_tokens > self._peak_tokens_used:
            self._peak_tokens_used = self._used_tokens

    # ------------------------------------------------------------- inspection
    def block_table(self, request_id: str) -> BlockTable:
        """Return the block table of a request.

        Raises:
            AllocationError: if the request holds nothing.
        """
        table = self._tables.get(request_id)
        if table is None:
            raise AllocationError(f"request {request_id!r} has no allocation")
        return table

    def owners(self) -> list[str]:
        """Request ids that currently hold blocks."""
        return list(self._tables)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockKVCachePool(blocks={self.used_blocks}/{self._num_blocks}, "
            f"tokens={self.used_tokens}/{self.token_capacity})"
        )

"""Contiguous KV-cache allocator (FasterTransformer / ORCA style baseline).

Before PagedAttention, serving frameworks reserved one *contiguous* region per
request, sized for the worst case (prompt + ``max_new_tokens``).  That design
suffers from external fragmentation: the pool can hold enough free tokens in
total yet fail an allocation because no single free extent is large enough.

This allocator exists as a substrate baseline so that tests and ablation
benches can quantify the fragmentation the paged pool removes.  It implements
first-fit allocation over a single address space of token slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.block_manager import AllocationError, OutOfMemoryError


@dataclass
class Extent:
    """A contiguous run of token slots owned by one request."""

    request_id: str
    start: int
    length: int
    used_tokens: int

    @property
    def end(self) -> int:
        """One past the last slot of the extent."""
        return self.start + self.length


class ContiguousKVCachePool:
    """First-fit contiguous allocator over ``token_capacity`` slots."""

    def __init__(self, token_capacity: int) -> None:
        if token_capacity <= 0:
            raise ValueError("token_capacity must be positive")
        self._capacity = token_capacity
        self._extents: dict[str, Extent] = {}

    @property
    def token_capacity(self) -> int:
        """Total token slots in the pool."""
        return self._capacity

    @property
    def reserved_tokens(self) -> int:
        """Slots reserved by live extents (regardless of how many are used)."""
        return sum(e.length for e in self._extents.values())

    @property
    def used_tokens(self) -> int:
        """Tokens actually written into reserved extents."""
        return sum(e.used_tokens for e in self._extents.values())

    @property
    def free_tokens(self) -> int:
        """Slots not reserved by any extent."""
        return self._capacity - self.reserved_tokens

    def _sorted_extents(self) -> list[Extent]:
        return sorted(self._extents.values(), key=lambda e: e.start)

    def _gaps(self) -> list[tuple[int, int]]:
        """Free gaps as (start, length) pairs, in address order."""
        gaps: list[tuple[int, int]] = []
        cursor = 0
        for extent in self._sorted_extents():
            if extent.start > cursor:
                gaps.append((cursor, extent.start - cursor))
            cursor = max(cursor, extent.end)
        if cursor < self._capacity:
            gaps.append((cursor, self._capacity - cursor))
        return gaps

    @property
    def largest_free_extent(self) -> int:
        """Length of the largest free gap."""
        gaps = self._gaps()
        return max((length for _, length in gaps), default=0)

    @property
    def external_fragmentation(self) -> float:
        """1 - (largest free gap / total free slots); 0 when unfragmented."""
        free = self.free_tokens
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / free

    def can_reserve(self, num_tokens: int) -> bool:
        """Whether a contiguous reservation of ``num_tokens`` slots would fit."""
        return self.largest_free_extent >= num_tokens

    def reserve(self, request_id: str, num_tokens: int, used_tokens: int = 0) -> Extent:
        """Reserve a contiguous run of ``num_tokens`` slots (first fit).

        Args:
            request_id: owner of the extent.
            num_tokens: size of the reservation (typically prompt +
                ``max_new_tokens``).
            used_tokens: tokens already occupied (typically the prompt length).

        Raises:
            AllocationError: on duplicate owners or invalid sizes.
            OutOfMemoryError: if no gap is large enough (possibly due to
                fragmentation even when total free space would suffice).
        """
        if num_tokens <= 0:
            raise AllocationError("num_tokens must be positive")
        if used_tokens < 0 or used_tokens > num_tokens:
            raise AllocationError("used_tokens must be within the reservation")
        if request_id in self._extents:
            raise AllocationError(f"request {request_id!r} already reserved")
        for start, length in self._gaps():
            if length >= num_tokens:
                extent = Extent(request_id, start, num_tokens, used_tokens)
                self._extents[request_id] = extent
                return extent
        raise OutOfMemoryError(
            f"no contiguous gap of {num_tokens} slots "
            f"(free={self.free_tokens}, largest={self.largest_free_extent})"
        )

    def append_token(self, request_id: str) -> None:
        """Consume one more slot of an existing reservation.

        Raises:
            AllocationError: if the request has no extent.
            OutOfMemoryError: if the reservation is exhausted.
        """
        extent = self._extents.get(request_id)
        if extent is None:
            raise AllocationError(f"request {request_id!r} has no reservation")
        if extent.used_tokens >= extent.length:
            raise OutOfMemoryError(f"reservation of {request_id!r} exhausted")
        extent.used_tokens += 1

    def free(self, request_id: str) -> int:
        """Release a reservation, returning the number of slots released."""
        extent = self._extents.pop(request_id, None)
        return extent.length if extent else 0

    def owners(self) -> list[str]:
        """Request ids holding reservations."""
        return list(self._extents)

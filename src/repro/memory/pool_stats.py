"""Time-series accounting of KV-cache pool occupancy.

The ablation study of the paper (Table 1, Figure 1) reports two memory
quantities sampled over the run:

* **current consumed memory** — the fraction of the pool actually occupied at
  each decode step, and
* **future required memory** — the peak memory the *currently admitted* batch
  will need before it finishes (this can exceed 100% for aggressive admission).

:class:`MemoryTimeline` collects per-step samples of both and produces the
averages reported in the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean


@dataclass
class MemorySample:
    """One decode-step observation of pool state."""

    step: int
    time: float
    used_tokens: int
    future_required_tokens: int
    running_requests: int
    queued_requests: int


@dataclass
class MemoryTimeline:
    """Accumulates per-step memory samples and summarises them."""

    token_capacity: int
    samples: list[MemorySample] = field(default_factory=list)

    def record(
        self,
        step: int,
        time: float,
        used_tokens: int,
        future_required_tokens: int,
        running_requests: int,
        queued_requests: int,
    ) -> None:
        """Append one observation."""
        self.samples.append(
            MemorySample(
                step=step,
                time=time,
                used_tokens=used_tokens,
                future_required_tokens=future_required_tokens,
                running_requests=running_requests,
                queued_requests=queued_requests,
            )
        )

    def record_jump(
        self,
        first_step: int,
        times: list[float],
        first_used_tokens: int,
        used_tokens_per_step: int,
        future_required_tokens: int,
        running_requests: int,
        queued_requests: int,
    ) -> None:
        """Append one sample per macro-advanced decode iteration.

        During an event-jump no request finishes and none is admitted, so the
        per-step samples follow in closed form: occupancy grows by
        ``used_tokens_per_step`` (one token per resident request) each
        iteration and the batch's future requirement is invariant (every
        request's remaining length shrinks exactly as its context grows).
        Produces records identical to ``len(times)`` single-step
        :meth:`record` calls.
        """
        self.samples.extend(
            MemorySample(
                step=first_step + offset,
                time=time,
                used_tokens=first_used_tokens + offset * used_tokens_per_step,
                future_required_tokens=future_required_tokens,
                running_requests=running_requests,
                queued_requests=queued_requests,
            )
            for offset, time in enumerate(times, start=1)
        )

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def average_consumed_fraction(self) -> float:
        """Mean of used_tokens / capacity over steps with a non-empty batch."""
        active = [s for s in self.samples if s.running_requests > 0]
        if not active:
            return 0.0
        return mean(s.used_tokens / self.token_capacity for s in active)

    @property
    def average_future_required_fraction(self) -> float:
        """Mean of future_required_tokens / capacity over active steps."""
        active = [s for s in self.samples if s.running_requests > 0]
        if not active:
            return 0.0
        return mean(s.future_required_tokens / self.token_capacity for s in active)

    @property
    def peak_consumed_fraction(self) -> float:
        """Maximum observed used_tokens / capacity."""
        if not self.samples:
            return 0.0
        return max(s.used_tokens for s in self.samples) / self.token_capacity

    @property
    def peak_future_required_fraction(self) -> float:
        """Maximum observed future_required_tokens / capacity."""
        if not self.samples:
            return 0.0
        return max(s.future_required_tokens for s in self.samples) / self.token_capacity

    @property
    def average_batch_size(self) -> float:
        """Mean running-batch size over active steps."""
        active = [s for s in self.samples if s.running_requests > 0]
        if not active:
            return 0.0
        return mean(s.running_requests for s in active)

    def oversubscribed_steps(self) -> int:
        """Number of steps whose future requirement exceeded the capacity."""
        return sum(1 for s in self.samples if s.future_required_tokens > self.token_capacity)

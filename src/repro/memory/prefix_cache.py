"""Per-replica session prefix cache over the paged KV pool.

When a multi-turn session's stage *n* finishes, its KV cache — the
accumulated conversation context — is the hottest possible prefix for stage
*n + 1*, whose prompt extends it verbatim.  Instead of freeing those blocks,
the engine parks them here: the allocation is renamed under a cache key and
*pinned* in the :class:`~repro.memory.block_manager.BlockKVCachePool`, so it
keeps exerting pool pressure (the simulated cost of caching) without
participating in bulk decode growth.  A follow-up stage that lands on the
same replica *claims* the entry — the blocks transfer to the new request and
only the new suffix is allocated and prefilled; a stage that lands elsewhere
misses and pays the full prefill.

Eviction is LRU and is charged to pool pressure twice over: entries are
dropped when the cache's own token budget overflows, and on demand when the
pool cannot satisfy an allocation for live traffic — live requests always
outrank cached prefixes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.memory.block_manager import BlockKVCachePool
from repro.workloads.spec import RequestSpec


@dataclass
class PrefixCacheStats:
    """Counters describing a prefix cache's lifetime behaviour."""

    #: admitted session requests that claimed a resident prefix.
    hits: int = 0
    #: admitted session requests that found no usable prefix.
    misses: int = 0
    #: cached prefixes released under pressure (budget, pool, or replacement).
    evictions: int = 0
    #: finished turns whose context was parked for reuse.
    retained: int = 0
    #: prompt tokens that skipped recompute (and re-allocation) via hits.
    reused_tokens: int = 0

    @property
    def lookups(self) -> int:
        """Session admissions that consulted the cache."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that claimed a resident prefix."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "PrefixCacheStats") -> None:
        """Accumulate another cache's counters into this one (fleet totals)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.retained += other.retained
        self.reused_tokens += other.reused_tokens

    def summary(self) -> dict:
        """Compact JSON-ready view (sorted keys for fingerprint stability)."""
        return {
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "hits": self.hits,
            "misses": self.misses,
            "retained": self.retained,
            "reused_tokens": self.reused_tokens,
        }


@dataclass(frozen=True)
class PrefixEntry:
    """One resident session prefix: the context of a completed stage."""

    session_id: str
    #: 0-based index of the completed stage whose context is resident.
    stage: int
    #: tokens resident (the stage's full prompt + generated output).
    tokens: int
    #: pool owner id the blocks are parked under.
    cache_key: str


def _cache_key(session_id: str) -> str:
    # "~" keeps cache keys out of any plausible request-id namespace.
    return f"~prefix/{session_id}"


@dataclass
class _RetainOutcome:
    """Result of parking a finished turn's context."""

    retained: bool
    evicted: list[PrefixEntry] = field(default_factory=list)


class PrefixCache:
    """LRU cache of session prefixes, charged to a shared KV pool.

    Args:
        pool: the replica's block pool; cached entries hold real allocations
            in it (pinned, so they never grow).
        capacity_tokens: optional budget on resident cached tokens; ``None``
            bounds the cache only by pool pressure.  A prefix larger than
            the budget is never retained.
    """

    def __init__(self, pool: BlockKVCachePool, capacity_tokens: int | None = None) -> None:
        if capacity_tokens is not None and capacity_tokens <= 0:
            raise ValueError("capacity_tokens must be positive when set")
        self._pool = pool
        self._capacity = capacity_tokens
        self._entries: OrderedDict[str, PrefixEntry] = OrderedDict()
        self._resident_tokens = 0
        self.stats = PrefixCacheStats()

    # ------------------------------------------------------------------ state
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_tokens(self) -> int:
        """Tokens currently parked across all entries."""
        return self._resident_tokens

    @property
    def capacity_tokens(self) -> int | None:
        """The cache's own token budget (``None`` = pool-bounded only)."""
        return self._capacity

    def entries(self) -> list[PrefixEntry]:
        """Resident entries, least recently used first."""
        return list(self._entries.values())

    # ----------------------------------------------------------------- lookup
    def lookup(self, spec: RequestSpec) -> PrefixEntry | None:
        """The resident prefix ``spec`` extends, or ``None``.

        A usable entry holds the context of exactly the previous stage of
        the same session, and the request's prompt must cover it (strictly
        extending conversations always do).  Pure peek: counters move only
        when the engine actually claims or allocates.
        """
        if spec.session_id is None or spec.session_stage is None:
            return None
        entry = self._entries.get(spec.session_id)
        if entry is None:
            return None
        if spec.session_stage != entry.stage + 1 or spec.prompt_tokens < entry.tokens:
            return None
        return entry

    # ------------------------------------------------------------------ claim
    def claim(self, entry: PrefixEntry, request_id: str) -> None:
        """Transfer a resident prefix's blocks to an admitted request.

        The entry leaves the cache; its allocation is unpinned and renamed
        under ``request_id``, ready for the engine to extend with the new
        suffix.  Counts one hit and the reused tokens.
        """
        del self._entries[entry.session_id]
        self._resident_tokens -= entry.tokens
        self._pool.unpin(entry.cache_key)
        self._pool.rename(entry.cache_key, request_id)
        self.stats.hits += 1
        self.stats.reused_tokens += entry.tokens

    def note_miss(self) -> None:
        """Count a session admission that found no usable prefix."""
        self.stats.misses += 1

    # ----------------------------------------------------------------- retain
    def retain(self, request_id: str, session_id: str, stage: int, tokens: int) -> _RetainOutcome:
        """Park a finished turn's allocation for its session's next stage.

        Takes ownership of ``request_id``'s pool allocation (rename + pin).
        A previous entry for the same session is evicted first; entries are
        then LRU-evicted until the cache budget holds.  Returns whether the
        context was retained plus every entry evicted along the way — the
        engine emits ``prefix.evict`` events for those.  When ``tokens``
        exceeds the budget outright the allocation is left untouched (the
        caller frees it normally).
        """
        evicted: list[PrefixEntry] = []
        stale = self._entries.get(session_id)
        if stale is not None:
            evicted.append(self._evict(stale))
        if self._capacity is not None and tokens > self._capacity:
            return _RetainOutcome(retained=False, evicted=evicted)
        key = _cache_key(session_id)
        self._pool.rename(request_id, key)
        self._pool.pin(key)
        self._entries[session_id] = PrefixEntry(
            session_id=session_id, stage=stage, tokens=tokens, cache_key=key
        )
        self._resident_tokens += tokens
        self.stats.retained += 1
        if self._capacity is not None:
            while self._resident_tokens > self._capacity and len(self._entries) > 1:
                evicted.append(self.evict_lru())
        return _RetainOutcome(retained=True, evicted=evicted)

    # --------------------------------------------------------------- eviction
    def _evict(self, entry: PrefixEntry) -> PrefixEntry:
        del self._entries[entry.session_id]
        self._resident_tokens -= entry.tokens
        self._pool.free(entry.cache_key)
        self.stats.evictions += 1
        return entry

    def evict_lru(self) -> PrefixEntry:
        """Release the least recently used entry (cache must be non-empty)."""
        session_id = next(iter(self._entries))
        return self._evict(self._entries[session_id])

    def evict_for_allocation(self, num_tokens: int) -> list[PrefixEntry]:
        """LRU-evict until the pool can freshly allocate ``num_tokens``.

        Live traffic outranks cached prefixes: the engine calls this before
        giving up on an admission.  May empty the cache without achieving
        the allocation — the caller re-checks ``can_allocate``.
        """
        evicted: list[PrefixEntry] = []
        while self._entries and not self._pool.can_allocate(num_tokens):
            evicted.append(self.evict_lru())
        return evicted

    def evict_for_extension(
        self, request_id: str, num_tokens: int, protect: str | None = None
    ) -> list[PrefixEntry]:
        """LRU-evict until ``request_id``'s allocation can grow by ``num_tokens``.

        ``protect`` names a session whose entry must survive — the entry
        being extended itself, when the caller has not claimed it yet.
        """
        evicted: list[PrefixEntry] = []
        while not self._pool.can_extend(request_id, num_tokens):
            victim = next(
                (e for e in self._entries.values() if e.session_id != protect), None
            )
            if victim is None:
                break
            evicted.append(self._evict(victim))
        return evicted

    def evict_for_one_block(self) -> list[PrefixEntry]:
        """LRU-evict until at least one pool block is free (decode pressure)."""
        evicted: list[PrefixEntry] = []
        while self._entries and self._pool.free_blocks == 0:
            evicted.append(self.evict_lru())
        return evicted

    def clear(self) -> None:
        """Release every entry without counting evictions (crash teardown)."""
        for entry in list(self._entries.values()):
            self._pool.free(entry.cache_key)
        self._entries.clear()
        self._resident_tokens = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrefixCache(entries={len(self._entries)}, "
            f"tokens={self._resident_tokens}, hits={self.stats.hits})"
        )

"""Metrics: latency, goodput, fairness, fleet aggregates, availability, memory, similarity."""

from repro.metrics.availability import AvailabilitySummary, summarize_availability
from repro.metrics.fairness import (
    FairnessSummary,
    TenantService,
    jains_index,
    max_min_service_ratio,
    summarize_tenant_fairness,
)
from repro.metrics.fleet import (
    FleetSizeSample,
    FleetSummary,
    ReplicaLifetime,
    load_imbalance,
    summarize_fleet,
    total_replica_seconds,
)
from repro.metrics.goodput import (
    ThroughputSummary,
    evicted_request_fraction,
    eviction_rate,
    summarize_throughput,
)
from repro.metrics.latency import (
    LatencySummary,
    finished_requests,
    mean_tpots,
    mtpots,
    percentile,
    summarize_latency,
    ttfts,
)
from repro.metrics.memory_stats import MemoryReport, build_memory_report
from repro.metrics.sessions import (
    SessionOutcome,
    SessionSummary,
    session_requests,
    summarize_sessions,
)
from repro.metrics.similarity import (
    AdjacentWindowSimilarity,
    SimilarityMatrix,
    adjacent_window_similarity,
    cosine_similarity,
    default_bin_edges,
    length_histogram,
    partition_windows,
    window_similarity_matrix,
)

__all__ = [
    "AvailabilitySummary",
    "summarize_availability",
    "FairnessSummary",
    "TenantService",
    "jains_index",
    "max_min_service_ratio",
    "summarize_tenant_fairness",
    "FleetSizeSample",
    "FleetSummary",
    "ReplicaLifetime",
    "load_imbalance",
    "summarize_fleet",
    "total_replica_seconds",
    "ThroughputSummary",
    "evicted_request_fraction",
    "eviction_rate",
    "summarize_throughput",
    "LatencySummary",
    "finished_requests",
    "mean_tpots",
    "mtpots",
    "percentile",
    "summarize_latency",
    "ttfts",
    "MemoryReport",
    "build_memory_report",
    "SessionOutcome",
    "SessionSummary",
    "session_requests",
    "summarize_sessions",
    "AdjacentWindowSimilarity",
    "SimilarityMatrix",
    "adjacent_window_similarity",
    "cosine_similarity",
    "default_bin_edges",
    "length_histogram",
    "partition_windows",
    "window_similarity_matrix",
]

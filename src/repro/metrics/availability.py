"""Availability metrics: what a fleet delivered *while things were failing*.

Companion of :mod:`repro.serving.faults`: once a run carries a fault plan,
raw goodput alone cannot distinguish "the retry machinery saved the burst"
from "half the work silently vanished".  :func:`summarize_availability`
condenses a :class:`~repro.serving.results.ClusterResult` into the numbers
the fig14 failure-recovery benchmark (and any chaos experiment) compares:

* **goodput under failure** — the ordinary SLA goodput of the run, which a
  fault plan drags down through lost work, retry latency, and degraded
  replicas;
* **delivery rate** — finished requests over all requests the generator
  produced (routed + rejected), the request-level availability number;
* **lost work** — requests aborted by crashes and the partial output tokens
  thrown away with aborted/migrated work;
* **recovery effort** — fault-driven retries and queue migrations;
* **time to recovery** — per crash with a replacement launch, how long the
  fleet ran short: from the crash instant until the replacement replica
  became routable (``ready_at`` from the provisioned lifetimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serving.results import ClusterResult
    from repro.serving.sla import SLASpec


@dataclass(frozen=True)
class AvailabilitySummary:
    """Failure/recovery digest of one cluster run (all zeros when fault-free)."""

    #: SLA goodput of the run (output tokens/s from compliant requests).
    goodput: float
    #: finished requests / submitted requests (1.0 when nothing was lost).
    delivery_rate: float
    #: requests aborted by crashes or preemption deadlines.
    failed_requests: int
    #: output tokens discarded with aborted and migrated work.
    lost_tokens: int
    #: fault-driven re-dispatches through the retry policy.
    retries: int
    #: queued requests migrated off preempted replicas.
    migrations: int
    #: replica crashes (including preemption-deadline kills).
    crashes: int
    #: preemption notices served.
    preemptions: int
    #: straggler windows entered.
    stragglers: int
    #: mean seconds from a crash to its replacement becoming routable;
    #: 0.0 when no crash had a replacement.
    mean_time_to_recovery: float

    def describe(self) -> str:
        """One-line summary for logs and benchmark tables."""
        return (
            f"goodput={self.goodput:.1f} tok/s, delivered={self.delivery_rate:.1%}, "
            f"failed={self.failed_requests}, lost={self.lost_tokens} tok, "
            f"retries={self.retries}, migrations={self.migrations}, "
            f"ttr={self.mean_time_to_recovery:.2f}s"
        )


def summarize_availability(result: "ClusterResult", sla: "SLASpec") -> AvailabilitySummary:
    """Condense a cluster run's failure/recovery behaviour into one record.

    Works on any :class:`~repro.serving.results.ClusterResult`; without a
    fault plan every failure counter is zero and the summary reduces to the
    run's goodput and delivery rate.
    """
    crashes = preemptions = stragglers = 0
    recovery_times: list[float] = []
    ready_by_replica = {life.replica_id: life.ready_at for life in result.lifetimes}
    for event in result.fault_events:
        if event.kind in ("crash", "preemption-deadline"):
            crashes += 1
            replacement = event.detail.get("replacement")
            if replacement is not None and replacement in ready_by_replica:
                recovery_times.append(max(0.0, ready_by_replica[replacement] - event.time))
        elif event.kind == "preemption":
            preemptions += 1
        elif event.kind == "straggler-start":
            stragglers += 1
    # submitted_requests already conserves routed + rejected: crashed work is
    # either re-routed (fresh Request) or rejected with a typed reason, so the
    # failed list must not be added on top — it would double count retries.
    submitted = result.submitted_requests
    finished = len(result.finished_requests)
    return AvailabilitySummary(
        goodput=result.goodput(sla),
        delivery_rate=finished / submitted if submitted else 1.0,
        failed_requests=len(result.failed),
        lost_tokens=result.lost_tokens,
        retries=result.retries,
        migrations=result.migrations,
        crashes=crashes,
        preemptions=preemptions,
        stragglers=stragglers,
        mean_time_to_recovery=(
            sum(recovery_times) / len(recovery_times) if recovery_times else 0.0
        ),
    )

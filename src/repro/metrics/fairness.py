"""Per-tenant service accounting and fairness metrics.

Goodput says how many SLA-compliant tokens a system served; it says nothing
about *who* received them.  Under a heavy-tail tenant population (see
:mod:`repro.workloads.tenants`) an FCFS admission queue lets a few abusive
users monopolise the batch while everyone else starves — total goodput can
look healthy while most users get nothing.  This module adds the missing
axis:

* **Jain's fairness index** over per-tenant service — ``(sum x)^2 / (n * sum
  x^2)``, which is 1 when every tenant receives equal service and approaches
  ``1/n`` when one tenant receives everything;
* **max/min service ratio** — the crudest possible skew indicator;
* **per-tenant service summaries** — submitted/finished/rejected counts,
  served tokens, SLA-compliant tokens, and per-tenant goodput.

Requests are grouped by :attr:`~repro.workloads.spec.RequestSpec.user_id` or
:attr:`~repro.workloads.spec.RequestSpec.app_id`; requests without the
relevant identity are excluded (tenant-less traffic has no fairness story).
Fleet-level surfacing lives in :func:`repro.metrics.fleet.summarize_fleet`
and the ``fairness_summary`` accessors on
:class:`~repro.serving.results.RunResult` /
:class:`~repro.serving.results.ClusterResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.engine.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports metrics)
    from repro.serving.sla import SLASpec


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a non-negative allocation vector.

    ``(sum x)^2 / (n * sum x^2)``: 1.0 for a perfectly equal allocation,
    ``1/n`` when a single member receives everything.  Degenerate inputs are
    perfectly fair by definition rather than numerical accident: an empty
    vector, a single member, and an all-zero allocation (nobody was served,
    nobody was favoured) all return exactly 1.0.

    Raises:
        ValueError: if any value is negative.
    """
    if any(v < 0 for v in values):
        raise ValueError("allocation values must be non-negative")
    n = len(values)
    if n <= 1:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares <= 0.0:
        return 1.0
    return total * total / (n * squares)


def max_min_service_ratio(values: Sequence[float]) -> float:
    """Ratio of the best-served to the worst-served tenant.

    1.0 for equal (or degenerate: empty, single-member, or all-zero)
    allocations; ``inf`` when some tenant was served and another received
    nothing — the starvation signature this metric exists to expose.

    Raises:
        ValueError: if any value is negative.
    """
    if any(v < 0 for v in values):
        raise ValueError("allocation values must be non-negative")
    if len(values) <= 1:
        return 1.0
    highest = max(values)
    lowest = min(values)
    if highest <= 0.0:
        return 1.0
    if lowest <= 0.0:
        return math.inf
    return float(highest) / float(lowest)


@dataclass(frozen=True)
class TenantService:
    """Service one tenant received over a run."""

    tenant_id: str
    submitted_requests: int
    finished_requests: int
    rejected_requests: int
    #: output tokens of finished requests.
    served_tokens: int
    #: output tokens of SLA-compliant finished requests (goodput credit).
    compliant_tokens: int
    #: compliant tokens per second over the run duration.
    goodput: float

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "tenant": self.tenant_id,
            "submitted": self.submitted_requests,
            "finished": self.finished_requests,
            "rejected": self.rejected_requests,
            "served_tok": self.served_tokens,
            "goodput_tok_s": round(self.goodput, 1),
        }


@dataclass(frozen=True)
class FairnessSummary:
    """Fairness slice of one run, grouped per user or per application."""

    #: which identity requests were grouped by: ``"user"`` or ``"app"``.
    group_by: str
    duration: float
    #: per-tenant service, keyed by tenant id (sorted iteration).
    per_tenant: Mapping[str, TenantService] = dataclass_field(default_factory=dict)

    @property
    def num_tenants(self) -> int:
        """Distinct tenants that submitted at least one request."""
        return len(self.per_tenant)

    @property
    def total_served_tokens(self) -> int:
        """Output tokens served across all tenants."""
        return sum(t.served_tokens for t in self.per_tenant.values())

    @property
    def total_compliant_tokens(self) -> int:
        """SLA-compliant output tokens across all tenants."""
        return sum(t.compliant_tokens for t in self.per_tenant.values())

    @property
    def jain_served_tokens(self) -> float:
        """Jain's index over per-tenant served (finished) output tokens."""
        return jains_index([t.served_tokens for t in self.per_tenant.values()])

    @property
    def jain_goodput(self) -> float:
        """Jain's index over per-tenant SLA-compliant tokens.

        The headline fairness number: under a drained run every scheduler
        eventually serves all tokens, but only a fair one spreads the
        *SLA-compliant* tokens across tenants instead of concentrating
        compliance on the heavy hitters at the queue head.
        """
        return jains_index([t.compliant_tokens for t in self.per_tenant.values()])

    @property
    def service_ratio(self) -> float:
        """Max/min ratio of per-tenant served tokens (``inf`` = starvation)."""
        return max_min_service_ratio([t.served_tokens for t in self.per_tenant.values()])

    def tenant_rows(self) -> list[dict[str, object]]:
        """One table row per tenant, in sorted tenant order."""
        return [self.per_tenant[name].as_row() for name in sorted(self.per_tenant)]

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        ratio = self.service_ratio
        return {
            "group_by": self.group_by,
            "tenants": self.num_tenants,
            "jain_goodput": round(self.jain_goodput, 3),
            "jain_served": round(self.jain_served_tokens, 3),
            "service_ratio": "inf" if math.isinf(ratio) else round(ratio, 2),
        }


def _tenant_key(request: Request, group_by: str) -> str | None:
    if group_by == "user":
        return request.spec.user_id
    if group_by == "app":
        return request.spec.app_id
    raise ValueError(f"group_by must be 'user' or 'app', got {group_by!r}")


def summarize_tenant_fairness(
    requests: Sequence[Request],
    duration: float,
    sla: "SLASpec",
    rejected: Sequence[Request] = (),
    group_by: str = "user",
) -> FairnessSummary:
    """Group requests per tenant and summarise the service each received.

    Args:
        requests: every request the system accepted (finished or not).
        duration: measurement window (seconds) for per-tenant goodput.
        sla: decides which finished requests earn goodput credit (per-class
            deadlines apply when the spec carries them).
        rejected: requests turned away before execution (throttled or
            shed); they count as submitted and rejected for their tenant.
        group_by: ``"user"`` or ``"app"`` — which identity to group by.
            Requests without that identity are excluded entirely.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if group_by not in ("user", "app"):
        raise ValueError(f"group_by must be 'user' or 'app', got {group_by!r}")
    submitted: dict[str, int] = {}
    finished: dict[str, int] = {}
    turned_away: dict[str, int] = {}
    served: dict[str, int] = {}
    compliant: dict[str, int] = {}
    for request in requests:
        tenant = _tenant_key(request, group_by)
        if tenant is None:
            continue
        submitted[tenant] = submitted.get(tenant, 0) + 1
        if request.is_finished:
            finished[tenant] = finished.get(tenant, 0) + 1
            served[tenant] = served.get(tenant, 0) + request.generated_tokens
            if sla.request_compliant(request):
                compliant[tenant] = compliant.get(tenant, 0) + request.generated_tokens
    for request in rejected:
        tenant = _tenant_key(request, group_by)
        if tenant is None:
            continue
        submitted[tenant] = submitted.get(tenant, 0) + 1
        turned_away[tenant] = turned_away.get(tenant, 0) + 1
    per_tenant = {
        tenant: TenantService(
            tenant_id=tenant,
            submitted_requests=submitted[tenant],
            finished_requests=finished.get(tenant, 0),
            rejected_requests=turned_away.get(tenant, 0),
            served_tokens=served.get(tenant, 0),
            compliant_tokens=compliant.get(tenant, 0),
            goodput=compliant.get(tenant, 0) / duration if duration > 0 else 0.0,
        )
        for tenant in sorted(submitted)
    }
    return FairnessSummary(group_by=group_by, duration=duration, per_tenant=per_tenant)

"""Fleet-level metrics: aggregate goodput, latency percentiles, load balance.

A cluster run produces one :class:`~repro.serving.results.RunResult` per
replica.  The fleet summary aggregates them into the numbers a capacity
planner actually compares across routing policies:

* **goodput / throughput** over the fleet makespan,
* **SLA attainment** — the fraction of finished requests meeting the SLA,
* **p50/p99 TTFT and TPOT** across every request the fleet served, and
* **load imbalance** — the coefficient of variation of per-replica output
  tokens (0 = perfectly balanced; 1 means the standard deviation across
  replicas equals the mean, i.e. severe skew).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.request import Request
from repro.metrics.goodput import summarize_throughput
from repro.metrics.latency import finished_requests, mean_tpots, percentile, ttfts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports metrics)
    from repro.serving.sla import SLASpec


@dataclass(frozen=True)
class FleetSummary:
    """Aggregate outcome of one cluster serving run."""

    num_replicas: int
    duration: float
    submitted_requests: int
    rejected_requests: int
    finished_requests: int
    total_output_tokens: int
    goodput: float
    throughput: float
    sla_attainment: float
    p50_ttft: float
    p99_ttft: float
    p50_tpot: float
    p99_tpot: float
    load_imbalance: float

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "replicas": self.num_replicas,
            "goodput_tok_s": round(self.goodput, 1),
            "throughput_tok_s": round(self.throughput, 1),
            "sla_attainment": f"{self.sla_attainment:.1%}",
            "p99_ttft_s": round(self.p99_ttft, 3),
            "p99_tpot_s": round(self.p99_tpot, 3),
            "imbalance_cv": round(self.load_imbalance, 3),
            "rejected": self.rejected_requests,
        }


def load_imbalance(per_replica_loads: Sequence[float]) -> float:
    """Coefficient of variation of per-replica load (0 = perfectly balanced).

    An idle fleet (zero mean load) is balanced by definition, so it returns 0
    rather than dividing by zero.
    """
    loads = np.asarray(per_replica_loads, dtype=float)
    if loads.size == 0:
        return 0.0
    mean = loads.mean()
    if mean <= 0:
        return 0.0
    return float(loads.std() / mean)


def summarize_fleet(
    per_replica_requests: Sequence[Sequence[Request]],
    duration: float,
    sla: "SLASpec",
    rejected: int = 0,
) -> FleetSummary:
    """Aggregate per-replica request lists into one fleet summary.

    Args:
        per_replica_requests: every request each replica served (one inner
            sequence per replica, finished or not).
        duration: fleet makespan in seconds.
        sla: the SLA deciding goodput credit and attainment.
        rejected: requests the router turned away before any replica saw them.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    all_requests: list[Request] = [r for replica in per_replica_requests for r in replica]
    throughput = summarize_throughput(all_requests, duration, sla)
    done = finished_requests(all_requests)
    ttft_values = ttfts(done)
    tpot_values = mean_tpots(done)
    per_replica_tokens = [
        sum(r.generated_tokens for r in replica if r.is_finished)
        for replica in per_replica_requests
    ]
    return FleetSummary(
        num_replicas=len(per_replica_requests),
        duration=duration,
        submitted_requests=len(all_requests) + rejected,
        rejected_requests=rejected,
        finished_requests=throughput.finished_requests,
        total_output_tokens=throughput.total_output_tokens,
        goodput=throughput.goodput,
        throughput=throughput.throughput,
        sla_attainment=throughput.compliance_rate,
        p50_ttft=percentile(ttft_values, 50.0),
        p99_ttft=percentile(ttft_values, 99.0),
        p50_tpot=percentile(tpot_values, 50.0),
        p99_tpot=percentile(tpot_values, 99.0),
        load_imbalance=load_imbalance(per_replica_tokens),
    )

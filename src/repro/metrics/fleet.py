"""Fleet-level metrics: aggregate goodput, latency percentiles, load balance.

A cluster run produces one :class:`~repro.serving.results.RunResult` per
replica.  The fleet summary aggregates them into the numbers a capacity
planner actually compares across routing policies:

* **goodput / throughput** over the fleet makespan,
* **SLA attainment** — the fraction of finished requests meeting the SLA,
* **p50/p99 TTFT and TPOT** across every request the fleet served,
* **load imbalance** — the coefficient of variation of per-replica output
  tokens (0 = perfectly balanced; 1 means the standard deviation across
  replicas equals the mean, i.e. severe skew), and
* **replica-seconds / goodput-per-replica-second** — the fleet-cost axis an
  elastic deployment optimises: an autoscaled fleet (see
  :mod:`repro.serving.autoscale`) pays only for the replica-seconds it
  actually provisioned, so SLA-compliant tokens *per replica-second* is the
  number that compares a burst-chasing fleet against a peak-provisioned one,
  and
* **fairness slices** — when requests carry tenant identities (see
  :mod:`repro.workloads.tenants`), per-user and per-application
  :class:`~repro.metrics.fairness.FairnessSummary` instances report Jain's
  index, max/min service ratio, and per-tenant goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.engine.request import Request
from repro.metrics.fairness import FairnessSummary, summarize_tenant_fairness
from repro.metrics.goodput import summarize_throughput, summarize_throughput_by_class
from repro.metrics.latency import finished_requests, mean_tpots, percentile, ttfts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports metrics)
    from repro.serving.sla import SLASpec


@dataclass(frozen=True)
class ReplicaLifetime:
    """Provisioned interval of one replica within a cluster run.

    ``launched_at`` is when the replica was requested (warm-up included — a
    booting replica costs money before it serves), ``ready_at`` is when it
    became routable, and ``retired_at`` is when a drain completed; ``None``
    means the replica was still provisioned when the run ended.
    """

    replica_id: int
    launched_at: float
    ready_at: float
    retired_at: float | None = None

    def __post_init__(self) -> None:
        if self.launched_at < 0:
            raise ValueError("launched_at must be non-negative")
        if self.ready_at < self.launched_at:
            raise ValueError("ready_at must not precede launched_at")
        if self.retired_at is not None and self.retired_at < self.launched_at:
            raise ValueError("retired_at must not precede launched_at")

    def seconds(self, end_time: float) -> float:
        """Replica-seconds accrued by the end of the run at ``end_time``."""
        end = self.retired_at if self.retired_at is not None else max(end_time, self.launched_at)
        return end - self.launched_at


@dataclass(frozen=True)
class FleetSizeSample:
    """Fleet composition at one instant of a cluster run."""

    time: float
    active: int
    warming: int
    draining: int

    @property
    def provisioned(self) -> int:
        """Replicas currently paid for: routable plus booting."""
        return self.active + self.warming


def total_replica_seconds(lifetimes: Sequence[ReplicaLifetime], end_time: float) -> float:
    """Replica-seconds the fleet accrued over a run ending at ``end_time``."""
    return sum(lifetime.seconds(end_time) for lifetime in lifetimes)


@dataclass(frozen=True)
class ClassSummary:
    """Per-SLA-class slice of a fleet summary.

    ``goodput_per_replica_second`` divides the class goodput by the *whole
    fleet's* provisioned replica-seconds — the cost is shared infrastructure,
    so class slices add up to the fleet-level figure.
    """

    sla_class: str
    submitted_requests: int
    rejected_requests: int
    finished_requests: int
    total_output_tokens: int
    goodput: float
    sla_attainment: float
    goodput_per_replica_second: float = 0.0

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "class": self.sla_class,
            "goodput_tok_s": round(self.goodput, 1),
            "goodput_per_rs": round(self.goodput_per_replica_second, 2),
            "finished": self.finished_requests,
            "sla_attainment": f"{self.sla_attainment:.1%}",
            "rejected": self.rejected_requests,
        }


@dataclass(frozen=True)
class FleetSummary:
    """Aggregate outcome of one cluster serving run."""

    num_replicas: int
    duration: float
    submitted_requests: int
    rejected_requests: int
    finished_requests: int
    total_output_tokens: int
    goodput: float
    throughput: float
    sla_attainment: float
    p50_ttft: float
    p99_ttft: float
    p50_tpot: float
    p99_tpot: float
    load_imbalance: float
    replica_seconds: float = 0.0
    goodput_per_replica_second: float = 0.0
    avg_fleet_size: float = 0.0
    #: per-SLA-class slices, keyed by class name; a single-class run gets one
    #: entry (the default ``interactive`` class).
    per_class: Mapping[str, ClassSummary] = dataclass_field(default_factory=dict)
    #: per-user fairness slice (:mod:`repro.metrics.fairness`); ``None`` when
    #: no request carried a user identity.
    user_fairness: FairnessSummary | None = None
    #: per-application fairness slice; ``None`` when no request carried one.
    app_fairness: FairnessSummary | None = None

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "replicas": self.num_replicas,
            "goodput_tok_s": round(self.goodput, 1),
            "goodput_per_rs": round(self.goodput_per_replica_second, 2),
            "replica_s": round(self.replica_seconds, 1),
            "throughput_tok_s": round(self.throughput, 1),
            "sla_attainment": f"{self.sla_attainment:.1%}",
            "p99_ttft_s": round(self.p99_ttft, 3),
            "p99_tpot_s": round(self.p99_tpot, 3),
            "imbalance_cv": round(self.load_imbalance, 3),
            "rejected": self.rejected_requests,
        }

    def class_rows(self) -> list[dict[str, object]]:
        """One table row per SLA class, in sorted class order."""
        return [self.per_class[name].as_row() for name in sorted(self.per_class)]


def load_imbalance(per_replica_loads: Sequence[float]) -> float:
    """Coefficient of variation of per-replica load (0 = perfectly balanced).

    Degenerate fleets are balanced by definition rather than numerical
    accidents: an empty or single-replica fleet has nothing to be imbalanced
    against, and an idle fleet (zero or non-finite mean load) would otherwise
    divide by zero.  All three return exactly 0.0.
    """
    loads = np.asarray(per_replica_loads, dtype=float)
    if loads.size <= 1:
        return 0.0
    mean = loads.mean()
    if not np.isfinite(mean) or mean <= 0:
        return 0.0
    return float(loads.std() / mean)


def summarize_fleet(
    per_replica_requests: Sequence[Sequence[Request]],
    duration: float,
    sla: "SLASpec",
    rejected: int | Sequence[Request] = 0,
    replica_seconds: float | None = None,
) -> FleetSummary:
    """Aggregate per-replica request lists into one fleet summary.

    Args:
        per_replica_requests: every request each replica served (one inner
            sequence per replica, finished or not).
        duration: fleet makespan in seconds.
        sla: the SLA deciding goodput credit and attainment (per-class
            deadlines apply when the spec carries them).
        rejected: requests the router turned away before any replica saw
            them — either a bare count, or the rejected :class:`Request`
            objects themselves, which additionally yields per-class rejection
            counts in :attr:`FleetSummary.per_class`.
        replica_seconds: provisioned replica-time of the run; defaults to a
            static fleet (every replica alive for the whole makespan).
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if replica_seconds is None:
        replica_seconds = len(per_replica_requests) * duration
    rejected_requests: list[Request] = [] if isinstance(rejected, int) else list(rejected)
    num_rejected = rejected if isinstance(rejected, int) else len(rejected_requests)
    all_requests: list[Request] = [r for replica in per_replica_requests for r in replica]
    throughput = summarize_throughput(all_requests, duration, sla)
    done = finished_requests(all_requests)
    ttft_values = ttfts(done)
    tpot_values = mean_tpots(done)
    per_replica_tokens = [
        sum(r.generated_tokens for r in replica if r.is_finished)
        for replica in per_replica_requests
    ]
    per_class: dict[str, ClassSummary] = {}
    class_throughput = summarize_throughput_by_class(all_requests, duration, sla)
    rejected_by_class: dict[str, int] = {}
    for request in rejected_requests:
        name = request.spec.sla_class
        rejected_by_class[name] = rejected_by_class.get(name, 0) + 1
    for name in sorted(set(class_throughput) | set(rejected_by_class)):
        slice_summary = class_throughput.get(name)
        submitted = sum(
            1 for r in all_requests if r.spec.sla_class == name
        ) + rejected_by_class.get(name, 0)
        per_class[name] = ClassSummary(
            sla_class=name,
            submitted_requests=submitted,
            rejected_requests=rejected_by_class.get(name, 0),
            finished_requests=slice_summary.finished_requests if slice_summary else 0,
            total_output_tokens=slice_summary.total_output_tokens if slice_summary else 0,
            goodput=slice_summary.goodput if slice_summary else 0.0,
            sla_attainment=slice_summary.compliance_rate if slice_summary else 0.0,
            goodput_per_replica_second=(
                slice_summary.goodput * duration / replica_seconds
                if slice_summary and replica_seconds > 0
                else 0.0
            ),
        )
    user_fairness = summarize_tenant_fairness(
        all_requests, duration, sla, rejected=rejected_requests, group_by="user"
    )
    app_fairness = summarize_tenant_fairness(
        all_requests, duration, sla, rejected=rejected_requests, group_by="app"
    )
    return FleetSummary(
        num_replicas=len(per_replica_requests),
        duration=duration,
        submitted_requests=len(all_requests) + num_rejected,
        rejected_requests=num_rejected,
        finished_requests=throughput.finished_requests,
        total_output_tokens=throughput.total_output_tokens,
        goodput=throughput.goodput,
        throughput=throughput.throughput,
        sla_attainment=throughput.compliance_rate,
        p50_ttft=percentile(ttft_values, 50.0),
        p99_ttft=percentile(ttft_values, 99.0),
        p50_tpot=percentile(tpot_values, 50.0),
        p99_tpot=percentile(tpot_values, 99.0),
        load_imbalance=load_imbalance(per_replica_tokens),
        replica_seconds=replica_seconds,
        goodput_per_replica_second=(
            throughput.goodput * duration / replica_seconds if replica_seconds > 0 else 0.0
        ),
        avg_fleet_size=(
            replica_seconds / duration if duration > 0 else float(len(per_replica_requests))
        ),
        per_class=per_class,
        user_fairness=user_fairness if user_fairness.num_tenants else None,
        app_fairness=app_fairness if app_fairness.num_tenants else None,
    )

"""Throughput and goodput computation.

*Throughput* is the rate of generated output tokens regardless of latency.
*Goodput* (the paper's headline metric) counts only the output tokens of
requests that satisfied the SLA — a run that generates many tokens but stalls
individual requests past the MTPOT bound gets little credit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.engine.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving imports metrics)
    from repro.serving.sla import SLASpec


@dataclass(frozen=True)
class ThroughputSummary:
    """Token-rate summary of one serving run."""

    duration: float
    total_output_tokens: int
    compliant_output_tokens: int
    finished_requests: int
    compliant_requests: int

    @property
    def throughput(self) -> float:
        """Output tokens per second, ignoring SLA compliance."""
        if self.duration <= 0:
            return 0.0
        return self.total_output_tokens / self.duration

    @property
    def goodput(self) -> float:
        """Output tokens per second from SLA-compliant requests only."""
        if self.duration <= 0:
            return 0.0
        return self.compliant_output_tokens / self.duration

    @property
    def compliance_rate(self) -> float:
        """Fraction of finished requests that met the SLA."""
        if self.finished_requests == 0:
            return 0.0
        return self.compliant_requests / self.finished_requests


def summarize_throughput(
    requests: Sequence[Request],
    duration: float,
    sla: "SLASpec",
) -> ThroughputSummary:
    """Compute throughput and goodput for a completed run.

    Args:
        requests: every request the run produced (finished or not).
        duration: wall-clock length of the measurement window (seconds).
        sla: the SLA used to decide which requests count toward goodput.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    finished = [r for r in requests if r.is_finished]
    compliant = [r for r in finished if sla.request_compliant(r)]
    return ThroughputSummary(
        duration=duration,
        total_output_tokens=sum(r.generated_tokens for r in finished),
        compliant_output_tokens=sum(r.generated_tokens for r in compliant),
        finished_requests=len(finished),
        compliant_requests=len(compliant),
    )


def summarize_throughput_by_class(
    requests: Sequence[Request],
    duration: float,
    sla: "SLASpec",
) -> dict[str, ThroughputSummary]:
    """Per-SLA-class throughput/goodput summaries for a completed run.

    Requests are grouped by :attr:`~repro.workloads.spec.RequestSpec.sla_class`
    and each group is summarised over the *same* measurement window, so class
    goodputs add up to the fleet goodput.  Compliance uses each class's own
    deadlines via :meth:`SLASpec.request_compliant`.  Keys are sorted for
    deterministic iteration.
    """
    by_class: dict[str, list[Request]] = {}
    for request in requests:
        by_class.setdefault(request.spec.sla_class, []).append(request)
    return {
        name: summarize_throughput(by_class[name], duration, sla)
        for name in sorted(by_class)
    }


def eviction_rate(requests: Sequence[Request]) -> float:
    """Evictions per request (can exceed 1.0 when requests are evicted repeatedly)."""
    if not requests:
        return 0.0
    return sum(r.eviction_count for r in requests) / len(requests)


def evicted_request_fraction(requests: Sequence[Request]) -> float:
    """Ratio of total evictions to total requests, as reported in Table 1.

    The paper's "Evicted Reqs" column divides the *number of request
    evictions* by the number of requests, so values above 100% mean the
    average request was evicted more than once.
    """
    return eviction_rate(requests)

"""Per-request latency metrics: TTFT, TPOT, MTPOT and their percentiles.

Definitions follow Section 2.5 / 5.1 of the paper:

* **TTFT** (Time To First Token): arrival of the request to delivery of its
  first output token.
* **TPOT** (Time Per Output Token): gap between consecutive output tokens.
* **MTPOT** (Max TPOT): the *maximum* gap within a request — the paper argues
  this is the metric users actually feel, because a single long stall is
  visible even when the average is fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.request import Request


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate latency statistics over a set of finished requests."""

    count: int
    mean_ttft: float
    p99_ttft: float
    mean_tpot: float
    p99_mtpot: float
    max_mtpot: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean_ttft=0.0, p99_ttft=0.0, mean_tpot=0.0, p99_mtpot=0.0, max_mtpot=0.0)


def finished_requests(requests: Sequence[Request]) -> list[Request]:
    """Requests that completed generation and delivered at least one token."""
    return [r for r in requests if r.is_finished and r.token_times]


def ttfts(requests: Sequence[Request]) -> np.ndarray:
    """TTFT values of all requests that delivered a first token."""
    values = [r.ttft for r in requests if r.ttft is not None]
    return np.array(values, dtype=float)


def mtpots(requests: Sequence[Request]) -> np.ndarray:
    """MTPOT values of all requests with at least two delivered tokens."""
    values = [r.max_tpot for r in requests if r.max_tpot is not None]
    return np.array(values, dtype=float)


def mean_tpots(requests: Sequence[Request]) -> np.ndarray:
    """Mean TPOT per request, for requests with at least two tokens."""
    values = [r.mean_tpot for r in requests if r.mean_tpot is not None]
    return np.array(values, dtype=float)


def percentile(values: np.ndarray, q: float) -> float:
    """Percentile helper that tolerates empty inputs (returns 0)."""
    if values.size == 0:
        return 0.0
    return float(np.percentile(values, q))


def summarize_latency(requests: Sequence[Request]) -> LatencySummary:
    """Aggregate TTFT/TPOT/MTPOT statistics for a run."""
    done = finished_requests(requests)
    if not done:
        return LatencySummary.empty()
    ttft_values = ttfts(done)
    mtpot_values = mtpots(done)
    tpot_values = mean_tpots(done)
    return LatencySummary(
        count=len(done),
        mean_ttft=float(ttft_values.mean()) if ttft_values.size else 0.0,
        p99_ttft=percentile(ttft_values, 99.0),
        mean_tpot=float(tpot_values.mean()) if tpot_values.size else 0.0,
        p99_mtpot=percentile(mtpot_values, 99.0),
        max_mtpot=float(mtpot_values.max()) if mtpot_values.size else 0.0,
    )

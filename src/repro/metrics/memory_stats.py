"""Run-level memory and eviction summaries (Table 1 / Figure 1 quantities)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.engine import EngineStats
from repro.engine.request import Request
from repro.memory.pool_stats import MemoryTimeline
from repro.metrics.goodput import evicted_request_fraction


@dataclass(frozen=True)
class MemoryReport:
    """The four Table-1 columns for one (scheduler, workload) run."""

    scheduler: str
    workload: str
    decoding_steps: int
    consumed_memory_fraction: float
    future_required_fraction: float
    evicted_request_fraction: float

    def as_row(self) -> dict[str, object]:
        """Dictionary row for table rendering."""
        return {
            "scheduler": self.scheduler,
            "workload": self.workload,
            "decoding_steps": self.decoding_steps,
            "consumed_memory": f"{self.consumed_memory_fraction:.2%}",
            "future_required": f"{self.future_required_fraction:.2%}",
            "evicted_requests": f"{self.evicted_request_fraction:.2%}",
        }


def build_memory_report(
    scheduler: str,
    workload: str,
    stats: EngineStats,
    timeline: MemoryTimeline,
    requests: Sequence[Request],
) -> MemoryReport:
    """Assemble the Table-1 quantities from a finished run."""
    return MemoryReport(
        scheduler=scheduler,
        workload=workload,
        decoding_steps=stats.decoding_steps,
        consumed_memory_fraction=timeline.average_consumed_fraction,
        future_required_fraction=timeline.average_future_required_fraction,
        evicted_request_fraction=evicted_request_fraction(requests),
    )

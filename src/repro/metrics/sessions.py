"""Session metrics: multi-turn interaction outcomes across a run.

Multi-turn sessions (see :mod:`repro.workloads.interactions`) are served as
one request per turn, each stamped with ``session_id`` / ``session_stage`` /
``session_stages`` on its :class:`~repro.workloads.spec.RequestSpec`.  This
module folds those per-turn requests back into per-session outcomes: how
many turns each session completed, whether it ran to its final stage or was
abandoned (a turn rejected, throttled, or lost mid-run), time-to-first-token
per stage, and — when the serving stack ran with a prefix cache — the
fleet-wide prefix hit rate.

Everything here is pure post-processing over
:class:`~repro.serving.results.RunResult` / ``ClusterResult`` contents; it
never touches simulator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.request import Request
from repro.memory.prefix_cache import PrefixCacheStats
from repro.serving.sla import SLASpec


@dataclass(frozen=True)
class SessionOutcome:
    """Outcome of one multi-turn session.

    Attributes:
        session_id: the session's identity.
        turns_completed: turns that finished generation.
        total_stages: the session's scripted turn count, when any of its
            requests declared one (``None`` for open-ended sessions).
        abandoned: the session did not run to its final stage — some turn
            was rejected, throttled, aborted by a crash, or never spawned.
        ttft_by_stage: time-to-first-token of each finished turn, keyed by
            its 0-based stage index.
    """

    session_id: str
    turns_completed: int
    total_stages: int | None
    abandoned: bool
    ttft_by_stage: dict[int, float] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Whether the session ran to its final scripted stage."""
        return not self.abandoned


@dataclass(frozen=True)
class SessionSummary:
    """Aggregate view of every session a run served.

    Attributes:
        num_sessions: distinct sessions observed (served or rejected).
        completed_sessions: sessions that ran to their final stage.
        abandoned_sessions: sessions cut short before their final stage.
        total_turns: finished turns across all sessions.
        sla_violating_sessions: sessions with at least one finished turn
            whose TTFT missed the SLA deadline (0 when no SLA was given).
        prefix_stats: merged prefix-cache counters, when the run carried
            them (``None`` on cache-less runs).
        sessions: per-session outcomes, sorted by session id.
    """

    num_sessions: int
    completed_sessions: int
    abandoned_sessions: int
    total_turns: int
    sla_violating_sessions: int
    prefix_stats: PrefixCacheStats | None
    sessions: tuple[SessionOutcome, ...]

    @property
    def abandonment_rate(self) -> float:
        """Fraction of sessions abandoned before their final stage."""
        return self.abandoned_sessions / self.num_sessions if self.num_sessions else 0.0

    @property
    def mean_turns_completed(self) -> float:
        """Mean finished turns per session."""
        return self.total_turns / self.num_sessions if self.num_sessions else 0.0

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet prefix-cache hit rate (0.0 when no cache ran)."""
        return self.prefix_stats.hit_rate if self.prefix_stats is not None else 0.0

    def mean_ttft_by_stage(self) -> dict[int, float]:
        """Mean TTFT of finished turns per stage index, sorted by stage.

        Later stages carry ever longer prompts, so without prefix reuse
        this curve grows with the accumulated context; with an effective
        cache it stays near-flat.
        """
        totals: dict[int, list[float]] = {}
        for outcome in self.sessions:
            for stage, ttft in outcome.ttft_by_stage.items():
                totals.setdefault(stage, []).append(ttft)
        return {
            stage: sum(values) / len(values)
            for stage, values in sorted(totals.items())
        }

    def summary(self) -> dict:
        """Compact JSON-ready view (sorted keys for fingerprint stability)."""
        payload = {
            "abandoned_sessions": self.abandoned_sessions,
            "completed_sessions": self.completed_sessions,
            "num_sessions": self.num_sessions,
            "sla_violating_sessions": self.sla_violating_sessions,
            "total_turns": self.total_turns,
        }
        if self.prefix_stats is not None:
            payload["prefix"] = self.prefix_stats.summary()
        return payload

    def describe(self) -> str:
        """One-line session summary for logs and examples."""
        hit = (
            f", prefix hit rate {self.prefix_hit_rate:.0%}"
            if self.prefix_stats is not None
            else ""
        )
        return (
            f"{self.num_sessions} sessions: {self.completed_sessions} completed, "
            f"{self.abandoned_sessions} abandoned, {self.total_turns} turns{hit}"
        )


def session_requests(requests: Iterable[Request]) -> list[Request]:
    """The subset of ``requests`` that belong to some session."""
    return [r for r in requests if r.spec.session_id is not None]


def summarize_sessions(
    requests: Sequence[Request],
    *,
    rejected: Sequence[Request] = (),
    failed: Sequence[Request] = (),
    sla: SLASpec | None = None,
    prefix_stats: PrefixCacheStats | None = None,
) -> SessionSummary:
    """Fold per-turn requests back into per-session outcomes.

    Args:
        requests: every request the run served (any simulator's
            ``result.requests``); non-session requests are ignored.
        rejected: turned-away requests — a session turn here marks its
            session abandoned (the follow-up turn never spawned).
        failed: crash-aborted requests, likewise marking abandonment.
            A crashed turn whose *retry* finished under the same request id
            does not doom its session — the fault subsystem re-dispatches
            aborted work as a fresh request with the same identity, and the
            session continues from the retried turn's completion.
        sla: optional deadlines; finished turns are checked against the
            TTFT bound of their class to count SLA-violating sessions.
        prefix_stats: merged prefix-cache counters to attach, when the run
            carried a cache.
    """
    by_session: dict[str, list[Request]] = {}
    doomed: set[str] = set()
    for request in session_requests(requests):
        by_session.setdefault(request.spec.session_id, []).append(request)
    finished_ids = {
        r.spec.request_id for r in session_requests(requests) if r.is_finished
    }
    for request in session_requests(rejected):
        by_session.setdefault(request.spec.session_id, [])
        if request.spec.request_id not in finished_ids:
            doomed.add(request.spec.session_id)
    for request in session_requests(failed):
        if request.spec.request_id not in finished_ids:
            doomed.add(request.spec.session_id)

    outcomes: list[SessionOutcome] = []
    sla_violating = 0
    total_turns = 0
    for session_id in sorted(by_session):
        turns = by_session[session_id]
        finished = [r for r in turns if r.is_finished]
        total_stages = next(
            (r.spec.session_stages for r in turns if r.spec.session_stages is not None),
            None,
        )
        ttft_by_stage: dict[int, float] = {}
        violated = False
        for turn in finished:
            stage = turn.spec.session_stage
            ttft = turn.ttft
            if stage is not None and ttft is not None:
                ttft_by_stage[stage] = ttft
                if sla is not None:
                    limit = sla.limits_for(turn.spec.sla_class).ttft_limit
                    violated = violated or ttft > limit
        reached_final = any(
            r.spec.is_final_stage and r.is_finished for r in finished
        )
        abandoned = session_id in doomed or (
            not reached_final if total_stages is not None else False
        )
        sla_violating += 1 if violated else 0
        total_turns += len(finished)
        outcomes.append(
            SessionOutcome(
                session_id=session_id,
                turns_completed=len(finished),
                total_stages=total_stages,
                abandoned=abandoned,
                ttft_by_stage=ttft_by_stage,
            )
        )

    completed = sum(1 for outcome in outcomes if not outcome.abandoned)
    return SessionSummary(
        num_sessions=len(outcomes),
        completed_sessions=completed,
        abandoned_sessions=len(outcomes) - completed,
        total_turns=total_turns,
        sla_violating_sessions=sla_violating,
        prefix_stats=prefix_stats,
        sessions=tuple(outcomes),
    )

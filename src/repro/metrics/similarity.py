"""Windowed output-length distribution similarity (Figures 3 and 4).

The paper partitions a request trace into consecutive windows of *w* requests,
builds an output-length histogram per window, and measures the cosine
similarity between every pair of windows.  Two findings drive the scheduler
design:

* adjacent windows (the matrix diagonal next to the main diagonal) are always
  highly similar, and
* for single-service traces the whole matrix is bright (globally stable),
  while API/hybrid traces are bright only near the diagonal (the mixture
  drifts over time).

This module reproduces those measurements: histogram construction, the full
pairwise similarity matrix, and the "global vs diagonal" averages of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def length_histogram(
    lengths: Sequence[int] | np.ndarray,
    bin_edges: np.ndarray,
) -> np.ndarray:
    """Normalised histogram of output lengths over fixed bin edges."""
    counts, _ = np.histogram(np.asarray(lengths, dtype=float), bins=bin_edges)
    total = counts.sum()
    if total == 0:
        return counts.astype(float)
    return counts.astype(float) / total


def default_bin_edges(max_length: int = 8192, num_bins: int = 64) -> np.ndarray:
    """Geometric bin edges suited to heavy-tailed output-length distributions."""
    if max_length <= 1:
        raise ValueError("max_length must be > 1")
    if num_bins <= 1:
        raise ValueError("num_bins must be > 1")
    return np.unique(np.concatenate([[0.0], np.geomspace(1.0, max_length, num_bins)]))


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine similarity of two histograms (0 when either is all-zero)."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    if first.shape != second.shape:
        raise ValueError("histograms must have the same shape")
    norm = np.linalg.norm(first) * np.linalg.norm(second)
    if norm == 0:
        return 0.0
    return float(np.dot(first, second) / norm)


def partition_windows(lengths: Sequence[int], window_size: int) -> list[np.ndarray]:
    """Split a length sequence into consecutive non-overlapping windows.

    A trailing partial window smaller than ``window_size`` is dropped, matching
    the paper's "1000 requests, no overlap" setting.
    """
    if window_size <= 0:
        raise ValueError("window_size must be positive")
    values = np.asarray(lengths, dtype=np.int64)
    num_windows = values.size // window_size
    return [values[i * window_size:(i + 1) * window_size] for i in range(num_windows)]


@dataclass(frozen=True)
class SimilarityMatrix:
    """Pairwise cosine-similarity matrix between trace windows."""

    matrix: np.ndarray
    window_size: int

    @property
    def num_windows(self) -> int:
        """Number of windows compared."""
        return self.matrix.shape[0]

    def diagonal_mean(self, offset: int = 1) -> float:
        """Mean similarity of windows ``offset`` apart (adjacent windows by default)."""
        if self.num_windows <= offset:
            return 0.0
        return float(np.mean(np.diagonal(self.matrix, offset=offset)))

    def global_mean(self) -> float:
        """Mean similarity over all distinct window pairs."""
        n = self.num_windows
        if n < 2:
            return 0.0
        upper = self.matrix[np.triu_indices(n, k=1)]
        return float(upper.mean())


def window_similarity_matrix(
    lengths: Sequence[int],
    window_size: int = 1000,
    bin_edges: np.ndarray | None = None,
) -> SimilarityMatrix:
    """Cosine-similarity matrix between equal-size windows of a trace."""
    windows = partition_windows(lengths, window_size)
    if bin_edges is None:
        max_length = int(max(lengths)) if len(lengths) else 2
        bin_edges = default_bin_edges(max(max_length, 2))
    histograms = [length_histogram(window, bin_edges) for window in windows]
    n = len(histograms)
    matrix = np.ones((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            sim = cosine_similarity(histograms[i], histograms[j])
            matrix[i, j] = sim
            matrix[j, i] = sim
    return SimilarityMatrix(matrix=matrix, window_size=window_size)


@dataclass(frozen=True)
class AdjacentWindowSimilarity:
    """The Figure-4 quantities for one (historical, running) window pairing."""

    historical_window: int
    running_window: int
    diagonal_mean: float
    global_mean: float


def adjacent_window_similarity(
    lengths: Sequence[int],
    historical_window: int,
    running_window: int,
    bin_edges: np.ndarray | None = None,
) -> AdjacentWindowSimilarity:
    """Similarity between each historical window and the running window that follows it.

    The historical window (size ``historical_window``) immediately precedes the
    running window (size ``running_window``); the pair slides through the trace
    with a stride of ``running_window``.  ``diagonal_mean`` averages the
    similarity of those adjacent pairs; ``global_mean`` averages the similarity
    of all (historical, running) pairs regardless of distance, reproducing the
    solid vs dashed lines in Figure 4.
    """
    if historical_window <= 0 or running_window <= 0:
        raise ValueError("window sizes must be positive")
    values = np.asarray(lengths, dtype=np.int64)
    if bin_edges is None:
        max_length = int(values.max()) if values.size else 2
        bin_edges = default_bin_edges(max(max_length, 2))
    historical_hists: list[np.ndarray] = []
    running_hists: list[np.ndarray] = []
    position = historical_window
    while position + running_window <= values.size:
        historical = values[position - historical_window:position]
        running = values[position:position + running_window]
        historical_hists.append(length_histogram(historical, bin_edges))
        running_hists.append(length_histogram(running, bin_edges))
        position += running_window
    if not historical_hists:
        return AdjacentWindowSimilarity(historical_window, running_window, 0.0, 0.0)
    diagonal = [
        cosine_similarity(h, r) for h, r in zip(historical_hists, running_hists)
    ]
    cross: list[float] = []
    for i, historical_hist in enumerate(historical_hists):
        for j, running_hist in enumerate(running_hists):
            cross.append(cosine_similarity(historical_hist, running_hist))
    return AdjacentWindowSimilarity(
        historical_window=historical_window,
        running_window=running_window,
        diagonal_mean=float(np.mean(diagonal)),
        global_mean=float(np.mean(cross)),
    )

"""Observability: tracing, instrumentation, and exportable timelines.

The simulators are deterministic black boxes by default — the only outputs
are end-of-run aggregates.  This package opens them up without perturbing
them:

* :mod:`repro.obs.tracer` — the :class:`Tracer` interface and its three
  implementations: the zero-overhead :class:`NullTracer` default, the
  bounded-memory :class:`RingTracer`, and the streaming :class:`JsonlTracer`.
* :mod:`repro.obs.events` — the typed event taxonomy every simulator layer
  emits (request lifecycle, engine macro-steps, fleet transitions, routing
  and autoscale decisions, throttle rejections).
* :mod:`repro.obs.export` — exporters: Chrome ``trace_event`` JSON loadable
  in Perfetto / ``chrome://tracing`` (one track per replica, one span per
  request phase) plus the span-derivation helpers ``tools/trace_report.py``
  builds its text summaries on.

The contract every emitter honours: with the default :class:`NullTracer`
attached, simulation results are byte-identical to an untraced run — tracing
reads state, never writes it, and every emission site is guarded so the
disabled path costs one attribute check.
"""

from repro.obs.events import EVENT_TAXONOMY
from repro.obs.export import (
    chrome_trace,
    derive_request_phases,
    export_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RingTracer,
    TraceEvent,
    Tracer,
    read_jsonl_trace,
)

__all__ = [
    "EVENT_TAXONOMY",
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "RingTracer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "derive_request_phases",
    "export_chrome_trace",
    "read_jsonl_trace",
    "write_chrome_trace",
]

"""The typed event taxonomy the simulators emit.

Event names are dot-separated ``subsystem.what`` strings grouped into three
families; each constant below documents its emitter, its timestamp meaning,
and the ``attrs`` payload it carries.  The taxonomy is the contract between
the emitting layers and the consumers (:mod:`repro.obs.export`,
``tools/trace_report.py``): add new events here first, then emit them.

Request lifecycle (one ``request_id`` per event)::

    request.submit ──► request.throttled            (turned away pre-queue)
                  └──► request.routed / .rejected / .deferred   (fleet only)
                  └──► request.queued ──► request.admitted
                           ▲                  │
                           └── request.evicted┤
                                              ▼
                            request.first_token ──► request.finished

Engine execution: ``engine.step`` spans cover *eventful* iterations (an
admission, finish, eviction, or prefill work happened); provably event-free
iterations are covered by ``engine.jump`` spans instead, one per fused
macro-step — together the two reconstruct where simulated time went without
logging millions of silent decode steps.

Fleet: replica lifecycle transitions plus the decisions that caused them.
When a fault plan is attached (:mod:`repro.serving.faults`), the taxonomy
grows a failure arc: ``replica.fail`` / ``replica.recover`` on the fleet
side, and ``request.retry`` / ``request.migrate`` feeding requests back into
the routing funnel above.
"""

from __future__ import annotations

# ---------------------------------------------------------- request lifecycle
#: A load generator produced an arrival (simulator level, before any gate).
#: attrs: prompt_tokens, and when present user_id / app_id / sla_class.
REQUEST_SUBMIT = "request.submit"

#: The overload throttle turned the arrival away before routing/queueing.
#: attrs: reason, plus the tenant window usage behind the decision
#: (user_window / user_rpm / app_window / app_rpm when configured).
REQUEST_THROTTLED = "request.throttled"

#: A router placed the request on a replica.  attrs: replica (target id),
#: candidates (routable count), and the chosen replica's scoring signals
#: (load_fraction, headroom_fraction, saturated).
REQUEST_ROUTED = "request.routed"

#: A router (or the cluster saturation knob) rejected the request.
#: attrs: reason, candidates.
REQUEST_REJECTED = "request.rejected"

#: A router parked the request for a later routing attempt.
#: attrs: retry_at, candidates.
REQUEST_DEFERRED = "request.deferred"

#: The request entered an engine's waiting queue.  attrs: queue_depth.
REQUEST_QUEUED = "request.queued"

#: The admission scheduler moved the request into the running batch.
#: attrs: step, used_tokens, batch_size, plus any
#: :meth:`repro.schedulers.base.Scheduler.trace_signals` the policy exposes.
REQUEST_ADMITTED = "request.admitted"

#: Prefill completed — the first output token reached the client.
#: attrs: prefill_tokens (prompt tokens computed this residency).
REQUEST_FIRST_TOKEN = "request.first_token"

#: Generation completed.  attrs: generated_tokens, evictions.
REQUEST_FINISHED = "request.finished"

#: The request lost its KV cache and returned to the waiting queue.
#: attrs: generated_tokens, eviction_count.
REQUEST_EVICTED = "request.evicted"

#: A fault (crash or routing error) sent the request back through the retry
#: policy; it will re-enter routing at ``retry_at``.
#: attrs: attempt, retry_at, cause.
REQUEST_RETRY = "request.retry"

#: A queued request was drained off a preempted replica (the event's
#: ``replica`` field) and re-entered routing at the same instant, with no
#: retry-attempt charge.  attrs: generated_tokens (partial output discarded).
REQUEST_MIGRATE = "request.migrate"

# ------------------------------------------------------------ session lifecycle
#: The first stage of a multi-turn session entered the system.
#: attrs: session_id, stages (total turns the session will attempt).
SESSION_START = "session.start"

#: A non-final session stage completed, spawning the next turn.
#: attrs: session_id, stage (0-based index of the completed turn).
SESSION_STAGE = "session.stage"

#: A session ended — its final stage completed, or an earlier stage was
#: rejected/aborted and the remaining turns were abandoned.
#: attrs: session_id, turns_completed, abandoned.
SESSION_END = "session.end"

#: An admitted request extended a resident session prefix: the shared KV
#: blocks were claimed instead of re-allocated and the shared prompt tokens
#: skipped recompute.  attrs: session_id, reused_tokens, new_tokens.
PREFIX_HIT = "prefix.hit"

#: A session request found no resident prefix on its replica (first turn,
#: migrated session, or an already-evicted entry) and prefills in full.
#: attrs: session_id, prompt_tokens.
PREFIX_MISS = "prefix.miss"

#: A cached session prefix was released — LRU pressure from the pool or the
#: cache's own token budget.  attrs: session_id, tokens, cause.
PREFIX_EVICT = "prefix.evict"

# ---------------------------------------------------------------- engine spans
#: One *eventful* continuous-batching iteration (admission, finish, eviction,
#: or prefill work).  A span: ``time`` is the iteration start, ``duration``
#: its modelled latency.  attrs: step, source (see ``StepResult.source``),
#: admitted / finished / evicted counts, prefill_tokens, batch_size.
ENGINE_STEP = "engine.step"

#: One event-jump macro-step fusing provably event-free iterations.  A span:
#: ``time`` is the first fused iteration's start, ``duration`` covers all of
#: them.  attrs: source ("silent" / "saturated"), steps (iterations fused),
#: decode_tokens, batch_size.
ENGINE_JUMP = "engine.jump"

# ----------------------------------------------------------------- fleet events
#: A replica was launched (cold engine).  attrs: platform, warmup_delay,
#: state ("warming" or "active" for zero-delay launches).
REPLICA_LAUNCH = "replica.launch"

#: A warming replica finished its warm-up delay and became routable.
REPLICA_ACTIVATE = "replica.activate"

#: A replica stopped accepting placements and began draining resident work.
#: attrs: running, waiting (work left to drain).
REPLICA_DRAIN = "replica.drain"

#: A replica was released (drained or cancelled while warming).
REPLICA_RETIRE = "replica.retire"

#: A fault degraded or killed a replica.  attrs: cause ("crash",
#: "preemption-deadline", or "straggler"), plus killed / lost_tokens for
#: crashes and slowdown for stragglers.
REPLICA_FAIL = "replica.fail"

#: A degraded replica returned to full health (straggler window closed).
REPLICA_RECOVER = "replica.recover"

#: The autoscaler evaluated its policy.  attrs: target, provisioned, active,
#: warming, draining, saturation_rate, arrival_rate.
AUTOSCALE_DECISION = "autoscale.decision"

#: Canonical ordering of the taxonomy with a one-line description per event;
#: ``tools/trace_report.py`` and docs/observability.md render from this.
EVENT_TAXONOMY: dict[str, str] = {
    REQUEST_SUBMIT: "load generator produced an arrival",
    REQUEST_THROTTLED: "overload throttle rejected the arrival pre-queue",
    REQUEST_ROUTED: "router placed the request on a replica",
    REQUEST_REJECTED: "router/cluster rejected the request",
    REQUEST_DEFERRED: "router parked the request for a retry",
    REQUEST_QUEUED: "request entered an engine waiting queue",
    REQUEST_ADMITTED: "scheduler admitted the request into the batch",
    REQUEST_FIRST_TOKEN: "prefill completed; first token delivered",
    REQUEST_FINISHED: "generation completed",
    REQUEST_EVICTED: "request evicted back to the waiting queue",
    REQUEST_RETRY: "fault sent the request back through the retry policy",
    REQUEST_MIGRATE: "queued request migrated off a preempted replica",
    SESSION_START: "first stage of a multi-turn session entered the system",
    SESSION_STAGE: "session stage completed, spawning the next turn",
    SESSION_END: "session finished its final stage or was abandoned",
    PREFIX_HIT: "admitted request reused a resident session prefix",
    PREFIX_MISS: "session request found no resident prefix on its replica",
    PREFIX_EVICT: "cached session prefix released under memory pressure",
    ENGINE_STEP: "eventful continuous-batching iteration (span)",
    ENGINE_JUMP: "event-jump macro-step of fused iterations (span)",
    REPLICA_LAUNCH: "replica launched (cold engine)",
    REPLICA_ACTIVATE: "replica finished warm-up and became routable",
    REPLICA_DRAIN: "replica began draining resident work",
    REPLICA_RETIRE: "replica released",
    REPLICA_FAIL: "fault degraded or killed a replica",
    REPLICA_RECOVER: "degraded replica returned to full health",
    AUTOSCALE_DECISION: "autoscaler evaluated its sizing policy",
}

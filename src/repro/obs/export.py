"""Exporters: Chrome ``trace_event`` JSON and request-phase span derivation.

:func:`chrome_trace` converts a list of :class:`~repro.obs.tracer.TraceEvent`
records (or a JSONL trace file) into the Chrome trace-event format that
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

* one *process* (``pid``) per replica, named ``replica-N``, plus a ``fleet``
  process for fleet-level events (arrivals, routing, autoscale decisions);
* an ``engine`` thread per replica carrying ``engine.step`` and
  ``engine.jump`` complete-spans (``ph: "X"``), so the timeline shows exactly
  where simulated time went — fused macro-steps render as wide single slices;
* per-request *async* span pairs (``ph: "b"`` / ``"e"``, one id per request)
  for each lifecycle phase — ``queued``, ``prefill``, ``decode`` — derived
  from the lifecycle events by :func:`derive_request_phases`;
* instant events (``ph: "i"``) for decisions and point occurrences
  (routing, rejections, throttles, evictions, autoscale, replica lifecycle).

Timestamps are simulation seconds scaled to microseconds (the trace-event
unit), so one simulated second reads as one millisecond-scale slice in the
UI at default zoom.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.obs import events as ev
from repro.obs.tracer import TraceEvent, iter_events

#: pid used for events not attributed to any replica.
FLEET_PID = 0

#: phases a request moves through, in lifecycle order.
REQUEST_PHASES = ("queued", "prefill", "decode")

#: events rendered as instants on the timeline (everything that is neither a
#: span nor consumed by phase derivation).
_INSTANT_EVENTS = {
    ev.REQUEST_THROTTLED,
    ev.REQUEST_ROUTED,
    ev.REQUEST_REJECTED,
    ev.REQUEST_DEFERRED,
    ev.REQUEST_EVICTED,
    ev.REQUEST_RETRY,
    ev.REQUEST_MIGRATE,
    ev.REPLICA_LAUNCH,
    ev.REPLICA_ACTIVATE,
    ev.REPLICA_DRAIN,
    ev.REPLICA_RETIRE,
    ev.REPLICA_FAIL,
    ev.REPLICA_RECOVER,
    ev.AUTOSCALE_DECISION,
    ev.SESSION_START,
    ev.SESSION_STAGE,
    ev.SESSION_END,
    ev.PREFIX_HIT,
    ev.PREFIX_MISS,
    ev.PREFIX_EVICT,
}


@dataclass(frozen=True)
class RequestPhase:
    """One derived lifecycle interval of one request.

    ``complete`` is ``False`` when the trace ended before the phase closed
    (the end is then clamped to the last event time in the trace).
    """

    request_id: str
    name: str
    start: float
    end: float
    replica: int | None = None
    complete: bool = True

    @property
    def duration(self) -> float:
        """Span length in simulation seconds."""
        return self.end - self.start


def derive_request_phases(source: Iterable[TraceEvent] | str | Path) -> list[RequestPhase]:
    """Reconstruct per-request ``queued``/``prefill``/``decode`` phases.

    Phase boundaries come from the lifecycle events: ``queued`` runs from
    queue entry (or submission, for runs traced only at the simulator level)
    to admission, ``prefill`` from admission to the first token, ``decode``
    from the first token to completion.  An eviction closes the open phase
    and reopens ``queued``, so re-queued requests contribute one interval per
    residency; fault retries and migrations do the same but back at the
    fleet level.  Phases still open when the trace ends are clamped to the last
    event time and flagged ``complete=False``.
    """
    events = iter_events(source)
    phases: list[RequestPhase] = []
    # request_id -> (phase name, start time, replica)
    open_phase: dict[str, tuple[str, float, int | None]] = {}
    last_time = 0.0
    for event in events:
        last_time = max(last_time, event.time + event.duration)
        rid = event.request_id
        if rid is None:
            continue

        def close(end: float, rid: str = rid) -> None:
            name, start, replica = open_phase.pop(rid)
            phases.append(RequestPhase(rid, name, start, end, replica))

        if event.name in (ev.REQUEST_QUEUED, ev.REQUEST_SUBMIT):
            # A queued event after a submit refines the start; keep the
            # earliest open marker and adopt the replica once known.  But a
            # queued event on a *different* replica than the open span is a
            # hand-off (evicted on one replica, then migrated before
            # re-admission): split at the boundary so neither replica is
            # charged for the other's wait.  An open prefill/decode span at
            # that point is likewise closed rather than silently discarded.
            if rid not in open_phase:
                open_phase[rid] = ("queued", event.time, event.replica)
            elif event.name == ev.REQUEST_QUEUED:
                name, start, replica = open_phase[rid]
                crossed = (
                    replica is not None
                    and event.replica is not None
                    and replica != event.replica
                )
                if name != "queued" or crossed:
                    close(event.time)
                    start = event.time
                open_phase[rid] = ("queued", start, event.replica)
        elif event.name == ev.REQUEST_ADMITTED:
            if rid in open_phase:
                close(event.time)
            open_phase[rid] = ("prefill", event.time, event.replica)
        elif event.name == ev.REQUEST_FIRST_TOKEN:
            if rid in open_phase:
                close(event.time)
            open_phase[rid] = ("decode", event.time, event.replica)
        elif event.name in (ev.REQUEST_EVICTED, ev.REQUEST_RETRY, ev.REQUEST_MIGRATE):
            # Eviction re-queues on the same replica; fault retries and
            # migrations send the request back to the router (replica unknown
            # until the next request.queued refines it).
            if rid in open_phase:
                close(event.time)
            replica = event.replica if event.name == ev.REQUEST_EVICTED else None
            open_phase[rid] = ("queued", event.time, replica)
        elif event.name in (ev.REQUEST_FINISHED, ev.REQUEST_THROTTLED, ev.REQUEST_REJECTED):
            # Terminal outcomes close whatever was open (a throttled or
            # rejected request closes the queued span opened at submission).
            if rid in open_phase:
                close(event.time)
    for rid, (name, start, replica) in sorted(open_phase.items()):
        phases.append(
            RequestPhase(rid, name, start, max(last_time, start), replica, complete=False)
        )
    return phases


def _us(seconds: float) -> float:
    """Simulation seconds to trace-event microseconds."""
    return seconds * 1e6


def _pid(replica: int | None) -> int:
    """Replica index to trace pid (replicas start at 1; 0 is the fleet)."""
    return FLEET_PID if replica is None else replica + 1


def chrome_trace(source: Iterable[TraceEvent] | str | Path) -> dict:
    """Build a Chrome trace-event document from a trace.

    Returns the top-level dict (``{"traceEvents": [...], ...}``); every
    entry carries the ``ph``/``ts``/``pid`` keys loaders require.
    """
    events = iter_events(source)
    trace_events: list[dict] = []
    pids_seen: set[int] = set()

    def note_pid(pid: int) -> None:
        pids_seen.add(pid)

    for event in events:
        pid = _pid(event.replica)
        note_pid(pid)
        if event.name in (ev.ENGINE_STEP, ev.ENGINE_JUMP):
            trace_events.append(
                {
                    "name": event.attrs.get("source", event.name),
                    "cat": "engine",
                    "ph": "X",
                    "ts": _us(event.time),
                    "dur": _us(event.duration),
                    "pid": pid,
                    "tid": 1,
                    "args": dict(event.attrs),
                }
            )
        elif event.name in _INSTANT_EVENTS:
            args = dict(event.attrs)
            if event.request_id is not None:
                args["request_id"] = event.request_id
            trace_events.append(
                {
                    "name": event.name,
                    "cat": "fleet" if event.replica is None else "engine",
                    "ph": "i",
                    "ts": _us(event.time),
                    "pid": pid,
                    "tid": 0,
                    "s": "p",
                    "args": args,
                }
            )

    for phase in derive_request_phases(events):
        pid = _pid(phase.replica)
        note_pid(pid)
        common = {
            "cat": "request",
            "id": phase.request_id,
            "pid": pid,
            "tid": 0,
            "args": {"request_id": phase.request_id, "complete": phase.complete},
        }
        trace_events.append(
            {"name": phase.name, "ph": "b", "ts": _us(phase.start), **common}
        )
        trace_events.append({"name": phase.name, "ph": "e", "ts": _us(phase.end), **common})

    metadata = []
    for pid in sorted(pids_seen):
        process = "fleet" if pid == FLEET_PID else f"replica-{pid - 1}"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
        if pid != FLEET_PID:
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": "engine"},
                }
            )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.export", "time_unit": "simulated-seconds-as-us"},
    }


def write_chrome_trace(source: Iterable[TraceEvent] | str | Path, path: str | Path) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the output path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(source)) + "\n")
    return path


def export_chrome_trace(jsonl_path: str | Path, out_path: str | Path) -> Path:
    """Convert a :class:`~repro.obs.tracer.JsonlTracer` file to a Chrome trace."""
    return write_chrome_trace(jsonl_path, out_path)

"""Tracer implementations: null (default), bounded ring, and JSONL stream.

A tracer receives :class:`TraceEvent` records from the simulators.  Emission
sites throughout the stack are guarded by the tracer's :attr:`~Tracer.enabled`
flag (hot paths cache it), so the default :class:`NullTracer` costs one
attribute read per *eventful* iteration and nothing on fused macro-steps —
simulation results are byte-identical whether or not a tracer is attached.

Pick an implementation by what you can afford to keep:

* :class:`NullTracer` — nothing; the default everywhere.
* :class:`RingTracer` — the last ``capacity`` events in memory, evicting the
  oldest first.  Constant memory, so it can stay attached to very long runs
  (the ROADMAP's million-request streaming scenarios) as a flight recorder.
* :class:`JsonlTracer` — every event appended to a JSON-Lines file as it is
  emitted.  Unbounded but durable; the input format of
  ``tools/trace_report.py`` and the Chrome-trace exporter.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Mapping


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped observation emitted by a simulator layer.

    Attributes:
        name: taxonomy name (see :mod:`repro.obs.events`), dot-separated
            ``subsystem.what`` — e.g. ``"request.admitted"``.
        time: simulation clock at the observation, in seconds.
        request_id: the request the event concerns, when it concerns one.
        replica: fleet replica index the event occurred on (``None`` for
            fleet-level events and single-engine runs, which use replica 0
            at export time).
        duration: span length in simulation seconds for events that cover an
            interval (engine steps and jumps); 0.0 for instants.
        attrs: small JSON-serialisable payload of event-specific fields
            (tenant ids, reject reasons, fused step counts, router signals).
    """

    name: str
    time: float
    request_id: str | None = None
    replica: int | None = None
    duration: float = 0.0
    attrs: Mapping = field(default_factory=dict)

    def to_json(self) -> dict:
        """Flat JSON-serialisable form (the JSONL line payload)."""
        record: dict = {"name": self.name, "time": self.time}
        if self.request_id is not None:
            record["request_id"] = self.request_id
        if self.replica is not None:
            record["replica"] = self.replica
        if self.duration:
            record["duration"] = self.duration
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_json(cls, record: Mapping) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_json` form."""
        return cls(
            name=record["name"],
            time=record["time"],
            request_id=record.get("request_id"),
            replica=record.get("replica"),
            duration=record.get("duration", 0.0),
            attrs=record.get("attrs", {}),
        )


class Tracer:
    """Interface every tracer implements (and the base of the real ones).

    Emission sites check :attr:`enabled` before *constructing* an event, so a
    disabled tracer never allocates; implementations that record must leave
    ``enabled = True``.  ``close()`` releases any resources and is idempotent.
    """

    #: whether emission sites should build and deliver events at all.
    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        """Record one event; must not mutate any simulation state."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (flush files); safe to call more than once."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """The zero-overhead default: drops everything, reports ``enabled=False``.

    Every simulator parameter defaulting to "no tracing" resolves to the
    module-level :data:`NULL_TRACER` singleton, so identity comparison and
    the ``enabled`` guard are both valid ways to skip work.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        """Drop the event (emission sites normally never get this far)."""


#: Shared no-op tracer instance used as the default everywhere.
NULL_TRACER = NullTracer()


class RingTracer(Tracer):
    """Bounded in-memory tracer keeping the most recent ``capacity`` events.

    Args:
        capacity: maximum events retained; older events are evicted
            oldest-first once the ring is full (:attr:`dropped` counts them).
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: events evicted so far to honour the capacity bound.
        self.dropped = 0
        #: events ever emitted (retained + dropped).
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        """Append the event, evicting the oldest when at capacity."""
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.emitted += 1

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class JsonlTracer(Tracer):
    """Streaming tracer appending one JSON object per event to a file.

    The file is opened lazily on the first emission (so constructing a tracer
    never touches the filesystem).  Each event is serialised to a complete
    line *before* anything is written, delivered in a single ``write``, and
    flushed immediately — so a simulation that dies mid-run (or a chaos
    experiment that crashes on purpose) leaves a trace of whole records, never
    a truncated half-line.  Use the tracer as a context manager to guarantee
    the file is closed even when the traced run raises::

        with JsonlTracer("run.jsonl") as tracer:
            simulator = ClusterSimulator(..., tracer=tracer)
            simulator.run(...)

    Lines are self-contained JSON objects in emission order — the interchange
    format of :func:`read_jsonl_trace`, ``tools/trace_report.py``, and
    :func:`repro.obs.export.export_chrome_trace`.

    Args:
        path: output file; parent directories are created as needed.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = None
        #: events written so far.
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        """Serialise and append one event as one atomic, flushed line."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w")
        # Serialise fully before touching the file: a failing to_json/dumps
        # (e.g. a non-serialisable attr) must not leave a partial record.
        line = json.dumps(event.to_json(), separators=(",", ":")) + "\n"
        self._file.write(line)
        self._file.flush()
        self.emitted += 1

    def flush(self) -> None:
        """Push buffered lines to disk without closing (no-op when unopened)."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush and close the output file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None


def read_jsonl_trace(path: str | Path) -> list[TraceEvent]:
    """Load a :class:`JsonlTracer` output file back into events.

    Blank lines are ignored; malformed lines raise ``ValueError`` with the
    line number so truncated traces fail loudly rather than silently.
    """
    events: list[TraceEvent] = []
    with Path(path).open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as error:
                raise ValueError(f"{path}:{number}: malformed trace line ({error})") from error
    return events


def iter_events(source: Iterable[TraceEvent] | str | Path) -> list[TraceEvent]:
    """Normalise an exporter input: a path loads JSONL, an iterable is listed."""
    if isinstance(source, (str, Path)):
        return read_jsonl_trace(source)
    return list(source)

"""Shared ergonomics for the name-based component registries.

Routers (:mod:`repro.serving.routing`), admission schedulers
(:mod:`repro.schedulers.registry`), and autoscaling policies
(:mod:`repro.serving.autoscale`) are all constructed by registry name from
experiment configs, benchmark parametrizations, and the command line.  The
failure modes are therefore always the same — a misspelled name, or a keyword
argument meant for a different component — and deserve the same helpful
errors everywhere:

* an unknown name lists the registered names (sorted, so the message is
  deterministic and grep-able) and suggests the closest match for likely
  typos, and
* an unknown keyword argument is rejected *before* the constructor runs,
  listing the keywords the chosen factory actually accepts (with a
  did-you-mean suggestion), instead of surfacing as a bare ``TypeError``
  from deep inside ``__init__``.
"""

from __future__ import annotations

import difflib
import inspect
from typing import Callable, Iterable, Mapping, TypeVar

T = TypeVar("T")


def _suggestion(unknown: str, known: Iterable[str]) -> str:
    """``"; did you mean 'x'?"`` for the closest known name, or ``""``."""
    matches = difflib.get_close_matches(unknown, list(known), n=1, cutoff=0.6)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def accepted_kwargs(factory: Callable[..., object]) -> list[str] | None:
    """Keyword names a factory accepts, or ``None`` if it takes ``**kwargs``.

    Factories whose signature cannot be introspected (builtins, C
    extensions) are treated like ``**kwargs`` factories: validation is
    skipped and the constructor's own error surfaces.
    """
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - non-introspectable
        return None
    names: list[str] = []
    for name, parameter in parameters.items():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.append(name)
    return names


def instantiate(
    kind: str,
    registry: Mapping[str, Callable[..., T]],
    name: str,
    kwargs: Mapping[str, object],
) -> T:
    """Build a registered component, with helpful unknown-name/kwarg errors.

    Args:
        kind: human-readable component kind for error messages
            (e.g. ``"router"``).
        registry: name-to-factory mapping.
        name: registry key to instantiate.
        kwargs: keyword arguments forwarded to the factory.

    Raises:
        KeyError: if ``name`` is not registered.
        TypeError: if ``kwargs`` contains names the factory does not accept.
    """
    try:
        factory = registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(
            f"unknown {kind} {name!r}; known: {known}{_suggestion(name, registry)}"
        ) from None
    accepted = accepted_kwargs(factory)
    if accepted is not None:
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            raise TypeError(
                f"{kind} {name!r} got unexpected keyword arguments "
                f"{unknown}; accepted: {sorted(accepted)}"
                f"{_suggestion(unknown[0], accepted)}"
            )
    return factory(**kwargs)

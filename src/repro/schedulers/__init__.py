"""Admission-control schedulers: the paper's baselines plus the registry.

The Past-Future scheduler itself lives in :mod:`repro.core.past_future`; it is
exposed here lazily (module ``__getattr__``) so that
``from repro.schedulers import PastFutureScheduler`` works without creating a
circular import with :mod:`repro.core`.
"""

from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.schedulers.conservative import ConservativeScheduler
from repro.schedulers.fair import (
    ANONYMOUS_TENANT,
    VirtualTokenCounterScheduler,
    WeightedServiceCounterScheduler,
)
from repro.schedulers.oracle import OracleScheduler
from repro.schedulers.registry import (
    SCHEDULER_REGISTRY,
    available_schedulers,
    create_scheduler,
)

__all__ = [
    "PastFutureScheduler",
    "AggressiveScheduler",
    "Scheduler",
    "SchedulingContext",
    "ConservativeScheduler",
    "OracleScheduler",
    "ANONYMOUS_TENANT",
    "VirtualTokenCounterScheduler",
    "WeightedServiceCounterScheduler",
    "SCHEDULER_REGISTRY",
    "available_schedulers",
    "create_scheduler",
]


def __getattr__(name: str):
    if name == "PastFutureScheduler":
        from repro.core.past_future import PastFutureScheduler

        return PastFutureScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Aggressive scheduler (vLLM style).

The aggressive scheduler ignores how much memory the *outputs* of requests
will eventually need: a candidate is admitted as soon as its prompt fits into
the currently free memory, up to a configurable *watermark* fraction of the
capacity kept free as headroom for near-term decode growth.

Under light load this behaves perfectly, but under heavy decode-heavy load the
running batch keeps growing after admission, the pool overflows, and requests
must be evicted and recomputed — exactly the failure mode the Past-Future
scheduler is designed to avoid.
"""

from __future__ import annotations

from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext


class AggressiveScheduler(Scheduler):
    """Admit while current occupancy plus prompts stays under the watermark.

    Args:
        watermark: fraction of the capacity the scheduler is willing to fill
            with *current* tokens at admission time (the paper evaluates 90%,
            95% and 99%).
        max_running_requests: optional hard cap on the running batch size.
    """

    name = "aggressive"

    def __init__(self, watermark: float = 0.99, max_running_requests: int | None = None) -> None:
        if not 0.0 < watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")
        self.watermark = watermark
        self.max_running_requests = max_running_requests

    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        budget = int(context.token_capacity * self.watermark)
        occupied = context.running_context_tokens
        admitted: list[Request] = []
        for candidate in context.waiting:
            candidate_cost = candidate.current_context_tokens
            if occupied + candidate_cost <= budget:
                admitted.append(candidate)
                occupied += candidate_cost
            else:
                break
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    def saturated_no_admit_horizon(self, context: SchedulingContext, max_steps: int) -> int:
        """Prove no-admit for a whole uniform-decode window at once.

        The watermark test compares *current* occupancy plus the head's
        prompt against the budget.  During uniform decode the occupancy only
        grows (by the batch size every iteration) while the head's footprint
        is constant, so if the head does not fit now it cannot fit at any
        later iteration of the window either — one comparison proves the
        whole horizon.
        """
        if max_steps <= 0 or not context.waiting or not context.running:
            return 0
        if self._batch_cap_blocks_window(context):
            return max_steps
        budget = int(context.token_capacity * self.watermark)
        occupied = context.running_context_tokens
        head_cost = context.waiting[0].current_context_tokens
        return max_steps if occupied + head_cost > budget else 0

    def describe(self) -> str:
        return f"aggressive (watermark={self.watermark:.0%})"

"""Scheduler interface shared by the Past-Future scheduler and the baselines.

Every scheduler answers one question per continuous-batching iteration: *which
waiting requests should join the running batch right now?*  The engine hands
it a :class:`SchedulingContext` snapshot and expects back an ordered list of
requests to admit.  The paper's schedulers are FCFS over admission order (they
admit a prefix of the queue, deciding only *when*, not *who first*); fair
schedulers (:mod:`repro.schedulers.fair`) additionally reorder admission
across tenants, which the engine supports — admitted requests may be any
subset of the waiting queue, in any order.

Schedulers also receive lifecycle callbacks so that history-based policies
(the Past-Future scheduler) can observe finished output lengths and
service-accounting policies can observe arrivals and completions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.engine.request import Request


@dataclass
class SchedulingContext:
    """Snapshot of the serving system handed to a scheduler each iteration."""

    #: current simulation time in seconds.
    time: float
    #: continuous-batching iteration counter.
    step: int
    #: requests currently resident in the KV cache, admission order.
    running: list[Request]
    #: requests waiting for admission, in queue order (evicted requests are
    #: re-queued at the front by the engine).
    waiting: list[Request]
    #: total KV-cache token slots of the platform.
    token_capacity: int
    #: token slots currently occupied.
    used_tokens: int

    @property
    def free_tokens(self) -> int:
        """Token slots not currently occupied."""
        return self.token_capacity - self.used_tokens

    @property
    def running_context_tokens(self) -> int:
        """KV tokens held by the running batch (prompt + generated)."""
        return sum(r.current_context_tokens for r in self.running)


class Scheduler(abc.ABC):
    """Admission-control policy for continuous batching."""

    #: human-readable policy name used in tables and figures.
    name: str = "abstract"

    #: hard cap on concurrently running requests (``None`` = unlimited).  Real
    #: frameworks bound the batch size; the paper's experiments never hit it.
    max_running_requests: int | None = None

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> list[Request]:
        """Return the waiting requests to admit this iteration, in order.

        Implementations must return requests drawn from ``context.waiting``
        (each at most once) and must not mutate the context.  FCFS policies
        return a prefix of the queue; fair policies may return requests in a
        policy-chosen order — the engine admits them exactly in the returned
        order, stopping at the first one whose KV footprint does not fit.
        """

    # -------------------------------------------------- saturated-phase jumps
    def saturated_no_admit_horizon(self, context: SchedulingContext, max_steps: int) -> int:
        """How many upcoming iterations provably admit nothing (fast path).

        While the waiting queue is non-empty the engine must consult the
        scheduler every iteration, which blocks the event-jump fast path.
        This hook lets a scheduler *prove* that its next ``max_steps``
        admission decisions would all return the empty list, so the engine
        may fuse those iterations into one macro-step
        (:meth:`repro.engine.engine.InferenceEngine.try_jump_saturated`).

        ``context`` describes the *first* upcoming iteration.  The engine
        guarantees the proof window is a **uniform decode phase**: batch
        membership is fixed, every resident is decoding and grows by exactly
        one token per iteration, nothing finishes or is evicted, and the
        waiting queue (in particular its head) is unchanged.  Implementations
        must model that drift themselves (e.g. occupancy grows by the batch
        size each iteration); a policy that depends on anything else —
        wall-clock time, the step counter, state this base class does not
        know about — must return 0, which is always safe and simply falls
        back to the reference loop.

        Returning ``k > 0`` is a *bit-identity contract*: for each of the
        next ``k`` iterations, :meth:`schedule` — with whatever randomness it
        would have drawn — would admit nothing.  RNG-consuming schedulers
        must additionally advance their stream state for fused iterations in
        :meth:`on_saturated_steps_fused` so a later reference-path
        consultation sees exactly the generator position it would have seen
        had every iteration been stepped individually.

        Must not mutate observable scheduling state (the engine may fuse
        fewer iterations than the returned horizon, or none at all).
        """
        return 0

    def on_saturated_steps_fused(self, steps: int) -> None:
        """Commit ``steps`` fused no-admit iterations (advance RNG bookkeeping).

        Called by the engine exactly once per saturated macro-step, with the
        number of iterations actually fused (``<=`` the horizon previously
        returned).  Stateless schedulers need not override this.
        """

    def _batch_cap_blocks_window(self, context: SchedulingContext) -> bool:
        """Whether the batch cap alone proves a whole no-admit window.

        With ``max_running_requests`` reached, :meth:`_respect_batch_cap`
        trims every admission to nothing, and batch membership is fixed for
        the duration of a uniform-decode window — so the decision is "admit
        nothing" for as long as the window lasts.  Only valid for policies
        that draw **no randomness**: an RNG-consuming scheduler's admission
        loop may consume a data-dependent number of draws before the trim,
        so it must not use this shortcut.
        """
        return (
            self.max_running_requests is not None
            and len(context.running) >= self.max_running_requests
        )

    # ---------------------------------------------------------- observability
    def trace_signals(self) -> dict:
        """Policy-specific attributes attached to ``request.admitted`` events.

        Returns a small JSON-serialisable mapping of the internal signals
        behind the policy's admission decisions (service counters, queue
        weights, ...).  Only consulted when a tracer is attached, so
        overrides may do modest per-call work; stateless policies inherit
        the empty default.
        """
        return {}

    # ------------------------------------------------------------- lifecycle
    def on_request_submitted(self, request: Request) -> None:
        """Called by the engine when a new request enters the waiting queue.

        Fires once per request, at :meth:`InferenceEngine.submit` time — not
        on eviction re-queuing.  Service-accounting policies (the fair
        schedulers) use this to observe tenant arrivals; stateless policies
        need not override it.
        """

    def on_request_finished(self, request: Request, time: float) -> None:
        """Called by the engine when a request completes generation."""

    def on_request_evicted(self, request: Request, time: float) -> None:
        """Called by the engine when a request is evicted from the batch."""

    def on_run_start(self) -> None:
        """Called once before a simulation run begins (reset mutable state)."""

    # -------------------------------------------------------------- utilities
    def _respect_batch_cap(self, context: SchedulingContext, admitted: list[Request]) -> list[Request]:
        """Trim an admission list so the running batch stays under the cap."""
        if self.max_running_requests is None:
            return admitted
        slots = self.max_running_requests - len(context.running)
        return admitted[: max(slots, 0)]

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"

"""Scheduler interface shared by the Past-Future scheduler and the baselines.

Every scheduler answers one question per continuous-batching iteration: *which
waiting requests should join the running batch right now?*  The engine hands
it a :class:`SchedulingContext` snapshot and expects back an ordered list of
requests to admit (always a prefix-respecting subset of the waiting queue —
schedulers here are FCFS over admission order, they only decide *when*, not
*who first*, matching the paper).

Schedulers also receive lifecycle callbacks so that history-based policies
(the Past-Future scheduler) can observe finished output lengths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.engine.request import Request


@dataclass
class SchedulingContext:
    """Snapshot of the serving system handed to a scheduler each iteration."""

    #: current simulation time in seconds.
    time: float
    #: continuous-batching iteration counter.
    step: int
    #: requests currently resident in the KV cache, admission order.
    running: list[Request]
    #: requests waiting for admission, in queue order (evicted requests are
    #: re-queued at the front by the engine).
    waiting: list[Request]
    #: total KV-cache token slots of the platform.
    token_capacity: int
    #: token slots currently occupied.
    used_tokens: int

    @property
    def free_tokens(self) -> int:
        """Token slots not currently occupied."""
        return self.token_capacity - self.used_tokens

    @property
    def running_context_tokens(self) -> int:
        """KV tokens held by the running batch (prompt + generated)."""
        return sum(r.current_context_tokens for r in self.running)


class Scheduler(abc.ABC):
    """Admission-control policy for continuous batching."""

    #: human-readable policy name used in tables and figures.
    name: str = "abstract"

    #: hard cap on concurrently running requests (``None`` = unlimited).  Real
    #: frameworks bound the batch size; the paper's experiments never hit it.
    max_running_requests: int | None = None

    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> list[Request]:
        """Return the waiting requests to admit this iteration, in order.

        Implementations must return requests drawn from ``context.waiting``
        preserving their relative order, and must not mutate the context.
        """

    # ------------------------------------------------------------- lifecycle
    def on_request_finished(self, request: Request, time: float) -> None:
        """Called by the engine when a request completes generation."""

    def on_request_evicted(self, request: Request, time: float) -> None:
        """Called by the engine when a request is evicted from the batch."""

    def on_run_start(self) -> None:
        """Called once before a simulation run begins (reset mutable state)."""

    # -------------------------------------------------------------- utilities
    def _respect_batch_cap(self, context: SchedulingContext, admitted: list[Request]) -> list[Request]:
        """Trim an admission list so the running batch stays under the cap."""
        if self.max_running_requests is None:
            return admitted
        slots = self.max_running_requests - len(context.running)
        return admitted[: max(slots, 0)]

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"

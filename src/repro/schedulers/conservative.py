"""Conservative scheduler (TGI / DeepSpeed-MII / TensorRT-LLM style).

A conservative scheduler assumes every request will generate its full
``max_new_tokens`` budget.  A candidate is admitted only if the sum of the
worst-case footprints of all resident requests plus the candidate fits within
the capacity.  That guarantee means no eviction can ever be needed, but the
worst case is so pessimistic (real outputs rarely approach the cap) that most
of the memory sits idle and requests queue for a long time, breaking the TTFT
SLA under load.

The paper also evaluates an *overcommit* variant, where the scheduler pretends
the capacity is ``overcommit`` times larger; this recovers some utilisation at
the price of (often many) evictions.
"""

from __future__ import annotations

from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext


class ConservativeScheduler(Scheduler):
    """Admit only if worst-case (prompt + max_new_tokens) footprints all fit.

    Args:
        overcommit: multiplier applied to the capacity when checking the
            worst-case sum.  ``1.0`` is the strict conservative scheduler
            ("no overcommit" in Table 1); ``1.5`` corresponds to the paper's
            ``overcommit=150%`` configuration.
        max_running_requests: optional hard cap on the running batch size.
    """

    name = "conservative"

    def __init__(self, overcommit: float = 1.0, max_running_requests: int | None = None) -> None:
        if overcommit <= 0:
            raise ValueError("overcommit must be positive")
        self.overcommit = overcommit
        self.max_running_requests = max_running_requests

    @staticmethod
    def _worst_case_tokens(request: Request) -> int:
        """Worst-case final footprint: prompt + the full generation cap."""
        return request.prompt_tokens + request.spec.max_new_tokens

    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        budget = int(context.token_capacity * self.overcommit)
        committed = sum(self._worst_case_tokens(r) for r in context.running)
        admitted: list[Request] = []
        for candidate in context.waiting:
            candidate_cost = self._worst_case_tokens(candidate)
            if committed + candidate_cost <= budget:
                admitted.append(candidate)
                committed += candidate_cost
            else:
                break
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    def saturated_no_admit_horizon(self, context: SchedulingContext, max_steps: int) -> int:
        """Prove no-admit for a whole uniform-decode window at once.

        Worst-case footprints (prompt + generation cap) do not change as a
        request decodes, so the committed sum of a fixed-membership batch is
        constant across the window: if the head does not fit now, it does not
        fit at any iteration until membership changes (which ends the window
        by definition).
        """
        if max_steps <= 0 or not context.waiting or not context.running:
            return 0
        if self._batch_cap_blocks_window(context):
            return max_steps
        budget = int(context.token_capacity * self.overcommit)
        committed = sum(self._worst_case_tokens(r) for r in context.running)
        head_cost = self._worst_case_tokens(context.waiting[0])
        return max_steps if committed + head_cost > budget else 0

    def describe(self) -> str:
        if self.overcommit == 1.0:
            return "conservative (no overcommit)"
        return f"conservative (overcommit={self.overcommit:.0%})"

"""Fair admission across tenants: Virtual Token Counter scheduling.

The paper's schedulers decide *when* to admit but keep FCFS order, so a
heavy-tail tenant (see :mod:`repro.workloads.tenants`) that floods the queue
monopolises every admission slot.  The Virtual Token Counter (VTC) discipline
from the LLM fair-serving literature fixes the *who first* half:

* every tenant (a request's ``user_id``; tenant-less requests share one
  anonymous tenant) carries a **virtual counter** of the service it has
  received;
* admission considers waiting requests in order of **lowest tenant counter**
  (FIFO among a tenant's own requests), under the same current-occupancy
  watermark test as the :class:`~repro.schedulers.aggressive.AggressiveScheduler`;
* on completion a request **charges** its tenant the actual service it
  consumed — ``prefill_weight * prompt_tokens + decode_weight *
  generated_tokens``;
* a tenant that arrives (or returns) after sitting idle is **lifted** to the
  minimum counter among currently active tenants, so accumulated "credit"
  from a quiet period cannot be spent monopolising the batch later.

The weighted variant (:class:`WeightedServiceCounterScheduler`) divides each
charge by a per-tenant weight, so a weight-2 tenant accrues debt half as fast
and receives roughly twice the service share — the knob for paid tiers.

With no tenants configured every request maps to the shared anonymous
tenant, ordering degenerates to FIFO, and the policy is behaviourally
identical to the aggressive watermark baseline — existing untenanted
experiments are not perturbed.

Both schedulers are deterministic (no RNG), so the saturated-phase event
jump only needs the watermark argument: during a uniform-decode window the
counters are frozen (no arrivals, no completions), the queue is frozen, and
occupancy only grows — one comparison against the lowest-counter candidate
proves a whole no-admit window (see
:meth:`~repro.schedulers.base.Scheduler.saturated_no_admit_horizon`).
"""

from __future__ import annotations

import heapq
from typing import Mapping

from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext

#: Counter key shared by every request without a ``user_id``; with no tenants
#: configured all traffic lands here and VTC degenerates to FIFO admission.
ANONYMOUS_TENANT = "anonymous"


class VirtualTokenCounterScheduler(Scheduler):
    """Admit the lowest-virtual-counter tenant first, under a watermark.

    Args:
        watermark: fraction of the KV capacity the scheduler is willing to
            fill with *current* tokens at admission time (the same knob as
            the aggressive baseline, so FCFS-vs-VTC comparisons isolate the
            admission *order*).
        prefill_weight: cost per prompt token charged on completion.
        decode_weight: cost per generated token charged on completion.
        max_running_requests: optional hard cap on the running batch size.
    """

    name = "vtc"

    def __init__(
        self,
        watermark: float = 0.95,
        prefill_weight: float = 1.0,
        decode_weight: float = 1.0,
        max_running_requests: int | None = None,
    ) -> None:
        if not 0.0 < watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")
        if prefill_weight < 0 or decode_weight < 0:
            raise ValueError("service weights must be non-negative")
        if prefill_weight == 0 and decode_weight == 0:
            raise ValueError("at least one service weight must be positive")
        self.watermark = watermark
        self.prefill_weight = prefill_weight
        self.decode_weight = decode_weight
        self.max_running_requests = max_running_requests
        #: accumulated (weighted) service per tenant.
        self._counters: dict[str, float] = {}
        #: requests currently inside the engine (waiting or running) per
        #: tenant; a tenant with zero entries is *inactive* and gets lifted
        #: on its next arrival.
        self._active: dict[str, int] = {}

    # ------------------------------------------------------------- accounting
    def _tenant(self, request: Request) -> str:
        return request.spec.user_id or ANONYMOUS_TENANT

    def _weight(self, tenant: str) -> float:
        """Service weight of one tenant (charges divide by it)."""
        return 1.0

    def _service_tokens(self, request: Request) -> float:
        """Actual service a request consumed: weighted prefill + decode tokens."""
        return (
            self.prefill_weight * request.prompt_tokens
            + self.decode_weight * request.generated_tokens
        )

    def counter(self, tenant: str) -> float:
        """Current virtual counter of one tenant (0 if never charged)."""
        return self._counters.get(tenant, 0.0)

    def on_run_start(self) -> None:
        self._counters = {}
        self._active = {}

    def on_request_submitted(self, request: Request) -> None:
        """Lift a lagged tenant to the active minimum, then mark it active.

        The lift happens *on arrival* (not at the next consult), so it is a
        well-defined event in both the reference loop and the event-jump
        fast path — arrivals always end fusion windows.
        """
        tenant = self._tenant(request)
        if not self._active.get(tenant):
            floor = min(
                (self._counters.get(t, 0.0) for t, n in self._active.items() if n > 0),
                default=None,
            )
            if floor is not None and floor > self._counters.get(tenant, 0.0):
                self._counters[tenant] = floor
        self._active[tenant] = self._active.get(tenant, 0) + 1

    def on_request_finished(self, request: Request, time: float) -> None:
        """Charge the tenant the service actually consumed; retire if idle."""
        tenant = self._tenant(request)
        self._counters[tenant] = (
            self._counters.get(tenant, 0.0)
            + self._service_tokens(request) / self._weight(tenant)
        )
        remaining = self._active.get(tenant, 0) - 1
        if remaining > 0:
            self._active[tenant] = remaining
        else:
            self._active.pop(tenant, None)

    # -------------------------------------------------------------- admission
    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        waiting = context.waiting
        budget = int(context.token_capacity * self.watermark)
        occupied = context.running_context_tokens
        # Lowest committed counter first, FIFO within a tenant.  While
        # selecting, each pick *provisionally* charges its tenant (local to
        # this consult — real counters only move on completion), so one
        # zero-debt tenant with many queued requests cannot fill the whole
        # batch in a single consult; admission rotates across tenants.
        # Stale heap entries are lazily reinserted at the provisional value.
        provisional: dict[str, float] = {}
        heap = [
            (self._counters.get(self._tenant(candidate), 0.0), index)
            for index, candidate in enumerate(waiting)
        ]
        heapq.heapify(heap)
        admitted: list[Request] = []
        first_choice: Request | None = None
        while heap:
            pushed_counter, index = heapq.heappop(heap)
            candidate = waiting[index]
            tenant = self._tenant(candidate)
            current = provisional.get(tenant, self._counters.get(tenant, 0.0))
            if pushed_counter < current:
                heapq.heappush(heap, (current, index))
                continue
            if first_choice is None:
                first_choice = candidate
            cost = candidate.current_context_tokens
            if occupied + cost > budget:
                break
            admitted.append(candidate)
            occupied += cost
            provisional[tenant] = current + self._service_tokens(candidate) / self._weight(tenant)
        if not admitted and not context.running and first_choice is not None:
            # Bootstrap: an empty batch must make progress even when the
            # fairest candidate alone exceeds the watermark (same clause as
            # the aggressive baseline, applied to the VTC-ordered head).
            if first_choice.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(first_choice)
        return self._respect_batch_cap(context, admitted)

    def _first_candidate(self, waiting: list[Request]) -> Request:
        """The request :meth:`schedule` would consider first (lowest counter)."""
        counters = self._counters
        best = min(
            range(len(waiting)),
            key=lambda index: (
                counters.get(self._tenant(waiting[index]), 0.0),
                index,
            ),
        )
        return waiting[best]

    def saturated_no_admit_horizon(self, context: SchedulingContext, max_steps: int) -> int:
        """Prove no-admit for a whole uniform-decode window at once.

        Within the window no request arrives or finishes, so the virtual
        counters — and therefore the selection order — are frozen, the queue
        is unchanged, and occupancy only grows.  :meth:`schedule` stops at
        the first candidate that fails the watermark test, so if the
        lowest-counter candidate does not fit now, no iteration of the
        window admits anything: one comparison proves the whole horizon.
        Deterministic policy (no RNG), so nothing needs advancing in
        :meth:`on_saturated_steps_fused`.
        """
        if max_steps <= 0 or not context.waiting or not context.running:
            return 0
        if self._batch_cap_blocks_window(context):
            return max_steps
        budget = int(context.token_capacity * self.watermark)
        occupied = context.running_context_tokens
        head_cost = self._first_candidate(context.waiting).current_context_tokens
        return max_steps if occupied + head_cost > budget else 0

    def trace_signals(self) -> dict:
        """Virtual counters of the currently active tenants (rounded)."""
        return {
            "active_tenants": len(self._active),
            "counters": {
                tenant: round(self._counters.get(tenant, 0.0), 3)
                for tenant in sorted(self._active)
            },
        }

    def describe(self) -> str:
        return f"vtc (watermark={self.watermark:.0%})"


class WeightedServiceCounterScheduler(VirtualTokenCounterScheduler):
    """VTC with per-tenant service weights (paid tiers, internal priority).

    A tenant's completion charge is divided by its weight, so a weight-``w``
    tenant accrues virtual debt ``w`` times slower and receives roughly a
    ``w``-proportional share of contended admission slots.  Tenants not in
    the mapping use ``default_weight``.

    Args:
        weights: per-tenant (``user_id``) service weight; must be positive.
        default_weight: weight of tenants not in ``weights``.
        watermark / prefill_weight / decode_weight / max_running_requests:
            as for :class:`VirtualTokenCounterScheduler`.
    """

    name = "weighted-vtc"

    def __init__(
        self,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
        watermark: float = 0.95,
        prefill_weight: float = 1.0,
        decode_weight: float = 1.0,
        max_running_requests: int | None = None,
    ) -> None:
        super().__init__(
            watermark=watermark,
            prefill_weight=prefill_weight,
            decode_weight=decode_weight,
            max_running_requests=max_running_requests,
        )
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.weights = dict(weights or {})
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for tenant {tenant!r} must be positive")
        self.default_weight = default_weight

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def describe(self) -> str:
        return (
            f"weighted-vtc (watermark={self.watermark:.0%}, "
            f"{len(self.weights)} weighted tenants, default={self.default_weight:g})"
        )

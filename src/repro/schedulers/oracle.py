"""Theoretical-optimum scheduler (oracle).

Table 1 of the paper includes a "theoretical optimum" row: the best any
admission policy could do if the true output length of every request were
known in advance.  This scheduler implements that oracle — it runs the same
future-required-memory admission test as the Past-Future scheduler, but feeds
it the *true* remaining output lengths instead of sampled predictions and
reserves no headroom.

It is impossible in a real deployment (output lengths are unknown) but it
upper-bounds memory utilisation and lower-bounds decoding steps, which the
ablation benches compare against.
"""

from __future__ import annotations

import numpy as np

from repro.core.future_memory import FutureMemoryIndex, batched_peak_with_candidate
from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext


class OracleScheduler(Scheduler):
    """Future-memory admission using the hidden true output lengths."""

    name = "oracle"

    def __init__(self, max_running_requests: int | None = None) -> None:
        self.max_running_requests = max_running_requests

    @staticmethod
    def _entry(request: Request) -> tuple[int, int]:
        """(current_tokens, true_remaining) for one request."""
        return request.current_context_tokens, max(request.remaining_true_tokens, 0)

    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        entries = [self._entry(r) for r in context.running]
        # Incremental per-candidate admission (see PastFutureScheduler): sort
        # the running batch once, then each candidate is a searchsorted query.
        index = FutureMemoryIndex(
            [c for c, _ in entries],
            [r for _, r in entries],
        )
        admitted: list[Request] = []
        for candidate in context.waiting:
            cand_current, cand_remaining = self._entry(candidate)
            if index.peak_with(cand_current, cand_remaining) <= context.token_capacity:
                admitted.append(candidate)
                index.insert(cand_current, cand_remaining)
            else:
                break
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    def saturated_no_admit_horizon(self, context: SchedulingContext, max_steps: int) -> int:
        """Count upcoming iterations whose head-admission test provably fails.

        The oracle admits on *true* remaining lengths, so the window's
        decisions are fully determined: at iteration ``k`` of a uniform
        decode phase every resident has grown ``k`` tokens and has ``k``
        fewer remaining, while the head candidate is unchanged.  All
        ``max_steps`` what-if peaks are evaluated in one vectorized Eq. 2–4
        pass (:func:`repro.core.future_memory.batched_peak_with_candidate`)
        and the count of leading failures is returned.  (No monotonicity
        shortcut applies: as residents drain, the head's insertion position
        shifts, and its peak can fall as well as rise.)
        """
        if max_steps <= 0 or not context.waiting or not context.running:
            return 0
        if self._batch_cap_blocks_window(context):
            return max_steps
        head_current, head_remaining = self._entry(context.waiting[0])
        current = np.array(
            [r.current_context_tokens for r in context.running], dtype=np.int64
        )
        remaining = np.array(
            [max(r.remaining_true_tokens, 0) for r in context.running], dtype=np.int64
        )
        # The engine only asks about windows in which nobody finishes; clamp
        # anyway so a wider direct query cannot feed negative remainings into
        # the peak evaluation (iteration `min(remaining)` would deliver some
        # request's last token — a finish, which ends the window).
        max_steps = min(max_steps, int(remaining.min()))
        if max_steps <= 0:
            return 0
        offsets = np.arange(max_steps, dtype=np.int64)[:, None]
        peaks = batched_peak_with_candidate(
            current[None, :] + offsets,
            remaining[None, :] - offsets,
            head_current,
            np.full(max_steps, head_remaining, dtype=np.int64),
        )
        admit = peaks <= context.token_capacity
        return int(np.argmax(admit)) if admit.any() else max_steps

    def describe(self) -> str:
        return "theoretical optimum (oracle lengths)"

"""Theoretical-optimum scheduler (oracle).

Table 1 of the paper includes a "theoretical optimum" row: the best any
admission policy could do if the true output length of every request were
known in advance.  This scheduler implements that oracle — it runs the same
future-required-memory admission test as the Past-Future scheduler, but feeds
it the *true* remaining output lengths instead of sampled predictions and
reserves no headroom.

It is impossible in a real deployment (output lengths are unknown) but it
upper-bounds memory utilisation and lower-bounds decoding steps, which the
ablation benches compare against.
"""

from __future__ import annotations

from repro.core.future_memory import FutureMemoryIndex
from repro.engine.request import Request
from repro.schedulers.base import Scheduler, SchedulingContext


class OracleScheduler(Scheduler):
    """Future-memory admission using the hidden true output lengths."""

    name = "oracle"

    def __init__(self, max_running_requests: int | None = None) -> None:
        self.max_running_requests = max_running_requests

    @staticmethod
    def _entry(request: Request) -> tuple[int, int]:
        """(current_tokens, true_remaining) for one request."""
        return request.current_context_tokens, max(request.remaining_true_tokens, 0)

    def schedule(self, context: SchedulingContext) -> list[Request]:
        if not context.waiting:
            return []
        entries = [self._entry(r) for r in context.running]
        # Incremental per-candidate admission (see PastFutureScheduler): sort
        # the running batch once, then each candidate is a searchsorted query.
        index = FutureMemoryIndex(
            [c for c, _ in entries],
            [r for _, r in entries],
        )
        admitted: list[Request] = []
        for candidate in context.waiting:
            cand_current, cand_remaining = self._entry(candidate)
            if index.peak_with(cand_current, cand_remaining) <= context.token_capacity:
                admitted.append(candidate)
                index.insert(cand_current, cand_remaining)
            else:
                break
        if not admitted and not context.running and context.waiting:
            head = context.waiting[0]
            if head.current_context_tokens + 1 <= context.token_capacity:
                admitted.append(head)
        return self._respect_batch_cap(context, admitted)

    def describe(self) -> str:
        return "theoretical optimum (oracle lengths)"

"""Name-based scheduler construction for experiment configs and benches.

The Past-Future scheduler lives in :mod:`repro.core.past_future` (it is the
paper's contribution, not a baseline) and is imported lazily here to avoid a
circular import between :mod:`repro.core` and :mod:`repro.schedulers`.
"""

from __future__ import annotations

from typing import Callable

from repro.registry import instantiate
from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.conservative import ConservativeScheduler
from repro.schedulers.fair import (
    VirtualTokenCounterScheduler,
    WeightedServiceCounterScheduler,
)
from repro.schedulers.oracle import OracleScheduler

SchedulerFactory = Callable[..., Scheduler]


def _past_future_factory(**kwargs) -> Scheduler:
    from repro.core.past_future import PastFutureScheduler

    return PastFutureScheduler(**kwargs)


SCHEDULER_REGISTRY: dict[str, SchedulerFactory] = {
    "past-future": _past_future_factory,
    "aggressive": AggressiveScheduler,
    "conservative": ConservativeScheduler,
    "oracle": OracleScheduler,
    "vtc": VirtualTokenCounterScheduler,
    "weighted-vtc": WeightedServiceCounterScheduler,
}


def create_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name.

    Args:
        name: one of ``past-future``, ``aggressive``, ``conservative``,
            ``oracle``, ``vtc``, ``weighted-vtc``.
        **kwargs: forwarded to the scheduler constructor (e.g.
            ``reserved_fraction`` or ``watermark``).

    Raises:
        KeyError: if the name is unknown.
        TypeError: if a keyword argument is not accepted by the scheduler,
            listing the keywords it does accept (where introspectable).
    """
    return instantiate("scheduler", SCHEDULER_REGISTRY, name, kwargs)


def available_schedulers() -> list[str]:
    """Names of all registered schedulers."""
    return sorted(SCHEDULER_REGISTRY)

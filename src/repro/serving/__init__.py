"""Serving-system substrate: SLA specs, clients, simulators, routing, autoscaling."""

from repro.serving.autoscale import (
    AUTOSCALE_POLICY_REGISTRY,
    AutoscaleDecision,
    Autoscaler,
    AutoscalerPolicy,
    FleetView,
    PredictivePolicy,
    ReactivePolicy,
    StaticPolicy,
    available_autoscale_policies,
    create_autoscale_policy,
)
from repro.serving.clients import Arrival, ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.cluster import ClusterSimulator, ReplicaState
from repro.serving.results import ClusterResult, RunResult
from repro.serving.routing import (
    ROUTER_REGISTRY,
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    MemoryAwareRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    available_routers,
    create_router,
)
from repro.serving.server import ServingSimulator, SimulationLimits
from repro.serving.sla import SLA_LARGE_MODEL, SLA_SMALL_MODEL, SLASpec, sla_for_model

__all__ = [
    "AUTOSCALE_POLICY_REGISTRY",
    "AutoscaleDecision",
    "Autoscaler",
    "AutoscalerPolicy",
    "FleetView",
    "PredictivePolicy",
    "ReactivePolicy",
    "StaticPolicy",
    "available_autoscale_policies",
    "create_autoscale_policy",
    "Arrival",
    "ClosedLoopClientPool",
    "OpenLoopArrivals",
    "ClusterSimulator",
    "ReplicaState",
    "ClusterResult",
    "RunResult",
    "ROUTER_REGISTRY",
    "LeastKVLoadRouter",
    "LeastOutstandingRouter",
    "MemoryAwareRouter",
    "ReplicaSnapshot",
    "RoundRobinRouter",
    "Router",
    "available_routers",
    "create_router",
    "ServingSimulator",
    "SimulationLimits",
    "SLA_LARGE_MODEL",
    "SLA_SMALL_MODEL",
    "SLASpec",
    "sla_for_model",
]

"""Serving-system substrate: SLA specs, clients, simulator loops, routing."""

from repro.serving.clients import Arrival, ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.cluster import ClusterSimulator
from repro.serving.results import ClusterResult, RunResult
from repro.serving.routing import (
    ROUTER_REGISTRY,
    LeastKVLoadRouter,
    LeastOutstandingRouter,
    MemoryAwareRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    available_routers,
    create_router,
)
from repro.serving.server import ServingSimulator, SimulationLimits
from repro.serving.sla import SLA_LARGE_MODEL, SLA_SMALL_MODEL, SLASpec, sla_for_model

__all__ = [
    "Arrival",
    "ClosedLoopClientPool",
    "OpenLoopArrivals",
    "ClusterSimulator",
    "ClusterResult",
    "RunResult",
    "ROUTER_REGISTRY",
    "LeastKVLoadRouter",
    "LeastOutstandingRouter",
    "MemoryAwareRouter",
    "ReplicaSnapshot",
    "RoundRobinRouter",
    "Router",
    "available_routers",
    "create_router",
    "ServingSimulator",
    "SimulationLimits",
    "SLA_LARGE_MODEL",
    "SLA_SMALL_MODEL",
    "SLASpec",
    "sla_for_model",
]

"""Serving-system substrate: SLA specs, client models, the simulator loop."""

from repro.serving.clients import Arrival, ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.results import RunResult
from repro.serving.server import ServingSimulator, SimulationLimits
from repro.serving.sla import SLA_LARGE_MODEL, SLA_SMALL_MODEL, SLASpec, sla_for_model

__all__ = [
    "Arrival",
    "ClosedLoopClientPool",
    "OpenLoopArrivals",
    "RunResult",
    "ServingSimulator",
    "SimulationLimits",
    "SLA_LARGE_MODEL",
    "SLA_SMALL_MODEL",
    "SLASpec",
    "sla_for_model",
]

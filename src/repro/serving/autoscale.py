"""Replica autoscaling: elastic fleets driven by saturation and forecasts.

The routing layer (:mod:`repro.serving.routing`) decides *where* each request
goes; this subsystem decides *how many replicas exist to route to*.  A
production fleet is billed by replica-seconds, so the interesting number is
not raw goodput but **goodput per replica-second** — SLA-compliant tokens per
unit of provisioned capacity — and an elastic fleet wins by shedding replicas
during lulls and growing ahead of bursts.

Three policies are provided, in increasing order of foresight:

* :class:`StaticPolicy` — never changes the fleet; the peak-provisioned
  baseline every elastic policy is compared against.
* :class:`ReactivePolicy` — classic threshold autoscaling: scale up when the
  windowed :attr:`~repro.serving.routing.ReplicaView.saturated` rate of
  recent arrivals crosses a high watermark, scale down when it falls below a
  low watermark, with hysteresis (the gap between watermarks) and a cooldown
  between actions.  It only reacts *after* saturation is observed, so every
  scale-up pays the full warm-up delay inside the burst.
* :class:`PredictivePolicy` — the paper's signal lifted to the fleet axis: it
  keeps the same sliding output-length history the Past-Future scheduler and
  :class:`~repro.serving.routing.MemoryAwareRouter` use, forecasts each
  replica's *peak* future KV demand (Eq. 2–4 via
  :meth:`MemoryAwareRouter.predicted_peak_tokens`) plus the demand of
  requests forecast to arrive within one warm-up horizon, and sizes the
  fleet so predicted demand fits under a target utilisation.  Because queued
  prompts and predicted output growth are visible *before* replicas saturate,
  it scales ahead of bursts instead of chasing them.

The :class:`Autoscaler` driver owns the decision cadence (a fixed interval on
the fleet clock), the windowed traffic statistics handed to policies as a
:class:`FleetView`, and the min/max fleet clamp.  The
:class:`~repro.serving.cluster.ClusterSimulator` executes its decisions:
scale-up launches replicas that spend ``warmup_delay`` seconds warming (cold
engine, empty scheduler history, not routable) before activating, and
scale-down *drains* a replica — no new placements, resident work runs to
completion, then the replica retires — so admitted requests are never
dropped.

The fault subsystem (:mod:`repro.serving.faults`) rides the same launch
machinery: a crashed replica's replacement is a fresh launch with the plan's
``replacement_warmup`` instead of the autoscaler's ``warmup_delay``, and dead
or draining replicas drop out of the routable :class:`FleetView` exactly like
an autoscaler drain — so policies automatically size around failures they
were never told about.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.request import Request
from repro.registry import instantiate
from repro.serving.routing import MemoryAwareRouter, ReplicaView


@dataclass(frozen=True)
class FleetView:
    """Everything an autoscaling policy may observe at one decision point.

    Like :class:`~repro.serving.routing.ReplicaView` for routers, the view
    contains only operator-visible state — queue depths, KV occupancy,
    windowed traffic statistics — never the hidden true output lengths.

    Heterogeneous fleets (see ``ClusterSimulator(platforms=...)``) mix
    replicas of very different KV capacities, so the view carries the
    capacity totals policies need to reason in **capacity units**
    ("A100-equivalents") rather than replica counts: per-replica capacities
    ride on each snapshot, ``warming_capacity`` accounts for capacity already
    bought but not yet routable, and ``launch_capacity`` is what the *next*
    scale-up would add.

    Attributes:
        time: fleet clock at the decision instant.
        snapshots: one :class:`ReplicaView` per *routable* (active)
            replica; warming and draining replicas are summarised by count.
        num_warming: replicas launched but still inside their warm-up delay.
        num_draining: replicas finishing resident work before retiring.
        saturation_rate: mean saturated-replica fraction observed by arrivals
            inside the sampling window (0.0 when the window is empty).
        arrival_rate: arrivals per second over the sampling window.
        mean_arrival_tokens: mean prompt tokens of those arrivals.
        warming_capacity: summed KV token capacity of warming replicas.
        launch_capacity: KV token capacity the next launched replica would
            have (0 when the cluster did not report it).
    """

    time: float
    snapshots: tuple[ReplicaView, ...]
    num_warming: int = 0
    num_draining: int = 0
    saturation_rate: float = 0.0
    arrival_rate: float = 0.0
    mean_arrival_tokens: float = 0.0
    warming_capacity: int = 0
    launch_capacity: int = 0

    @property
    def num_active(self) -> int:
        """Routable replicas."""
        return len(self.snapshots)

    @property
    def provisioned(self) -> int:
        """Replicas currently paid for: active plus warming (not draining)."""
        return self.num_active + self.num_warming

    @property
    def queued_requests(self) -> int:
        """Requests waiting for admission across the active fleet."""
        return sum(s.num_waiting for s in self.snapshots)

    @property
    def saturated_fraction(self) -> float:
        """Instantaneous fraction of active replicas that are saturated."""
        if not self.snapshots:
            return 0.0
        return sum(1 for s in self.snapshots if s.saturated) / len(self.snapshots)

    @property
    def replica_capacity(self) -> int:
        """KV token capacity of one replica (homogeneous fleets)."""
        if not self.snapshots:
            return 0
        return self.snapshots[0].token_capacity

    @property
    def active_capacity(self) -> int:
        """Summed KV token capacity of the routable fleet."""
        return sum(s.token_capacity for s in self.snapshots)

    @property
    def provisioned_capacity(self) -> int:
        """Capacity currently paid for: active plus warming token slots."""
        return self.active_capacity + self.warming_capacity

    @property
    def is_homogeneous(self) -> bool:
        """Whether every replica (and the next launch) has one capacity.

        Policies use this to keep the simple replica-count arithmetic on
        homogeneous fleets (bit-identical to the pre-heterogeneity
        behaviour) and switch to capacity-unit arithmetic otherwise.
        """
        capacities = {s.token_capacity for s in self.snapshots}
        if len(capacities) > 1:
            return False
        capacity = next(iter(capacities), self.launch_capacity)
        if self.launch_capacity and self.launch_capacity != capacity:
            return False
        return self.warming_capacity == self.num_warming * capacity


class AutoscalerPolicy(abc.ABC):
    """Sizing policy mapping a :class:`FleetView` to a desired fleet size."""

    #: human-readable policy name used in tables and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def target_size(self, view: FleetView) -> int:
        """Desired provisioned fleet size (active + warming replicas).

        The :class:`Autoscaler` clamps the result to its ``min_replicas`` /
        ``max_replicas`` bounds, so policies may return any integer.
        """

    # ------------------------------------------------------------- lifecycle
    def on_run_start(self) -> None:
        """Called once before a cluster run begins (reset mutable state)."""

    def on_request_finished(self, request: Request, time: float) -> None:
        """Called when any replica finishes a request (for learning policies)."""

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class StaticPolicy(AutoscalerPolicy):
    """Fixed fleet size: the non-elastic baseline.

    Args:
        size: fleet size to hold; ``None`` freezes whatever size the fleet
            had when the run started.
    """

    name = "static"

    def __init__(self, size: int | None = None) -> None:
        if size is not None and size <= 0:
            raise ValueError("size must be positive when set")
        self.size = size

    def target_size(self, view: FleetView) -> int:
        """Return the fixed size (or the initial fleet size when unset)."""
        return self.size if self.size is not None else view.provisioned

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return f"{self.name} (size={self.size if self.size is not None else 'initial'})"


class ReactivePolicy(AutoscalerPolicy):
    """Threshold autoscaling on the windowed saturation rate.

    Scale up by ``step`` when recent arrivals saw at least
    ``scale_up_threshold`` of the active fleet saturated; scale down by
    ``step`` when the rate is at or below ``scale_down_threshold`` *and* no
    work is queued.  The gap between the two thresholds is the hysteresis
    band; ``cooldown`` seconds must elapse between consecutive actions so one
    burst does not trigger a scale-up/scale-down oscillation.

    Args:
        scale_up_threshold: windowed saturation rate that triggers growth.
        scale_down_threshold: windowed saturation rate that permits shrink.
        step: replicas added or removed per action.
        cooldown: minimum seconds between consecutive scaling actions.
    """

    name = "reactive"

    def __init__(
        self,
        scale_up_threshold: float = 0.5,
        scale_down_threshold: float = 0.05,
        step: int = 1,
        cooldown: float = 5.0,
    ) -> None:
        if not 0.0 <= scale_down_threshold < scale_up_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= down < up <= 1")
        if step <= 0:
            raise ValueError("step must be positive")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.scale_up_threshold = scale_up_threshold
        self.scale_down_threshold = scale_down_threshold
        self.step = step
        self.cooldown = cooldown
        self._last_action: float | None = None

    def on_run_start(self) -> None:
        """Reset the cooldown clock for a fresh run."""
        self._last_action = None

    def _cooled_down(self, time: float) -> bool:
        return self._last_action is None or time - self._last_action >= self.cooldown

    def target_size(self, view: FleetView) -> int:
        """Step the fleet up/down on saturation-rate thresholds with cooldown."""
        current = view.provisioned
        if not self._cooled_down(view.time):
            return current
        if view.saturation_rate >= self.scale_up_threshold:
            self._last_action = view.time
            return current + self.step
        if view.saturation_rate <= self.scale_down_threshold and view.queued_requests == 0:
            self._last_action = view.time
            return current - self.step
        return current

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return (
            f"{self.name} (up>={self.scale_up_threshold:g}, "
            f"down<={self.scale_down_threshold:g}, cooldown={self.cooldown:g}s)"
        )


class PredictivePolicy(AutoscalerPolicy):
    """Size the fleet from forecast future KV demand (the paper's Eq. 2–4).

    Fleet demand has two parts:

    1. **Resident demand** — per active replica, the predicted *peak* future
       memory of its in-flight batch, computed exactly as the
       :class:`~repro.serving.routing.MemoryAwareRouter` computes its
       placement signal (conditional-mean remaining lengths over a sliding
       window of finished outputs, fed through
       :func:`repro.core.future_memory.peak_future_memory_arrays`).  Queued
       prompts count, so a burst is visible the moment it lands in admission
       queues — before any replica saturates.
    2. **Incoming demand** — arrivals forecast within ``horizon`` seconds
       (default: the fleet's warm-up delay, i.e. the work that will land
       before a replica launched *now* could help), each costing its mean
       observed prompt plus the window's mean output length.

    The target fleet size is the smallest one keeping predicted demand under
    ``target_utilization`` of aggregate capacity.  On heterogeneous fleets
    the policy reasons in **capacity units** rather than replica counts:
    predicted demand is compared against the token capacity already
    provisioned (active + warming, per-replica capacities from the
    :class:`FleetView`), and the deficit is bought in units of the next
    launch's capacity — "how many A100-equivalents are missing", not "how
    many replicas".  Scale-up is immediate —
    the whole point is to absorb the warm-up delay before the burst peaks —
    while scale-down steps one replica per ``scale_down_cooldown`` so a lull
    inside a burst train does not flap the fleet.

    Args:
        target_utilization: fraction of aggregate KV capacity predicted
            demand may occupy before the fleet grows.
        horizon: arrival-forecast lookahead in seconds; ``None`` uses the
            autoscaler's warm-up delay at run time.
        window_size: sliding output-length window (the paper uses 1000).
        default_length: output length assumed before any request finishes.
        scale_down_cooldown: minimum seconds between single-replica shrinks.
    """

    name = "predictive"

    def __init__(
        self,
        target_utilization: float = 0.7,
        horizon: float | None = None,
        window_size: int = 1000,
        default_length: int = 2048,
        scale_down_cooldown: float = 10.0,
    ) -> None:
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if horizon is not None and horizon < 0:
            raise ValueError("horizon must be non-negative when set")
        if scale_down_cooldown < 0:
            raise ValueError("scale_down_cooldown must be non-negative")
        self.target_utilization = target_utilization
        self.horizon = horizon
        self.scale_down_cooldown = scale_down_cooldown
        # The memory-aware router doubles as the forecaster: same history,
        # same peak-demand equations, applied to sizing instead of placement.
        self._forecaster = MemoryAwareRouter(
            window_size=window_size, default_length=default_length
        )
        self._effective_horizon = horizon if horizon is not None else 0.0
        self._last_shrink: float | None = None

    def on_run_start(self) -> None:
        """Reset the demand forecaster and the shrink cooldown."""
        self._forecaster.on_run_start()
        self._last_shrink = None

    def on_request_finished(self, request: Request, time: float) -> None:
        """Feed the finished request's output length to the forecaster."""
        self._forecaster.on_request_finished(request, time)

    def bind_warmup(self, warmup_delay: float) -> None:
        """Adopt the fleet's warm-up delay as the forecast horizon."""
        if self.horizon is None:
            self._effective_horizon = warmup_delay

    # ------------------------------------------------------------ forecasting
    def predicted_fleet_demand_tokens(self, view: FleetView) -> float:
        """Forecast peak KV tokens the fleet must hold within the horizon."""
        resident = sum(
            self._forecaster.predicted_peak_tokens(snapshot) for snapshot in view.snapshots
        )
        expected_request = view.mean_arrival_tokens + self._forecaster.history.mean()
        incoming = view.arrival_rate * self._effective_horizon * expected_request
        return resident + incoming

    def target_size(self, view: FleetView) -> int:
        """Size the fleet so forecast peak KV demand fits the target utilisation."""
        current = view.provisioned
        capacity = view.replica_capacity
        if capacity <= 0:
            return current
        demand = self.predicted_fleet_demand_tokens(view)
        if view.is_homogeneous or view.launch_capacity <= 0:
            # Replica-count arithmetic: every replica contributes the same
            # capacity, so the target is simply demand over one replica's
            # budget (identical to the pre-heterogeneity behaviour).
            needed = max(1, math.ceil(demand / (self.target_utilization * capacity)))
        else:
            # Capacity-unit arithmetic ("A100-equivalents"): replicas differ
            # in KV capacity, so compare predicted demand against the
            # *capacity* already provisioned and buy the deficit in units of
            # the next launch's capacity.
            deficit = demand / self.target_utilization - view.provisioned_capacity
            needed = max(1, current + math.ceil(deficit / view.launch_capacity))
        if needed >= current:
            return needed
        # Shrink at most one replica per cooldown; forecasts dip faster than
        # traffic truly recedes, and retiring capacity is the risky direction.
        if self._last_shrink is not None and view.time - self._last_shrink < self.scale_down_cooldown:
            return current
        if view.queued_requests > 0:
            return current
        if not view.is_homogeneous and view.snapshots:
            # Scale-down retires a whole replica of the cluster's choosing,
            # which on a mixed fleet may be the *largest* one.  Only shrink
            # when the capacity surplus covers that worst case, or a dip
            # worth one small replica would retire a big one and the next
            # decision would immediately re-buy it (warm-up flapping).
            surplus = view.provisioned_capacity - demand / self.target_utilization
            if surplus < max(s.token_capacity for s in view.snapshots):
                return current
        self._last_shrink = view.time
        return current - 1

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        horizon = self.horizon if self.horizon is not None else self._effective_horizon
        return (
            f"{self.name} (util<={self.target_utilization:g}, horizon={horizon:g}s, "
            f"window={self._forecaster.history.window_size})"
        )


@dataclass(frozen=True)
class AutoscaleDecision:
    """One evaluated decision of the autoscaler (for timelines and debugging)."""

    time: float
    target: int
    provisioned: int
    num_active: int
    saturation_rate: float
    arrival_rate: float = 0.0

    @property
    def delta(self) -> int:
        """Replicas the decision adds (positive) or drains (negative)."""
        return self.target - self.provisioned


@dataclass
class _ArrivalSample:
    """Traffic observed by the fleet when one request was routed."""

    time: float
    saturated_fraction: float
    prompt_tokens: int


class Autoscaler:
    """Drives an :class:`AutoscalerPolicy` on a fixed decision cadence.

    The :class:`~repro.serving.cluster.ClusterSimulator` asks
    :attr:`next_decision_time` when scheduling events, reports every routed
    arrival via :meth:`note_arrival` (building the windowed saturation and
    arrival-rate statistics policies consume), and calls :meth:`evaluate` at
    each decision instant; the returned target — clamped to
    ``[min_replicas, max_replicas]`` — is then executed by the cluster
    (launch warming replicas or drain active ones).

    Args:
        policy: sizing policy instance, or a registry name (``static``,
            ``reactive``, ``predictive``).
        interval: seconds of fleet clock between decisions.
        min_replicas: lower clamp on the provisioned fleet size.
        max_replicas: upper clamp on the provisioned fleet size.
        warmup_delay: seconds a newly launched replica spends warming (cold
            engine, not routable) before it can serve.
        sample_window: seconds of arrival history the traffic statistics
            aggregate over.
    """

    def __init__(
        self,
        policy: AutoscalerPolicy | str,
        interval: float = 1.0,
        min_replicas: int = 1,
        max_replicas: int = 8,
        warmup_delay: float = 0.0,
        sample_window: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be at least min_replicas")
        if warmup_delay < 0:
            raise ValueError("warmup_delay must be non-negative")
        if sample_window <= 0:
            raise ValueError("sample_window must be positive")
        self.policy = create_autoscale_policy(policy) if isinstance(policy, str) else policy
        self.interval = interval
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.warmup_delay = warmup_delay
        self.sample_window = sample_window
        if isinstance(self.policy, PredictivePolicy):
            self.policy.bind_warmup(warmup_delay)
        self.decisions: list[AutoscaleDecision] = []
        self._samples: deque[_ArrivalSample] = deque()
        self._next_decision = interval

    # ------------------------------------------------------------- lifecycle
    def on_run_start(self) -> None:
        """Reset decision cadence, traffic window, and policy state."""
        self.decisions = []
        self._samples.clear()
        self._next_decision = self.interval
        self.policy.on_run_start()

    def on_request_finished(self, request: Request, time: float) -> None:
        """Forward completions to the policy (learning forecasters)."""
        self.policy.on_request_finished(request, time)

    # ------------------------------------------------------------ observation
    @property
    def next_decision_time(self) -> float:
        """Fleet-clock instant of the next scheduled decision."""
        return self._next_decision

    def note_arrival(self, time: float, saturated_fraction: float, prompt_tokens: int) -> None:
        """Record the fleet state one newly arrived (not re-deferred) request observed."""
        self._samples.append(_ArrivalSample(time, saturated_fraction, prompt_tokens))
        self._trim(time)

    def _trim(self, now: float) -> None:
        horizon = now - self.sample_window
        while self._samples and self._samples[0].time < horizon:
            self._samples.popleft()

    def make_view(
        self,
        time: float,
        snapshots: Sequence[ReplicaView],
        num_warming: int = 0,
        num_draining: int = 0,
        warming_capacity: int = 0,
        launch_capacity: int = 0,
    ) -> FleetView:
        """Assemble the policy-facing view for one decision instant."""
        self._trim(time)
        samples = list(self._samples)
        if samples:
            saturation_rate = sum(s.saturated_fraction for s in samples) / len(samples)
            # Early in a run less than one full window has elapsed; dividing
            # by the elapsed span instead of the nominal window keeps the
            # rate honest exactly when scaling ahead of the opening burst
            # matters most.
            span = min(self.sample_window, time) if time > 0 else self.sample_window
            arrival_rate = len(samples) / span
            mean_tokens = sum(s.prompt_tokens for s in samples) / len(samples)
        else:
            saturation_rate = arrival_rate = mean_tokens = 0.0
        return FleetView(
            time=time,
            snapshots=tuple(snapshots),
            num_warming=num_warming,
            num_draining=num_draining,
            saturation_rate=saturation_rate,
            arrival_rate=arrival_rate,
            mean_arrival_tokens=mean_tokens,
            warming_capacity=warming_capacity,
            launch_capacity=launch_capacity,
        )

    # -------------------------------------------------------------- deciding
    def evaluate(
        self,
        time: float,
        snapshots: Sequence[ReplicaView],
        num_warming: int = 0,
        num_draining: int = 0,
        warming_capacity: int = 0,
        launch_capacity: int = 0,
    ) -> int:
        """Run one decision: build the view, ask the policy, clamp, record."""
        view = self.make_view(
            time, snapshots, num_warming, num_draining, warming_capacity, launch_capacity
        )
        target = max(self.min_replicas, min(self.max_replicas, self.policy.target_size(view)))
        self.decisions.append(
            AutoscaleDecision(
                time=time,
                target=target,
                provisioned=view.provisioned,
                num_active=view.num_active,
                saturation_rate=view.saturation_rate,
                arrival_rate=view.arrival_rate,
            )
        )
        while self._next_decision <= time:
            self._next_decision += self.interval
        return target

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return (
            f"{self.policy.describe()} @ {self.interval:g}s, "
            f"warmup {self.warmup_delay:g}s, fleet {self.min_replicas}..{self.max_replicas}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Autoscaler({self.describe()})"


AutoscalePolicyFactory = Callable[..., AutoscalerPolicy]

AUTOSCALE_POLICY_REGISTRY: dict[str, AutoscalePolicyFactory] = {
    "static": StaticPolicy,
    "reactive": ReactivePolicy,
    "predictive": PredictivePolicy,
}


def create_autoscale_policy(name: str, **kwargs) -> AutoscalerPolicy:
    """Instantiate an autoscaling policy by registry name.

    Args:
        name: one of ``static``, ``reactive``, ``predictive``.
        **kwargs: forwarded to the policy constructor.

    Raises:
        KeyError: if the name is unknown.
        TypeError: if a keyword argument is not accepted by the policy,
            listing the keywords it does accept.
    """
    return instantiate("autoscale policy", AUTOSCALE_POLICY_REGISTRY, name, kwargs)


def available_autoscale_policies() -> list[str]:
    """Names of all registered autoscaling policies."""
    return sorted(AUTOSCALE_POLICY_REGISTRY)

"""Client load generators: closed-loop client pools and open-loop arrivals.

The paper's goodput experiments (Figure 7/9) "simulate concurrent requests
from different numbers of clients": a *closed-loop* model where each client
keeps exactly one request in flight and submits the next one as soon as the
previous finishes.  The window-similarity and trace-replay experiments use an
*open-loop* model where requests arrive on their own schedule regardless of
completions (Poisson arrivals at a target rate, or recorded arrival times).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

from repro.workloads.arrivals import assign_poisson_arrivals
from repro.workloads.spec import RequestSpec, Workload


@dataclass(order=True)
class Arrival:
    """One scheduled request arrival."""

    time: float
    sequence: int
    spec: RequestSpec = field(compare=False)


class ClosedLoopClientPool:
    """``num_clients`` clients, each keeping one request in flight.

    Clients pull the next spec from the shared workload when their previous
    request completes (after an optional think time).  This is the standard
    load-testing model: raising ``num_clients`` raises concurrency until the
    server saturates.
    """

    def __init__(self, workload: Workload, num_clients: int, think_time: float = 0.0) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self._specs: Iterator[RequestSpec] = iter(workload.requests)
        self._num_clients = num_clients
        self._think_time = think_time
        self._pending: list[Arrival] = []
        self._sequence = 0
        self._exhausted = False
        self._in_flight = 0

    @property
    def num_clients(self) -> int:
        """Size of the client pool."""
        return self._num_clients

    @property
    def in_flight(self) -> int:
        """Requests currently submitted but not yet finished."""
        return self._in_flight

    def _next_spec(self) -> RequestSpec | None:
        try:
            return next(self._specs)
        except StopIteration:
            self._exhausted = True
            return None

    def _schedule(self, time: float) -> None:
        spec = self._next_spec()
        if spec is None:
            return
        self._sequence += 1
        heapq.heappush(self._pending, Arrival(time=time, sequence=self._sequence, spec=spec))

    def start(self, time: float = 0.0) -> None:
        """Schedule the initial request of every client."""
        for _ in range(self._num_clients):
            self._schedule(time)

    def on_request_finished(self, time: float) -> None:
        """Notify the pool that one in-flight request completed at ``time``."""
        self._in_flight = max(self._in_flight - 1, 0)
        self._schedule(time + self._think_time)

    def pop_arrivals(self, now: float) -> list[RequestSpec]:
        """Specs whose scheduled arrival time is at or before ``now``."""
        ready: list[RequestSpec] = []
        while self._pending and self._pending[0].time <= now:
            arrival = heapq.heappop(self._pending)
            ready.append(arrival.spec.with_arrival(arrival.time))
            self._in_flight += 1
        return ready

    def next_arrival_time(self) -> float | None:
        """Time of the earliest scheduled future arrival, if any."""
        return self._pending[0].time if self._pending else None

    @property
    def drained(self) -> bool:
        """Whether every workload spec has been handed out and completed."""
        return self._exhausted and not self._pending and self._in_flight == 0


class OpenLoopArrivals:
    """Open-loop arrival process over a workload.

    Either replays recorded ``arrival_time`` values from the specs, or draws
    exponential inter-arrival gaps for a Poisson process at ``request_rate``
    requests per second.
    """

    def __init__(
        self,
        workload: Workload,
        request_rate: float | None = None,
        seed: int = 0,
    ) -> None:
        self._arrivals: list[Arrival] = []
        if request_rate is not None:
            # Single source of truth for Poisson stamping; replaying the
            # stamped workload gives the identical trace.
            stamped = assign_poisson_arrivals(workload, request_rate, seed=seed)
            for index, spec in enumerate(stamped.requests):
                self._arrivals.append(Arrival(time=spec.arrival_time, sequence=index, spec=spec))
        else:
            for index, spec in enumerate(workload.requests):
                if spec.arrival_time is None:
                    raise ValueError(
                        "workload specs lack arrival times; pass request_rate instead"
                    )
                self._arrivals.append(Arrival(time=spec.arrival_time, sequence=index, spec=spec))
        heapq.heapify(self._arrivals)
        self._in_flight = 0

    def start(self, time: float = 0.0) -> None:
        """Open-loop arrivals are pre-scheduled; nothing to do."""

    def on_request_finished(self, time: float) -> None:
        """Completions do not influence an open-loop arrival process."""
        self._in_flight = max(self._in_flight - 1, 0)

    def pop_arrivals(self, now: float) -> list[RequestSpec]:
        """Specs whose arrival time is at or before ``now``."""
        ready: list[RequestSpec] = []
        while self._arrivals and self._arrivals[0].time <= now:
            arrival = heapq.heappop(self._arrivals)
            ready.append(arrival.spec.with_arrival(arrival.time))
            self._in_flight += 1
        return ready

    def next_arrival_time(self) -> float | None:
        """Time of the earliest future arrival, if any."""
        return self._arrivals[0].time if self._arrivals else None

    @property
    def drained(self) -> bool:
        """Whether every arrival has been handed out and completed."""
        return not self._arrivals and self._in_flight == 0

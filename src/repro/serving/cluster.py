"""Multi-replica cluster serving: N engines behind a request router.

The single-engine :class:`~repro.serving.server.ServingSimulator` answers the
paper's question — does past-future admission control raise one engine's
goodput?  A production deployment runs a *fleet* of such engines behind a
router, and the same per-replica signal the scheduler uses (predicted future
memory) becomes a placement signal: send each arriving request to the replica
whose batch has the most predicted headroom.

:class:`ClusterSimulator` owns ``num_replicas`` independent
:class:`~repro.engine.engine.InferenceEngine` instances — each with its own
admission scheduler and KV-cache pool — plus one
:class:`~repro.serving.routing.Router`.  The simulation is event-driven over
two event types:

1. **arrival** — the next request of the load generator arrives; the router
   inspects a :class:`~repro.serving.routing.ReplicaSnapshot` per replica and
   the request joins the chosen replica's waiting queue (or is rejected when
   every replica is saturated and admission control is on);
2. **replica step** — the replica with the earliest local clock among those
   with work runs one continuous-batching iteration, advancing its clock by
   the iteration's modelled latency.

Replica clocks advance independently (real replicas do not share a decode
cadence); the fleet makespan is the latest replica clock when the run drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.cost_model import CostModel
from repro.engine.engine import InferenceEngine
from repro.engine.eviction import EvictionPolicy
from repro.engine.request import Request
from repro.hardware.platform import Platform
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import create_scheduler
from repro.serving.clients import ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.results import ClusterResult, RunResult
from repro.serving.routing import ReplicaSnapshot, Router, create_router
from repro.serving.server import LoadGenerator, SimulationLimits
from repro.workloads.spec import RequestSpec, Workload


@dataclass
class _Replica:
    """One engine plus the cluster-side bookkeeping around it."""

    index: int
    engine: InferenceEngine
    clock: float = 0.0
    idle_streak: int = 0
    requests: list[Request] = field(default_factory=list)

    def snapshot(self) -> ReplicaSnapshot:
        """Scheduler-visible state handed to the router."""
        engine = self.engine
        running = list(engine.batch)
        waiting = list(engine.waiting)
        return ReplicaSnapshot(
            replica_id=self.index,
            token_capacity=engine.token_capacity,
            used_tokens=engine.pool.used_tokens,
            running_current_tokens=tuple(r.current_context_tokens for r in running),
            running_generated_tokens=tuple(r.generated_tokens for r in running),
            waiting_prompt_tokens=tuple(r.current_context_tokens for r in waiting),
            running_remaining_cap_tokens=tuple(r.remaining_cap_tokens for r in running),
            waiting_generated_tokens=tuple(r.generated_tokens for r in waiting),
            waiting_remaining_cap_tokens=tuple(r.remaining_cap_tokens for r in waiting),
        )


class ClusterSimulator:
    """Drives a fleet of inference engines behind a request router.

    Args:
        platform: deployment target of every replica (homogeneous fleet).
        num_replicas: number of independent engines.
        router: placement policy, as a :class:`Router` instance or a registry
            name (``round-robin``, ``least-outstanding``, ``least-kv-load``,
            ``memory-aware``).
        scheduler_name: per-replica admission scheduler registry name; each
            replica gets its *own* scheduler instance so history-based
            policies learn only from their replica's completions.
        scheduler_kwargs: forwarded to every scheduler constructor.
        scheduler_factory: overrides ``scheduler_name``/``scheduler_kwargs``
            with an arbitrary per-replica scheduler builder.
        eviction_policy_factory: per-replica eviction policy builder
            (engines must not share mutable policy state).
        block_size: KV-cache block size in tokens.
        chunked_prefill_tokens: per-iteration prefill-token cap per replica.
        token_capacity_override: replaces each replica's KV token capacity
            (scaled experiments).
        reject_when_saturated: when every replica is saturated, turn new
            arrivals away instead of queueing them (cluster-level admission
            control); rejected requests never execute but are reported.
        limits: safety bounds over the whole fleet (``max_steps`` counts
            iterations summed across replicas).
    """

    def __init__(
        self,
        platform: Platform,
        num_replicas: int,
        router: Router | str,
        scheduler_name: str = "past-future",
        scheduler_kwargs: dict | None = None,
        scheduler_factory: Callable[[], Scheduler] | None = None,
        eviction_policy_factory: Callable[[], EvictionPolicy] | None = None,
        cost_model: CostModel | None = None,
        block_size: int = 1,
        chunked_prefill_tokens: int | None = None,
        token_capacity_override: int | None = None,
        reject_when_saturated: bool = False,
        limits: SimulationLimits | None = None,
    ) -> None:
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        self.platform = platform
        self.router = create_router(router) if isinstance(router, str) else router
        self.reject_when_saturated = reject_when_saturated
        self.limits = limits or SimulationLimits()
        if scheduler_factory is None:
            kwargs = dict(scheduler_kwargs or {})

            def scheduler_factory() -> Scheduler:
                return create_scheduler(scheduler_name, **kwargs)

        self.replicas: list[_Replica] = [
            _Replica(
                index=index,
                engine=InferenceEngine(
                    platform=platform,
                    scheduler=scheduler_factory(),
                    cost_model=cost_model,
                    eviction_policy=eviction_policy_factory() if eviction_policy_factory else None,
                    block_size=block_size,
                    chunked_prefill_tokens=chunked_prefill_tokens,
                    token_capacity_override=token_capacity_override,
                ),
            )
            for index in range(num_replicas)
        ]
        self.rejected: list[Request] = []
        self._deferred_releases = 0
        self._consumed = False

    # ------------------------------------------------------------------ state
    @property
    def num_replicas(self) -> int:
        """Number of engines in the fleet."""
        return len(self.replicas)

    def snapshots(self) -> list[ReplicaSnapshot]:
        """Current router-visible state of every replica."""
        return [replica.snapshot() for replica in self.replicas]

    # ---------------------------------------------------------------- routing
    def _route_arrival(self, spec: RequestSpec, now: float) -> None:
        request = Request(
            spec=spec,
            arrival_time=spec.arrival_time if spec.arrival_time is not None else now,
        )
        snapshots = self.snapshots()
        if self.reject_when_saturated and all(s.saturated for s in snapshots):
            self.rejected.append(request)
            # The client's slot must be released or a closed-loop pool would
            # deadlock — but not at this same instant: snapshots only change
            # when a replica steps, so an immediate release would re-inject
            # (and re-reject) the client's next request in a zero-time
            # cascade.  Release it after the next completed iteration, when
            # the fleet has actually made progress.
            self._deferred_releases += 1
            return
        replica_id = self.router.select_replica(spec, snapshots)
        if not 0 <= replica_id < len(self.replicas):
            raise RuntimeError(
                f"router {self.router.name!r} returned invalid replica {replica_id}"
            )
        replica = self.replicas[replica_id]
        if not replica.engine.has_work():
            # An idle replica resumes at the arrival instant; a busy one keeps
            # its clock and picks the request up at its next iteration.
            replica.clock = max(replica.clock, now)
        replica.requests.append(request)
        replica.engine.submit(request)

    # ---------------------------------------------------------------- running
    def _run(self, generator: LoadGenerator, workload_name: str, num_clients: int) -> ClusterResult:
        # Engines accumulate state (stats, timelines, scheduler history), so a
        # simulator drives exactly one run; build a fresh one per experiment.
        if self._consumed:
            raise RuntimeError("ClusterSimulator instances are single-use; build a new one per run")
        self._consumed = True
        generator.start(0.0)
        self.router.on_run_start()
        completed = True
        total_steps = 0

        while True:
            next_arrival = generator.next_arrival_time()
            busy = [r for r in self.replicas if r.engine.has_work()]
            step_replica = min(busy, key=lambda r: (r.clock, r.index)) if busy else None

            # Arrivals at or before the next step instant are injected first,
            # matching ServingSimulator's "arrivals <= now join this batch".
            if next_arrival is not None and (step_replica is None or next_arrival <= step_replica.clock):
                for spec in generator.pop_arrivals(next_arrival):
                    self._route_arrival(spec, next_arrival)
                continue

            if step_replica is None:
                # No resident work and no future arrivals: the run is drained
                # (or a closed-loop pool's remaining clients were rejected).
                break

            result = step_replica.engine.step(step_replica.clock)
            if result.duration > 0:
                step_replica.clock = result.end_time
            for request in result.finished:
                generator.on_request_finished(step_replica.clock)
                self.router.on_request_finished(request, step_replica.clock)
            # Client slots freed by rejections are released only once some
            # replica can route again (rejection implies every replica was
            # busy, so steps keep coming until that happens) — immediate
            # release would just feed the next request into the same
            # saturated fleet.
            if self._deferred_releases and not all(s.saturated for s in self.snapshots()):
                while self._deferred_releases:
                    self._deferred_releases -= 1
                    generator.on_request_finished(step_replica.clock)

            # Stall guard, per replica: repeated idle iterations with waiting
            # requests mean no admission is possible (see ServingSimulator).
            if result.was_idle:
                step_replica.idle_streak += 1
                if step_replica.idle_streak >= 3:
                    completed = False
                    break
            else:
                step_replica.idle_streak = 0

            total_steps += 1
            if total_steps >= self.limits.max_steps or step_replica.clock >= self.limits.max_time:
                completed = False
                break

        makespan = max((r.clock for r in self.replicas), default=0.0)
        replica_results = [
            RunResult(
                scheduler=replica.engine.scheduler.describe(),
                workload=workload_name,
                platform=self.platform.describe(),
                num_clients=num_clients,
                duration=replica.clock,
                requests=replica.requests,
                engine_stats=replica.engine.stats,
                memory_timeline=replica.engine.memory_timeline,
                token_capacity=replica.engine.token_capacity,
                completed=completed,
            )
            for replica in self.replicas
        ]
        return ClusterResult(
            router=self.router.describe(),
            workload=workload_name,
            platform=self.platform.describe(),
            num_replicas=self.num_replicas,
            duration=makespan,
            replicas=replica_results,
            rejected=list(self.rejected),
            completed=completed,
        )

    def run_closed_loop(
        self,
        workload: Workload,
        num_clients: int,
        think_time: float = 0.0,
    ) -> ClusterResult:
        """Serve a workload with a fleet-wide closed-loop client pool."""
        pool = ClosedLoopClientPool(workload, num_clients=num_clients, think_time=think_time)
        return self._run(pool, workload.name, num_clients)

    def run_open_loop(
        self,
        workload: Workload,
        request_rate: float | None = None,
        seed: int = 0,
    ) -> ClusterResult:
        """Serve a workload with open-loop (Poisson, bursty, or recorded) arrivals."""
        arrivals = OpenLoopArrivals(workload, request_rate=request_rate, seed=seed)
        return self._run(arrivals, workload.name, num_clients=0)

"""Multi-replica cluster serving: an elastic fleet of engines behind a router.

The single-engine :class:`~repro.serving.server.ServingSimulator` answers the
paper's question — does past-future admission control raise one engine's
goodput?  A production deployment runs a *fleet* of such engines behind a
router, and the same per-replica signal the scheduler uses (predicted future
memory) becomes a placement signal: send each arriving request to the replica
whose batch has the most predicted headroom.

:class:`ClusterSimulator` owns a dynamic set of independent
:class:`~repro.engine.engine.InferenceEngine` instances — each with its own
admission scheduler and KV-cache pool — plus one
:class:`~repro.serving.routing.Router` and, optionally, one
:class:`~repro.serving.autoscale.Autoscaler` that grows and shrinks the fleet
during the run.  The simulation is event-driven over four event types:

1. **warm-up completion** — a launched replica finishes its warm-up delay and
   becomes routable;
2. **autoscale decision** — the autoscaler evaluates its policy on the fixed
   decision interval; scale-up launches warming replicas, scale-down drains
   the least-loaded active replica (no new placements, resident work runs to
   completion, then it retires);
3. **arrival** — the next request of the load generator arrives; the router
   inspects a :class:`~repro.serving.routing.ReplicaSnapshot` per *routable*
   replica and the request joins the chosen replica's waiting queue (or is
   rejected when every routable replica is saturated and admission control is
   on);
4. **replica step** — the replica with the earliest local clock among those
   with work (active or draining) runs one continuous-batching iteration,
   advancing its clock by the iteration's modelled latency.

Replica clocks advance independently (real replicas do not share a decode
cadence); the fleet makespan is the latest replica clock when the run drains.
Replica ids are assigned at launch and never reused, so after any scale-down
the routable id set is non-contiguous — routers must treat
``ReplicaSnapshot.replica_id`` as an opaque key, and the simulator raises if
a router returns the id of a warming, draining, or retired replica.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.cost_model import CostModel
from repro.engine.engine import InferenceEngine
from repro.engine.eviction import EvictionPolicy
from repro.engine.request import Request
from repro.hardware.platform import Platform
from repro.metrics.fleet import FleetSizeSample, ReplicaLifetime
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import create_scheduler
from repro.serving.autoscale import Autoscaler
from repro.serving.clients import ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.results import ClusterResult, RunResult
from repro.serving.routing import ReplicaSnapshot, Router, create_router
from repro.serving.server import LoadGenerator, SimulationLimits
from repro.workloads.spec import RequestSpec, Workload


class ReplicaState(enum.Enum):
    """Lifecycle of one replica inside the fleet."""

    #: launched but still inside its warm-up delay; not routable.
    WARMING = "warming"
    #: routable and serving.
    ACTIVE = "active"
    #: finishing resident work before retiring; not routable.
    DRAINING = "draining"
    #: fully drained and released; accrues no further replica-seconds.
    RETIRED = "retired"


@dataclass
class _Replica:
    """One engine plus the cluster-side bookkeeping around it."""

    index: int
    engine: InferenceEngine
    state: ReplicaState = ReplicaState.ACTIVE
    launched_at: float = 0.0
    ready_at: float = 0.0
    retired_at: float | None = None
    clock: float = 0.0
    idle_streak: int = 0
    requests: list[Request] = field(default_factory=list)

    @property
    def routable(self) -> bool:
        """Whether the router may place new work here."""
        return self.state is ReplicaState.ACTIVE

    @property
    def steppable(self) -> bool:
        """Whether the replica runs iterations (active or draining)."""
        return self.state in (ReplicaState.ACTIVE, ReplicaState.DRAINING)

    def lifetime(self) -> ReplicaLifetime:
        """Provisioned interval for replica-seconds accounting."""
        return ReplicaLifetime(
            replica_id=self.index,
            launched_at=self.launched_at,
            ready_at=self.ready_at,
            retired_at=self.retired_at,
        )

    def snapshot(self) -> ReplicaSnapshot:
        """Scheduler-visible state handed to the router."""
        engine = self.engine
        running = list(engine.batch)
        waiting = list(engine.waiting)
        return ReplicaSnapshot(
            replica_id=self.index,
            token_capacity=engine.token_capacity,
            used_tokens=engine.pool.used_tokens,
            running_current_tokens=tuple(r.current_context_tokens for r in running),
            running_generated_tokens=tuple(r.generated_tokens for r in running),
            waiting_prompt_tokens=tuple(r.current_context_tokens for r in waiting),
            running_remaining_cap_tokens=tuple(r.remaining_cap_tokens for r in running),
            waiting_generated_tokens=tuple(r.generated_tokens for r in waiting),
            waiting_remaining_cap_tokens=tuple(r.remaining_cap_tokens for r in waiting),
        )


class ClusterSimulator:
    """Drives an (optionally elastic) fleet of inference engines.

    Args:
        platform: deployment target of every replica (homogeneous fleet).
        num_replicas: initial number of independent engines; with an
            ``autoscaler`` this is only the starting size.
        router: placement policy, as a :class:`Router` instance or a registry
            name (``round-robin``, ``least-outstanding``, ``least-kv-load``,
            ``memory-aware``).
        scheduler_name: per-replica admission scheduler registry name; each
            replica gets its *own* scheduler instance so history-based
            policies learn only from their replica's completions.
        scheduler_kwargs: forwarded to every scheduler constructor.
        scheduler_factory: overrides ``scheduler_name``/``scheduler_kwargs``
            with an arbitrary per-replica scheduler builder (also used for
            replicas launched mid-run by the autoscaler, which come up cold:
            fresh engine, empty scheduler history).
        eviction_policy_factory: per-replica eviction policy builder
            (engines must not share mutable policy state).
        block_size: KV-cache block size in tokens.
        chunked_prefill_tokens: per-iteration prefill-token cap per replica.
        token_capacity_override: replaces each replica's KV token capacity
            (scaled experiments).
        reject_when_saturated: when every routable replica is saturated, turn
            new arrivals away instead of queueing them (cluster-level
            admission control); rejected requests never execute but are
            reported.
        autoscaler: elastic-fleet driver (see
            :mod:`repro.serving.autoscale`); ``None`` keeps the fleet fixed
            at ``num_replicas``.
        limits: safety bounds over the whole fleet (``max_steps`` counts
            iterations summed across replicas).
        fast_path: let replicas fuse provably event-free decode iterations
            into macro-steps (see :meth:`InferenceEngine.try_jump`), bounded
            so every cross-replica observation point (arrival routing,
            autoscale decisions, warm-up completions, and — for closed-loop
            clients — any other replica's steps) sees bit-identical state;
            ``False`` forces the reference one-iteration loop for bisection.
    """

    def __init__(
        self,
        platform: Platform,
        num_replicas: int,
        router: Router | str,
        scheduler_name: str = "past-future",
        scheduler_kwargs: dict | None = None,
        scheduler_factory: Callable[[], Scheduler] | None = None,
        eviction_policy_factory: Callable[[], EvictionPolicy] | None = None,
        cost_model: CostModel | None = None,
        block_size: int = 1,
        chunked_prefill_tokens: int | None = None,
        token_capacity_override: int | None = None,
        reject_when_saturated: bool = False,
        autoscaler: Autoscaler | None = None,
        limits: SimulationLimits | None = None,
        fast_path: bool = True,
    ) -> None:
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if autoscaler is not None and not (
            autoscaler.min_replicas <= num_replicas <= autoscaler.max_replicas
        ):
            raise ValueError(
                "num_replicas must start within the autoscaler's "
                f"[{autoscaler.min_replicas}, {autoscaler.max_replicas}] bounds"
            )
        self.platform = platform
        self.router = create_router(router) if isinstance(router, str) else router
        self.reject_when_saturated = reject_when_saturated
        self.autoscaler = autoscaler
        self.limits = limits or SimulationLimits()
        self.fast_path = fast_path
        if scheduler_factory is None:
            kwargs = dict(scheduler_kwargs or {})

            def scheduler_factory() -> Scheduler:
                return create_scheduler(scheduler_name, **kwargs)

        self._scheduler_factory = scheduler_factory
        self._eviction_policy_factory = eviction_policy_factory
        self._cost_model = cost_model
        self._block_size = block_size
        self._chunked_prefill_tokens = chunked_prefill_tokens
        self._token_capacity_override = token_capacity_override
        self.replicas: list[_Replica] = []
        self.fleet_timeline: list[FleetSizeSample] = []
        for _ in range(num_replicas):
            self._launch_replica(0.0, warmup_delay=0.0)
        self.rejected: list[Request] = []
        self._deferred_releases = 0
        self._consumed = False

    # ------------------------------------------------------------------ state
    @property
    def num_replicas(self) -> int:
        """Number of engines ever launched (including retired ones)."""
        return len(self.replicas)

    @property
    def active_replicas(self) -> list[_Replica]:
        """Replicas the router may currently place work on."""
        return [replica for replica in self.replicas if replica.routable]

    @property
    def num_active(self) -> int:
        """Routable replicas right now."""
        return len(self.active_replicas)

    def _count(self, state: ReplicaState) -> int:
        return sum(1 for replica in self.replicas if replica.state is state)

    def snapshots(self) -> list[ReplicaSnapshot]:
        """Current router-visible state of every *routable* replica."""
        return [replica.snapshot() for replica in self.active_replicas]

    def _record_fleet_sample(self, time: float) -> None:
        # Samples are recorded at event-processing times, which the loop
        # visits in nondecreasing order; the clamp keeps the timeline
        # monotonic even if a caller passes a replica's post-step clock.
        if self.fleet_timeline:
            time = max(time, self.fleet_timeline[-1].time)
        sample = FleetSizeSample(
            time=time,
            active=self._count(ReplicaState.ACTIVE),
            warming=self._count(ReplicaState.WARMING),
            draining=self._count(ReplicaState.DRAINING),
        )
        if self.fleet_timeline and self.fleet_timeline[-1].time == time:
            self.fleet_timeline[-1] = sample
        else:
            self.fleet_timeline.append(sample)

    # ------------------------------------------------------------- elasticity
    def _build_engine(self) -> InferenceEngine:
        return InferenceEngine(
            platform=self.platform,
            scheduler=self._scheduler_factory(),
            cost_model=self._cost_model,
            eviction_policy=(
                self._eviction_policy_factory() if self._eviction_policy_factory else None
            ),
            block_size=self._block_size,
            chunked_prefill_tokens=self._chunked_prefill_tokens,
            token_capacity_override=self._token_capacity_override,
            fast_path=self.fast_path,
        )

    def _launch_replica(self, time: float, warmup_delay: float) -> _Replica:
        """Bring up one cold replica; routable after ``warmup_delay``."""
        ready_at = time + warmup_delay
        replica = _Replica(
            index=len(self.replicas),
            engine=self._build_engine(),
            state=ReplicaState.ACTIVE if warmup_delay <= 0 else ReplicaState.WARMING,
            launched_at=time,
            ready_at=ready_at,
            clock=ready_at if warmup_delay <= 0 else time,
        )
        self.replicas.append(replica)
        self._record_fleet_sample(time)
        return replica

    def _activate_ready(self, time: float) -> None:
        """Promote warming replicas whose warm-up delay has elapsed."""
        changed = False
        for replica in self.replicas:
            if replica.state is ReplicaState.WARMING and replica.ready_at <= time:
                replica.state = ReplicaState.ACTIVE
                replica.clock = max(replica.clock, replica.ready_at)
                changed = True
        if changed:
            self._record_fleet_sample(time)

    def _retire(self, replica: _Replica, time: float) -> None:
        replica.state = ReplicaState.RETIRED
        replica.retired_at = max(replica.clock, time)
        self._record_fleet_sample(time)

    def _drain_replicas(self, count: int, time: float) -> None:
        """Take ``count`` provisioned replicas out of the routable set.

        Warming replicas are cancelled first (they hold no work); active ones
        are drained least-outstanding-first, newest-first on ties, and at
        least one active replica always remains so arrivals stay routable
        while replacements warm up.  A drained replica accepts no new
        placements but finishes every resident request before retiring.
        """
        warming = [r for r in self.replicas if r.state is ReplicaState.WARMING]
        for replica in sorted(warming, key=lambda r: -r.index)[:count]:
            self._retire(replica, time)
            count -= 1
        if count <= 0:
            return
        active = self.active_replicas
        victims = sorted(
            active,
            key=lambda r: (r.engine.num_running + r.engine.num_waiting, -r.index),
        )[: max(0, min(count, len(active) - 1))]
        for replica in victims:
            if replica.engine.has_work():
                replica.state = ReplicaState.DRAINING
                self._record_fleet_sample(time)
            else:
                self._retire(replica, time)

    def _apply_autoscale_target(self, target: int, time: float) -> None:
        provisioned = self._count(ReplicaState.ACTIVE) + self._count(ReplicaState.WARMING)
        delta = target - provisioned
        if delta > 0:
            assert self.autoscaler is not None
            for _ in range(delta):
                self._launch_replica(time, warmup_delay=self.autoscaler.warmup_delay)
        elif delta < 0:
            self._drain_replicas(-delta, time)

    def _run_autoscale_decision(self, time: float) -> None:
        assert self.autoscaler is not None
        target = self.autoscaler.evaluate(
            time,
            self.snapshots(),
            num_warming=self._count(ReplicaState.WARMING),
            num_draining=self._count(ReplicaState.DRAINING),
        )
        self._apply_autoscale_target(target, time)

    # ---------------------------------------------------------------- routing
    def _route_arrival(self, spec: RequestSpec, now: float) -> None:
        request = Request(
            spec=spec,
            arrival_time=spec.arrival_time if spec.arrival_time is not None else now,
        )
        routable = {replica.index: replica for replica in self.active_replicas}
        snapshots = [replica.snapshot() for replica in routable.values()]
        if self.autoscaler is not None and snapshots:
            saturated = sum(1 for s in snapshots if s.saturated) / len(snapshots)
            self.autoscaler.note_arrival(now, saturated, spec.prompt_tokens)
        if self.reject_when_saturated and all(s.saturated for s in snapshots):
            self.rejected.append(request)
            # The client's slot must be released or a closed-loop pool would
            # deadlock — but not at this same instant: snapshots only change
            # when a replica steps, so an immediate release would re-inject
            # (and re-reject) the client's next request in a zero-time
            # cascade.  Release it after the next completed iteration, when
            # the fleet has actually made progress.
            self._deferred_releases += 1
            return
        replica_id = self.router.select_replica(spec, snapshots)
        replica = routable.get(replica_id)
        if replica is None:
            known = next((r for r in self.replicas if r.index == replica_id), None)
            if known is not None:
                raise RuntimeError(
                    f"router {self.router.name!r} returned replica {replica_id}, which is "
                    f"{known.state.value} and must not receive new work; routable ids: "
                    f"{sorted(routable)}"
                )
            raise RuntimeError(
                f"router {self.router.name!r} returned invalid replica {replica_id}; "
                f"routable ids: {sorted(routable)}"
            )
        if not replica.engine.has_work():
            # An idle replica resumes at the arrival instant; a busy one keeps
            # its clock and picks the request up at its next iteration.
            replica.clock = max(replica.clock, now)
        replica.requests.append(request)
        replica.engine.submit(request)

    # ---------------------------------------------------------------- running
    def _run(
        self,
        generator: LoadGenerator,
        workload_name: str,
        num_clients: int,
        arrivals_from_finishes: bool = False,
    ) -> ClusterResult:
        # Engines accumulate state (stats, timelines, scheduler history), so a
        # simulator drives exactly one run; build a fresh one per experiment.
        if self._consumed:
            raise RuntimeError("ClusterSimulator instances are single-use; build a new one per run")
        self._consumed = True
        generator.start(0.0)
        self.router.on_run_start()
        if self.autoscaler is not None:
            self.autoscaler.on_run_start()
        completed = True
        total_steps = 0

        # Event priorities at equal times: warm-ups complete first (a replica
        # ready at t may serve an arrival at t), decisions see the pre-arrival
        # fleet, and arrivals join before the step at the same instant
        # (matching ServingSimulator's "arrivals <= now join this batch").
        READY, DECIDE, ARRIVAL, STEP = 0, 1, 2, 3

        while True:
            next_arrival = generator.next_arrival_time()
            busy = [r for r in self.replicas if r.steppable and r.engine.has_work()]
            step_replica = min(busy, key=lambda r: (r.clock, r.index)) if busy else None

            if step_replica is None and next_arrival is None:
                # No resident work and no future arrivals: the run is drained
                # (or a closed-loop pool's remaining clients were rejected).
                break

            events: list[tuple[float, int]] = []
            warming = [r for r in self.replicas if r.state is ReplicaState.WARMING]
            if warming:
                events.append((min(r.ready_at for r in warming), READY))
            if self.autoscaler is not None:
                events.append((self.autoscaler.next_decision_time, DECIDE))
            if next_arrival is not None:
                events.append((next_arrival, ARRIVAL))
            if step_replica is not None:
                events.append((step_replica.clock, STEP))
            time, kind = min(events)

            if kind == READY:
                self._activate_ready(time)
                continue
            if kind == DECIDE:
                self._run_autoscale_decision(time)
                continue
            if kind == ARRIVAL:
                for spec in generator.pop_arrivals(time):
                    self._route_arrival(spec, time)
                continue

            assert step_replica is not None
            if self.fast_path and not self._deferred_releases:
                # Event-jump: this replica may fast-forward decode iterations
                # that provably produce no event.  Silent iterations touch
                # only the replica's own engine, so they commute with other
                # replicas' silent iterations; the horizon is the earliest
                # moment anything can *observe* this replica — a scheduled
                # arrival (routing snapshots), an autoscale decision, a
                # warm-up completion, and, when completions generate new
                # arrivals (closed-loop clients), any other busy replica's
                # next iteration, which could finish a request whose
                # follow-up request is routed using this replica's state.
                horizon = min(
                    (event_time for event_time, kind in events if kind != STEP),
                    default=None,
                )
                if arrivals_from_finishes:
                    for other in busy:
                        if other is not step_replica and (
                            horizon is None or other.clock < horizon
                        ):
                            horizon = other.clock
                jump = step_replica.engine.try_jump(
                    step_replica.clock,
                    horizon=horizon,
                    max_steps=self.limits.max_steps - total_steps,
                    max_time=self.limits.max_time,
                )
                if jump is not None:
                    step_replica.clock = jump.end_time
                    step_replica.idle_streak = 0
                    total_steps += jump.steps
                    if (
                        total_steps >= self.limits.max_steps
                        or step_replica.clock >= self.limits.max_time
                    ):
                        completed = False
                        break
                    continue
            result = step_replica.engine.step(step_replica.clock)
            if result.duration > 0:
                step_replica.clock = result.end_time
            for request in result.finished:
                generator.on_request_finished(step_replica.clock)
                self.router.on_request_finished(request, step_replica.clock)
                if self.autoscaler is not None:
                    self.autoscaler.on_request_finished(request, step_replica.clock)
            # Client slots freed by rejections are released only once some
            # replica can route again (rejection implies every replica was
            # busy, so steps keep coming until that happens) — immediate
            # release would just feed the next request into the same
            # saturated fleet.
            if self._deferred_releases:
                open_snapshots = self.snapshots()
                if open_snapshots and not all(s.saturated for s in open_snapshots):
                    while self._deferred_releases:
                        self._deferred_releases -= 1
                        generator.on_request_finished(step_replica.clock)

            if step_replica.state is ReplicaState.DRAINING and not step_replica.engine.has_work():
                # Drain complete: every resident request ran to completion.
                # The timeline sample lands at the event time (step start);
                # retirement itself is stamped with the step's end clock.
                self._retire(step_replica, time)

            # Stall guard, per replica: repeated idle iterations with waiting
            # requests mean no admission is possible (see ServingSimulator).
            if result.was_idle:
                step_replica.idle_streak += 1
                if step_replica.idle_streak >= 3:
                    completed = False
                    break
            else:
                step_replica.idle_streak = 0

            total_steps += 1
            if total_steps >= self.limits.max_steps or step_replica.clock >= self.limits.max_time:
                completed = False
                break

        makespan = max((r.clock for r in self.replicas), default=0.0)
        self._record_fleet_sample(makespan)
        replica_results = [
            RunResult(
                scheduler=replica.engine.scheduler.describe(),
                workload=workload_name,
                platform=self.platform.describe(),
                num_clients=num_clients,
                duration=replica.clock,
                requests=replica.requests,
                engine_stats=replica.engine.stats,
                memory_timeline=replica.engine.memory_timeline,
                token_capacity=replica.engine.token_capacity,
                completed=completed,
            )
            for replica in self.replicas
        ]
        return ClusterResult(
            router=self.router.describe(),
            workload=workload_name,
            platform=self.platform.describe(),
            num_replicas=self.num_replicas,
            duration=makespan,
            replicas=replica_results,
            rejected=list(self.rejected),
            completed=completed,
            autoscaler=self.autoscaler.describe() if self.autoscaler is not None else None,
            fleet_timeline=list(self.fleet_timeline),
            lifetimes=[replica.lifetime() for replica in self.replicas],
        )

    def run_closed_loop(
        self,
        workload: Workload,
        num_clients: int,
        think_time: float = 0.0,
    ) -> ClusterResult:
        """Serve a workload with a fleet-wide closed-loop client pool."""
        pool = ClosedLoopClientPool(workload, num_clients=num_clients, think_time=think_time)
        return self._run(pool, workload.name, num_clients, arrivals_from_finishes=True)

    def run_open_loop(
        self,
        workload: Workload,
        request_rate: float | None = None,
        seed: int = 0,
    ) -> ClusterResult:
        """Serve a workload with open-loop (Poisson, bursty, or recorded) arrivals."""
        arrivals = OpenLoopArrivals(workload, request_rate=request_rate, seed=seed)
        return self._run(arrivals, workload.name, num_clients=0)

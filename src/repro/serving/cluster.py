"""Multi-replica cluster serving: an elastic fleet of engines behind a router.

The single-engine :class:`~repro.serving.server.ServingSimulator` answers the
paper's question — does past-future admission control raise one engine's
goodput?  A production deployment runs a *fleet* of such engines behind a
router, and the same per-replica signal the scheduler uses (predicted future
memory) becomes a placement signal: send each arriving request to the replica
whose batch has the most predicted headroom.

:class:`ClusterSimulator` owns a dynamic set of independent
:class:`~repro.engine.engine.InferenceEngine` instances — each with its own
admission scheduler and KV-cache pool — plus one
:class:`~repro.serving.routing.Router` and, optionally, one
:class:`~repro.serving.autoscale.Autoscaler` that grows and shrinks the fleet
during the run.  Fleets may be **heterogeneous**: pass
``platforms=[a100, a100, rtx4090]`` and replicas cycle through the platform
list as they launch, each with its own KV capacity, cost model, and relative
decode speed — all visible to routers via the per-replica
:class:`~repro.serving.routing.ReplicaView`.

Routing is decision-based: the router returns a
:class:`~repro.serving.routing.RoutingDecision` — ``route`` places the
request, ``reject`` turns it away (reported in
:attr:`~repro.serving.results.ClusterResult.rejected` with per-reason
counts), and ``defer`` parks it for a later routing attempt (the simulator
re-runs the decision at ``retry_at``; the request's arrival timestamp — and
therefore its TTFT — still counts from the original arrival).

The simulation is event-driven over six event types:

1. **warm-up completion** — a launched replica finishes its warm-up delay and
   becomes routable;
2. **fault action** — an instant of the attached
   :class:`~repro.serving.faults.FaultPlan` arrives: a replica crash (all
   resident and queued work aborted and, under the plan's
   :class:`~repro.serving.faults.RetryPolicy`, re-dispatched), a spot-style
   preemption notice (drain plus queue migration) or its deadline, or a
   straggler window boundary (cost-model slowdown on/off);
3. **autoscale decision** — the autoscaler evaluates its policy on the fixed
   decision interval; scale-up launches warming replicas, scale-down drains
   the least-loaded active replica (no new placements, resident work runs to
   completion, then it retires);
4. **arrival** — the next request of the load generator arrives and the
   router decides its fate over a :class:`~repro.serving.routing.ReplicaView`
   per *routable* replica;
5. **defer retry** — a previously deferred, retried, or migrated request
   reaches its ``retry_at`` instant and is routed again;
6. **replica step** — the replica with the earliest local clock among those
   with work (active or draining) runs one continuous-batching iteration,
   advancing its clock by the iteration's modelled latency.

Replica clocks advance independently (real replicas do not share a decode
cadence); the fleet makespan is the latest replica clock when the run drains.
Replica ids are assigned at launch and never reused, so after any scale-down
the routable id set is non-contiguous — routers must treat
``ReplicaView.replica_id`` as an opaque key, and the simulator raises if a
router routes to the id of a warming, draining, or retired replica.
"""

from __future__ import annotations

import enum
import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.cost_model import CostModel
from repro.engine.engine import InferenceEngine
from repro.engine.eviction import EvictionPolicy
from repro.engine.request import Request
from repro.hardware.platform import Platform, ensure_single_model
from repro.metrics.fleet import FleetSizeSample, ReplicaLifetime
from repro.obs import events as obs
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import create_scheduler
from repro.serving.autoscale import Autoscaler
from repro.serving.clients import ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.faults import (
    HEALTH_DEAD,
    HEALTH_DEGRADED,
    HEALTH_DRAINING,
    HEALTH_HEALTHY,
    REASON_NO_REPLICAS,
    REASON_REPLICA_CRASH,
    REASON_RETRIES_EXHAUSTED,
    REASON_ROUTING_ERROR,
    REASON_UNROUTED,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    SlowdownCostModel,
)
from repro.serving.results import ClusterResult, RunResult
from repro.serving.routing import (
    REASON_SATURATED,
    ReplicaView,
    Router,
    RoutingDecision,
    create_router,
)
from repro.serving.server import (
    LoadGenerator,
    SimulationLimits,
    _submit_attrs,
    emit_session_abandoned,
    emit_session_completion,
    emit_session_submit,
)
from repro.serving.throttle import OverloadThrottle
from repro.workloads.interactions import Interaction, InteractionLoadGenerator
from repro.workloads.spec import RequestSpec, Workload


class ReplicaState(enum.Enum):
    """Lifecycle of one replica inside the fleet."""

    #: launched but still inside its warm-up delay; not routable.
    WARMING = "warming"
    #: routable and serving.
    ACTIVE = "active"
    #: finishing resident work before retiring; not routable.
    DRAINING = "draining"
    #: fully drained and released; accrues no further replica-seconds.
    RETIRED = "retired"
    #: crashed (or preemption deadline expired); its in-flight work was
    #: aborted and it accrues no further replica-seconds.
    DEAD = "dead"


@dataclass
class _Replica:
    """One engine plus the cluster-side bookkeeping around it."""

    index: int
    engine: InferenceEngine
    platform: Platform
    speed_factor: float = 1.0
    state: ReplicaState = ReplicaState.ACTIVE
    launched_at: float = 0.0
    ready_at: float = 0.0
    retired_at: float | None = None
    clock: float = 0.0
    idle_streak: int = 0
    requests: list[Request] = field(default_factory=list)
    #: fault-injection health state (see :mod:`repro.serving.faults`).
    health: str = HEALTH_HEALTHY
    #: original cost model while a straggler slowdown wrapper is installed.
    saved_cost_model: CostModel | None = None

    @property
    def routable(self) -> bool:
        """Whether the router may place new work here."""
        return self.state is ReplicaState.ACTIVE

    @property
    def steppable(self) -> bool:
        """Whether the replica runs iterations (active or draining)."""
        return self.state in (ReplicaState.ACTIVE, ReplicaState.DRAINING)

    def lifetime(self) -> ReplicaLifetime:
        """Provisioned interval for replica-seconds accounting."""
        return ReplicaLifetime(
            replica_id=self.index,
            launched_at=self.launched_at,
            ready_at=self.ready_at,
            retired_at=self.retired_at,
        )

    def snapshot(self) -> ReplicaView:
        """Scheduler-visible state handed to the router."""
        engine = self.engine
        running = list(engine.batch)
        waiting = list(engine.waiting)
        return ReplicaView(
            replica_id=self.index,
            token_capacity=engine.token_capacity,
            used_tokens=engine.pool.used_tokens,
            running_current_tokens=tuple(r.current_context_tokens for r in running),
            running_generated_tokens=tuple(r.generated_tokens for r in running),
            waiting_prompt_tokens=tuple(r.current_context_tokens for r in waiting),
            running_remaining_cap_tokens=tuple(r.remaining_cap_tokens for r in running),
            waiting_generated_tokens=tuple(r.generated_tokens for r in waiting),
            waiting_remaining_cap_tokens=tuple(r.remaining_cap_tokens for r in waiting),
            platform=self.platform,
            speed_factor=self.speed_factor,
            health=self.health,
        )


@dataclass(frozen=True)
class _DeferredArrival:
    """One request parked by a ``defer`` decision, keyed for the retry heap."""

    retry_at: float
    sequence: int
    spec: RequestSpec
    arrived_at: float

    def __lt__(self, other: "_DeferredArrival") -> bool:
        return (self.retry_at, self.sequence) < (other.retry_at, other.sequence)


class ClusterSimulator:
    """Drives an (optionally elastic, optionally heterogeneous) engine fleet.

    Args:
        platform: deployment target shared by every replica (homogeneous
            fleet); exactly one of ``platform`` / ``platforms`` is required.
        num_replicas: initial number of independent engines; with an
            ``autoscaler`` this is only the starting size.
        router: placement policy, as a :class:`Router` instance or a registry
            name (``round-robin``, ``least-outstanding``, ``least-kv-load``,
            ``memory-aware``).
        scheduler_name: per-replica admission scheduler registry name; each
            replica gets its *own* scheduler instance so history-based
            policies learn only from their replica's completions.
        scheduler_kwargs: forwarded to every scheduler constructor.
        scheduler_factory: overrides ``scheduler_name``/``scheduler_kwargs``
            with an arbitrary per-replica scheduler builder (also used for
            replicas launched mid-run by the autoscaler, which come up cold:
            fresh engine, empty scheduler history).
        eviction_policy_factory: per-replica eviction policy builder
            (engines must not share mutable policy state).
        cost_model: explicit latency model; homogeneous fleets only (each
            heterogeneous replica derives its own from its platform).
        block_size: KV-cache block size in tokens.
        chunked_prefill_tokens: per-iteration prefill-token cap per replica.
        token_capacity_override: replaces each replica's KV token capacity
            with one absolute value (scaled homogeneous experiments).
        capacity_scale: multiplies each replica's *own* platform capacity
            instead — the scaled-experiment knob for heterogeneous fleets,
            where one absolute override would erase the capacity differences
            under study.  Mutually exclusive with ``token_capacity_override``.
        reject_when_saturated: convenience knob applying the same admission
            policy routers can carry themselves (see :class:`Router`): when
            every routable replica is saturated, new arrivals are turned away
            instead of queued; rejected requests never execute but are
            reported.  Checked at the cluster level, so a caller-supplied
            router instance is never mutated.
        platforms: per-replica deployment targets for a heterogeneous fleet.
            Replicas cycle through this list in launch order (the initial
            fleet and every autoscaler launch), so a two-entry list behind a
            six-replica fleet alternates platforms.  All platforms must serve
            the same model.
        autoscaler: elastic-fleet driver (see
            :mod:`repro.serving.autoscale`); ``None`` keeps the fleet fixed
            at ``num_replicas``.
        limits: safety bounds over the whole fleet (``max_steps`` counts
            iterations summed across replicas).
        fast_path: let replicas fuse provably event-free decode iterations
            into macro-steps (see :meth:`InferenceEngine.try_jump` and, for
            non-empty waiting queues,
            :meth:`InferenceEngine.try_jump_saturated`), bounded
            so every cross-replica observation point (arrival routing,
            autoscale decisions, warm-up completions, defer retries, and —
            for closed-loop clients — any other replica's steps) sees
            bit-identical state; ``False`` forces the reference
            one-iteration loop for bisection.
        throttle: optional overload rate limiter applied before routing
            (see :mod:`repro.serving.throttle`).
        tracer: optional observer (see :mod:`repro.obs`) shared with every
            replica engine.  The cluster emits submission, routing, replica
            lifecycle, and autoscale events; each engine emits the
            queue/admission/token lifecycle and its ``engine.step`` /
            ``engine.jump`` spans tagged with its replica index.  The
            default :class:`~repro.obs.tracer.NullTracer` keeps runs
            byte-identical to untraced ones.
        faults: optional seeded failure schedule (see
            :mod:`repro.serving.faults`): replica crashes, spot-style
            preemptions with drain windows, straggler slowdowns, and
            transient routing errors, plus the plan's retry/migration/
            replacement recovery knobs.  ``None`` (the default) keeps every
            replica perfectly reliable and runs byte-identical to builds
            that predate fault injection.
        prefix_cache_tokens: per-replica session prefix-cache budget in KV
            tokens (see :class:`repro.memory.prefix_cache.PrefixCache`);
            each replica's engine retains finished session turns' KV context
            for reuse by follow-up turns that land on the same replica.
            ``None`` (the default) disables retention and keeps every run
            byte-identical to builds that predate sessions.
    """

    def __init__(
        self,
        platform: Platform | None = None,
        num_replicas: int = 1,
        router: Router | str = "round-robin",
        scheduler_name: str = "past-future",
        scheduler_kwargs: dict | None = None,
        scheduler_factory: Callable[[], Scheduler] | None = None,
        eviction_policy_factory: Callable[[], EvictionPolicy] | None = None,
        cost_model: CostModel | None = None,
        block_size: int = 1,
        chunked_prefill_tokens: int | None = None,
        token_capacity_override: int | None = None,
        capacity_scale: float | None = None,
        reject_when_saturated: bool = False,
        platforms: Sequence[Platform] | None = None,
        autoscaler: Autoscaler | None = None,
        limits: SimulationLimits | None = None,
        fast_path: bool = True,
        throttle: OverloadThrottle | None = None,
        tracer: Tracer | None = None,
        faults: FaultPlan | None = None,
        prefix_cache_tokens: int | None = None,
    ) -> None:
        if (platform is None) == (platforms is None):
            raise ValueError("exactly one of platform / platforms is required")
        if platforms is not None and not platforms:
            raise ValueError("platforms must not be empty")
        if num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if autoscaler is not None and not (
            autoscaler.min_replicas <= num_replicas <= autoscaler.max_replicas
        ):
            raise ValueError(
                "num_replicas must start within the autoscaler's "
                f"[{autoscaler.min_replicas}, {autoscaler.max_replicas}] bounds"
            )
        if token_capacity_override is not None and capacity_scale is not None:
            raise ValueError("token_capacity_override and capacity_scale are mutually exclusive")
        if capacity_scale is not None and capacity_scale <= 0:
            raise ValueError("capacity_scale must be positive")
        self.platforms: list[Platform] = list(platforms) if platforms is not None else [platform]
        ensure_single_model(self.platforms)
        if cost_model is not None and len(self.platforms) > 1:
            raise ValueError(
                "an explicit cost_model only applies to homogeneous fleets; "
                "heterogeneous replicas derive per-platform cost models"
            )
        #: first platform of the cycle; the homogeneous fleet's platform.
        self.platform = self.platforms[0]
        self.router = create_router(router) if isinstance(router, str) else router
        # Rejection is a router admission policy in the decision API; the
        # constructor knob is kept as a convenience and applies the same
        # check at the cluster level (before the router is consulted, as in
        # PR 1) rather than mutating a caller-supplied — possibly shared —
        # router instance.
        self._force_reject_when_saturated = reject_when_saturated
        self.throttle = throttle
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        self.autoscaler = autoscaler
        self.limits = limits or SimulationLimits()
        self.fast_path = fast_path
        if scheduler_factory is None:
            kwargs = dict(scheduler_kwargs or {})

            def scheduler_factory() -> Scheduler:
                return create_scheduler(scheduler_name, **kwargs)

        self._scheduler_factory = scheduler_factory
        self._eviction_policy_factory = eviction_policy_factory
        self._cost_model = cost_model
        self._block_size = block_size
        self._chunked_prefill_tokens = chunked_prefill_tokens
        self._token_capacity_override = token_capacity_override
        self._capacity_scale = capacity_scale
        self._prefix_cache_tokens = prefix_cache_tokens
        # Relative decode speed per platform-cycle slot, normalised so the
        # fastest platform in the fleet is 1.0 (homogeneous fleets: all 1.0).
        models = [
            cost_model if cost_model is not None else CostModel(p) for p in self.platforms
        ]
        fastest = max(models, key=lambda m: m.effective_decode_bandwidth)
        self._platform_speeds = [m.relative_speed(fastest) for m in models]
        self.replicas: list[_Replica] = []
        self.fleet_timeline: list[FleetSizeSample] = []
        for _ in range(num_replicas):
            self._launch_replica(0.0, warmup_delay=0.0)
        self.rejected: list[Request] = []
        self.reject_reasons: Counter[str] = Counter()
        self.deferrals = 0
        self._deferred_heap: list[_DeferredArrival] = []
        self._defer_sequence = 0
        self._deferred_releases = 0
        self._throttle_releases = 0
        self._consumed = False
        # Fault injection (see repro.serving.faults).  With faults=None every
        # code path below is byte-identical to the pre-fault simulator: no
        # FAULT events enter the loop, no per-arrival error check runs, and
        # all fault counters stay at their zero defaults.
        self.fault_plan = faults
        self._fault_injector = FaultInjector(faults) if faults is not None else None
        self.failed: list[Request] = []
        self.retries = 0
        self.migrations = 0
        self.lost_tokens = 0
        self.fault_log: list[FaultEvent] = []
        self._retry_attempts: dict[str, int] = {}

    # ------------------------------------------------------------------ state
    @property
    def reject_when_saturated(self) -> bool:
        """Whether arrivals into a fully saturated fleet are rejected.

        True when either the constructor convenience knob or the router's
        own admission policy (see :class:`~repro.serving.routing.Router`)
        arms rejection.  Settable, as in PR 1 — assignment toggles the
        cluster-level knob and leaves the router untouched.
        """
        return self._force_reject_when_saturated or self.router.reject_when_saturated

    @reject_when_saturated.setter
    def reject_when_saturated(self, value: bool) -> None:
        """Toggle the cluster-level knob (the router's own policy is untouched)."""
        self._force_reject_when_saturated = value

    @property
    def num_replicas(self) -> int:
        """Number of engines ever launched (including retired ones)."""
        return len(self.replicas)

    @property
    def active_replicas(self) -> list[_Replica]:
        """Replicas the router may currently place work on."""
        return [replica for replica in self.replicas if replica.routable]

    @property
    def num_active(self) -> int:
        """Routable replicas right now."""
        return len(self.active_replicas)

    def _count(self, state: ReplicaState) -> int:
        return sum(1 for replica in self.replicas if replica.state is state)

    def snapshots(self) -> list[ReplicaView]:
        """Current router-visible state of every *routable* replica."""
        return [replica.snapshot() for replica in self.active_replicas]

    def _record_fleet_sample(self, time: float) -> None:
        # Samples are recorded at event-processing times, which the loop
        # visits in nondecreasing order; the clamp keeps the timeline
        # monotonic even if a caller passes a replica's post-step clock.
        if self.fleet_timeline:
            time = max(time, self.fleet_timeline[-1].time)
        sample = FleetSizeSample(
            time=time,
            active=self._count(ReplicaState.ACTIVE),
            warming=self._count(ReplicaState.WARMING),
            draining=self._count(ReplicaState.DRAINING),
        )
        if self.fleet_timeline and self.fleet_timeline[-1].time == time:
            self.fleet_timeline[-1] = sample
        else:
            self.fleet_timeline.append(sample)

    # ------------------------------------------------------------- elasticity
    def _platform_slot(self, launch_index: int) -> tuple[Platform, float]:
        """Platform and speed factor for the ``launch_index``-th replica."""
        slot = launch_index % len(self.platforms)
        return self.platforms[slot], self._platform_speeds[slot]

    def _effective_capacity(self, platform: Platform) -> int | None:
        """Per-replica token-capacity override, or ``None`` for the native one."""
        if self._token_capacity_override is not None:
            return self._token_capacity_override
        if self._capacity_scale is not None:
            return max(1, int(platform.token_capacity * self._capacity_scale))
        return None

    def next_launch_capacity(self) -> int:
        """KV token capacity the *next* launched replica would have.

        The autoscaler consumes this so heterogeneous scale-up is sized in
        capacity units rather than replica counts.
        """
        platform, _ = self._platform_slot(len(self.replicas))
        override = self._effective_capacity(platform)
        return override if override is not None else platform.token_capacity

    def _build_engine(self, platform: Platform) -> InferenceEngine:
        return InferenceEngine(
            platform=platform,
            scheduler=self._scheduler_factory(),
            cost_model=self._cost_model,
            eviction_policy=(
                self._eviction_policy_factory() if self._eviction_policy_factory else None
            ),
            block_size=self._block_size,
            chunked_prefill_tokens=self._chunked_prefill_tokens,
            token_capacity_override=self._effective_capacity(platform),
            fast_path=self.fast_path,
            tracer=self.tracer,
            prefix_cache_tokens=self._prefix_cache_tokens,
        )

    def _launch_replica(self, time: float, warmup_delay: float) -> _Replica:
        """Bring up one cold replica; routable after ``warmup_delay``."""
        ready_at = time + warmup_delay
        platform, speed_factor = self._platform_slot(len(self.replicas))
        replica = _Replica(
            index=len(self.replicas),
            engine=self._build_engine(platform),
            platform=platform,
            speed_factor=speed_factor,
            state=ReplicaState.ACTIVE if warmup_delay <= 0 else ReplicaState.WARMING,
            launched_at=time,
            ready_at=ready_at,
            clock=ready_at if warmup_delay <= 0 else time,
        )
        replica.engine.trace_replica = replica.index
        self.replicas.append(replica)
        self._record_fleet_sample(time)
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REPLICA_LAUNCH,
                    time,
                    replica=replica.index,
                    attrs={
                        "platform": platform.describe(),
                        "warmup_delay": warmup_delay,
                        "state": replica.state.value,
                    },
                )
            )
        return replica

    def _activate_ready(self, time: float) -> None:
        """Promote warming replicas whose warm-up delay has elapsed."""
        changed = False
        for replica in self.replicas:
            if replica.state is ReplicaState.WARMING and replica.ready_at <= time:
                replica.state = ReplicaState.ACTIVE
                replica.clock = max(replica.clock, replica.ready_at)
                changed = True
                if self._tracing:
                    self.tracer.emit(
                        TraceEvent(obs.REPLICA_ACTIVATE, time, replica=replica.index)
                    )
        if changed:
            self._record_fleet_sample(time)

    def _retire(self, replica: _Replica, time: float) -> None:
        replica.state = ReplicaState.RETIRED
        replica.retired_at = max(replica.clock, time)
        self._record_fleet_sample(time)
        if self._tracing:
            self.tracer.emit(TraceEvent(obs.REPLICA_RETIRE, time, replica=replica.index))

    def _drain_replicas(self, count: int, time: float) -> None:
        """Take ``count`` provisioned replicas out of the routable set.

        Warming replicas are cancelled first (they hold no work); active ones
        are drained least-outstanding-first, newest-first on ties, and at
        least one active replica always remains so arrivals stay routable
        while replacements warm up.  A drained replica accepts no new
        placements but finishes every resident request before retiring.
        """
        warming = [r for r in self.replicas if r.state is ReplicaState.WARMING]
        for replica in sorted(warming, key=lambda r: -r.index)[:count]:
            self._retire(replica, time)
            count -= 1
        if count <= 0:
            return
        active = self.active_replicas
        victims = sorted(
            active,
            key=lambda r: (r.engine.num_running + r.engine.num_waiting, -r.index),
        )[: max(0, min(count, len(active) - 1))]
        for replica in victims:
            if replica.engine.has_work():
                replica.state = ReplicaState.DRAINING
                self._record_fleet_sample(time)
                if self._tracing:
                    self.tracer.emit(
                        TraceEvent(
                            obs.REPLICA_DRAIN,
                            time,
                            replica=replica.index,
                            attrs={
                                "running": replica.engine.num_running,
                                "waiting": replica.engine.num_waiting,
                            },
                        )
                    )
            else:
                self._retire(replica, time)

    def _apply_autoscale_target(self, target: int, time: float) -> None:
        provisioned = self._count(ReplicaState.ACTIVE) + self._count(ReplicaState.WARMING)
        delta = target - provisioned
        if delta > 0:
            assert self.autoscaler is not None
            for _ in range(delta):
                self._launch_replica(time, warmup_delay=self.autoscaler.warmup_delay)
        elif delta < 0:
            self._drain_replicas(-delta, time)

    def _run_autoscale_decision(self, time: float) -> None:
        assert self.autoscaler is not None
        warming_capacity = sum(
            replica.engine.token_capacity
            for replica in self.replicas
            if replica.state is ReplicaState.WARMING
        )
        target = self.autoscaler.evaluate(
            time,
            self.snapshots(),
            num_warming=self._count(ReplicaState.WARMING),
            num_draining=self._count(ReplicaState.DRAINING),
            warming_capacity=warming_capacity,
            launch_capacity=self.next_launch_capacity(),
        )
        if self._tracing:
            decision = self.autoscaler.decisions[-1]
            self.tracer.emit(
                TraceEvent(
                    obs.AUTOSCALE_DECISION,
                    time,
                    attrs={
                        "target": decision.target,
                        "provisioned": decision.provisioned,
                        "active": decision.num_active,
                        "warming": self._count(ReplicaState.WARMING),
                        "draining": self._count(ReplicaState.DRAINING),
                        "saturation_rate": round(decision.saturation_rate, 4),
                        "arrival_rate": round(decision.arrival_rate, 4),
                    },
                )
            )
        self._apply_autoscale_target(target, time)

    # ----------------------------------------------------------------- faults
    def _apply_faults(self, time: float) -> None:
        """Apply every fault action of the plan scheduled at or before ``time``."""
        injector = self._fault_injector
        assert injector is not None
        for action in injector.pop_due(time):
            if not 0 <= action.replica < len(self.replicas):
                self.fault_log.append(
                    FaultEvent(
                        time=time,
                        kind=f"skipped:{action.kind}",
                        replica=action.replica,
                        detail={"reason": "no-such-replica"},
                    )
                )
                continue
            replica = self.replicas[action.replica]
            if action.kind == "crash":
                if replica.state not in (ReplicaState.RETIRED, ReplicaState.DEAD):
                    self._crash_replica(replica, time, cause="crash")
            elif action.kind == "preempt":
                if replica.state is ReplicaState.ACTIVE:
                    self._preempt_replica(replica, time, action.fault)
            elif action.kind == "preempt-deadline":
                # Only fires if the drain did not complete in time; a replica
                # that finished its resident work already retired gracefully.
                if replica.state is ReplicaState.DRAINING and replica.engine.has_work():
                    self._crash_replica(replica, time, cause="preemption-deadline")
            elif action.kind == "straggler-start":
                if replica.steppable or replica.state is ReplicaState.WARMING:
                    self._begin_straggler(replica, time, action.fault)
            elif action.kind == "straggler-end":
                self._end_straggler(replica, time)

    def _crash_replica(self, replica: _Replica, time: float, cause: str) -> None:
        """Kill ``replica``: abort its work, mark it dead, recover what we can.

        Aborted requests leave the replica's per-replica accounting and move
        to the cluster-level ``failed`` list (their partial tokens count as
        lost work); under a retry policy each one is re-dispatched through
        the defer heap, otherwise it is rejected with a typed reason.  A
        cold replacement launches immediately when the plan asks for one.
        """
        assert self.fault_plan is not None
        was_warming = replica.state is ReplicaState.WARMING
        aborted = replica.engine.abort_all(time)
        if aborted:
            aborted_ids = {id(request) for request in aborted}
            replica.requests = [r for r in replica.requests if id(r) not in aborted_ids]
        lost = sum(request.generated_tokens for request in aborted)
        self.lost_tokens += lost
        self.failed.extend(aborted)
        replica.state = ReplicaState.DEAD
        replica.health = HEALTH_DEAD
        replica.retired_at = max(replica.clock, time)
        self._record_fleet_sample(time)
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REPLICA_FAIL,
                    time,
                    replica=replica.index,
                    attrs={"cause": cause, "killed": len(aborted), "lost_tokens": lost},
                )
            )
        replacement = None
        if self.fault_plan.replace_crashed and not was_warming:
            replacement = self._launch_replica(
                time, warmup_delay=self.fault_plan.replacement_warmup
            )
        self.fault_log.append(
            FaultEvent(
                time=time,
                kind=cause,
                replica=replica.index,
                detail={
                    "killed": len(aborted),
                    "lost_tokens": lost,
                    "replacement": replacement.index if replacement is not None else None,
                },
            )
        )
        for request in aborted:
            self._redispatch(
                request.spec,
                request.arrival_time,
                time,
                cause=cause,
                no_retry_reason=REASON_REPLICA_CRASH,
            )

    def _preempt_replica(self, replica: _Replica, time: float, fault) -> None:
        """Spot-style preemption notice: stop placements, drain, migrate queue."""
        assert self.fault_plan is not None
        replica.state = ReplicaState.DRAINING
        replica.health = HEALTH_DRAINING
        migrated = replica.engine.drain_waiting() if self.fault_plan.migrate_on_drain else []
        if migrated:
            migrated_ids = {id(request) for request in migrated}
            replica.requests = [r for r in replica.requests if id(r) not in migrated_ids]
            for request in migrated:
                # Evictees in the queue lose their streamed-so-far progress
                # with the migration (the target replica starts them cold).
                self.lost_tokens += request.generated_tokens
                self.migrations += 1
                if self._tracing:
                    self.tracer.emit(
                        TraceEvent(
                            obs.REQUEST_MIGRATE,
                            time,
                            request_id=request.request_id,
                            replica=replica.index,
                            attrs={"generated_tokens": request.generated_tokens},
                        )
                    )
                # retry_at == time: the RETRY event fires at this same
                # instant, right after any arrival, so migrated work re-routes
                # with zero added latency and no retry-attempt charge.
                heapq.heappush(
                    self._deferred_heap,
                    _DeferredArrival(
                        retry_at=time,
                        sequence=self._defer_sequence,
                        spec=request.spec,
                        arrived_at=request.arrival_time,
                    ),
                )
                self._defer_sequence += 1
        self._record_fleet_sample(time)
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REPLICA_DRAIN,
                    time,
                    replica=replica.index,
                    attrs={
                        "cause": "preemption",
                        "notice": fault.notice,
                        "running": replica.engine.num_running,
                        "migrated": len(migrated),
                    },
                )
            )
        self.fault_log.append(
            FaultEvent(
                time=time,
                kind="preemption",
                replica=replica.index,
                detail={"notice": fault.notice, "migrated": len(migrated)},
            )
        )
        if not replica.engine.has_work():
            self._retire(replica, time)

    def _begin_straggler(self, replica: _Replica, time: float, fault) -> None:
        """Install the slowdown wrapper and mark the replica degraded."""
        if replica.saved_cost_model is not None:
            return  # overlapping windows: the first slowdown stays in force
        replica.saved_cost_model = replica.engine.cost_model
        replica.engine.cost_model = SlowdownCostModel(replica.engine.cost_model, fault.slowdown)
        if replica.health == HEALTH_HEALTHY:
            replica.health = HEALTH_DEGRADED
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REPLICA_FAIL,
                    time,
                    replica=replica.index,
                    attrs={"cause": "straggler", "slowdown": fault.slowdown},
                )
            )
        self.fault_log.append(
            FaultEvent(
                time=time,
                kind="straggler-start",
                replica=replica.index,
                detail={"slowdown": fault.slowdown, "duration": fault.duration},
            )
        )

    def _end_straggler(self, replica: _Replica, time: float) -> None:
        """Restore the replica's true cost model and healthy state."""
        if replica.saved_cost_model is None:
            return  # never started (e.g. the replica crashed mid-window)
        replica.engine.cost_model = replica.saved_cost_model
        replica.saved_cost_model = None
        if replica.health == HEALTH_DEGRADED:
            replica.health = HEALTH_HEALTHY
        if self._tracing:
            self.tracer.emit(TraceEvent(obs.REPLICA_RECOVER, time, replica=replica.index))
        self.fault_log.append(
            FaultEvent(time=time, kind="straggler-end", replica=replica.index)
        )

    def _redispatch(
        self,
        spec: RequestSpec,
        arrived_at: float,
        now: float,
        cause: str,
        no_retry_reason: str,
    ) -> None:
        """Re-dispatch work lost to a fault, or reject it with a typed reason.

        Consults the plan's :class:`~repro.serving.faults.RetryPolicy` for
        this request's next backoff; a ``None`` policy (recovery disabled)
        rejects with ``no_retry_reason``, an exhausted attempt budget with
        :data:`~repro.serving.faults.REASON_RETRIES_EXHAUSTED`.
        """
        policy = self.fault_plan.retry_policy if self.fault_plan is not None else None
        attempt = self._retry_attempts.get(spec.request_id, 0)
        delay = policy.delay(spec.request_id, attempt) if policy is not None else None
        if delay is None:
            reason = no_retry_reason if policy is None else REASON_RETRIES_EXHAUSTED
            self._reject_spec(spec, now, arrived_at, reason)
            return
        self._retry_attempts[spec.request_id] = attempt + 1
        self.retries += 1
        retry_at = now + delay
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_RETRY,
                    now,
                    request_id=spec.request_id,
                    attrs={"attempt": attempt + 1, "retry_at": retry_at, "cause": cause},
                )
            )
        heapq.heappush(
            self._deferred_heap,
            _DeferredArrival(
                retry_at=retry_at,
                sequence=self._defer_sequence,
                spec=spec,
                arrived_at=arrived_at,
            ),
        )
        self._defer_sequence += 1

    # ---------------------------------------------------------------- routing
    def _reject_spec(
        self,
        spec: RequestSpec,
        now: float,
        arrived_at: float,
        reason: str,
        candidates: int = 0,
    ) -> None:
        """Record one rejected request under ``reason`` and release its slot."""
        self.rejected.append(Request(spec=spec, arrival_time=arrived_at))
        self.reject_reasons[reason] += 1
        if self._tracing:
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_REJECTED,
                    now,
                    request_id=spec.request_id,
                    attrs={"reason": reason, "candidates": candidates},
                )
            )
            # A rejected turn never finishes, so its session cannot spawn a
            # follow-up: the session ends here, abandoned.
            emit_session_abandoned(self.tracer, spec, now)
        # The client's slot must be released or a closed-loop pool would
        # deadlock — but not at this same instant: views only change when
        # a replica steps, so an immediate release would re-inject (and
        # re-reject) the client's next request in a zero-time cascade.
        # Release it after the next completed iteration, when the fleet
        # has actually made progress.
        self._deferred_releases += 1
    def _route_arrival(
        self,
        spec: RequestSpec,
        now: float,
        arrived_at: float | None = None,
        first_attempt: bool = True,
    ) -> None:
        """Run one routing decision for ``spec`` and execute its outcome.

        ``arrived_at`` pins the request's arrival timestamp across defer
        retries (latency accounting always starts at the original arrival);
        retries also skip the autoscaler's traffic window so a deferred
        request is not double-counted as new demand.
        """
        if arrived_at is None:
            arrived_at = spec.arrival_time if spec.arrival_time is not None else now
        if self._tracing and first_attempt:
            emit_session_submit(self.tracer, spec, now)
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_SUBMIT, now, request_id=spec.request_id, attrs=_submit_attrs(spec)
                )
            )
        if first_attempt and self.throttle is not None:
            # Rate limiting sits in front of routing: a throttled arrival
            # consumes no routing decision and no autoscaler traffic signal.
            # Defer retries skip the check — the request was admitted (and
            # recorded in its tenant's window) on first attempt.
            reason = self.throttle.check(spec, now)
            if reason is not None:
                self.rejected.append(Request(spec=spec, arrival_time=arrived_at))
                self.reject_reasons[reason] += 1
                if self._tracing:
                    self.tracer.emit(
                        TraceEvent(
                            obs.REQUEST_THROTTLED,
                            now,
                            request_id=spec.request_id,
                            attrs={
                                "reason": reason,
                                **self.throttle.window_usage(spec, now),
                            },
                        )
                    )
                    emit_session_abandoned(self.tracer, spec, now)
                # Unlike saturation rejects, throttle rejects can release the
                # client slot at this same instant without a zero-time
                # cascade risk: the rate window only fills as requests are
                # admitted, so a same-instant follow-up either fits the
                # window or is itself throttled — and the workload is finite.
                # Drained by the caller (the arrival loop owns the generator).
                self._throttle_releases += 1
                return
        if self._fault_injector is not None:
            # Transient routing errors: a deterministic per-(request, attempt)
            # coin decides whether this routing attempt is dropped by the
            # control plane.  Dropped attempts re-enter via the retry policy.
            attempt = self._retry_attempts.get(spec.request_id, 0)
            if self._fault_injector.routing_error(spec.request_id, now, attempt):
                self._redispatch(
                    spec,
                    arrived_at,
                    now,
                    cause="routing-error",
                    no_retry_reason=REASON_ROUTING_ERROR,
                )
                return
        routable = {replica.index: replica for replica in self.active_replicas}
        views = [replica.snapshot() for replica in routable.values()]
        if not views:
            # Only reachable under fault injection: without faults at least
            # one replica is always active whenever arrivals exist.  Wait for
            # warming capacity (a crash replacement or autoscaler launch) if
            # any is coming, otherwise reject with a typed reason.
            warming = [r for r in self.replicas if r.state is ReplicaState.WARMING]
            if warming:
                # Warm-up completions outrank arrivals/retries at equal
                # times, so a warming replica seen here always has
                # ready_at strictly in the future.
                heapq.heappush(
                    self._deferred_heap,
                    _DeferredArrival(
                        retry_at=min(r.ready_at for r in warming),
                        sequence=self._defer_sequence,
                        spec=spec,
                        arrived_at=arrived_at,
                    ),
                )
                self._defer_sequence += 1
                return
            self._reject_spec(spec, now, arrived_at, REASON_NO_REPLICAS)
            return
        if first_attempt and self.autoscaler is not None and views:
            saturated = sum(1 for v in views if v.saturated) / len(views)
            self.autoscaler.note_arrival(now, saturated, spec.prompt_tokens)
        if self._force_reject_when_saturated and views and all(v.saturated for v in views):
            # Cluster-level convenience knob: reject before consulting the
            # router, exactly as PR 1 did (placement state such as the
            # round-robin cursor is untouched by rejected arrivals).
            decision = RoutingDecision.reject(REASON_SATURATED)
        else:
            decision = self.router.decide(spec, views, now)
        if decision.is_reject:
            self._reject_spec(
                spec, now, arrived_at, decision.reason or "unspecified", candidates=len(views)
            )
            return
        if decision.is_defer:
            assert decision.retry_at is not None
            if decision.retry_at <= now:
                raise RuntimeError(
                    f"router {self.router.name!r} deferred to {decision.retry_at}, which "
                    f"does not advance past the decision instant {now}; defer targets "
                    "must be strictly later"
                )
            self.deferrals += 1
            if self._tracing:
                self.tracer.emit(
                    TraceEvent(
                        obs.REQUEST_DEFERRED,
                        now,
                        request_id=spec.request_id,
                        attrs={"retry_at": decision.retry_at, "candidates": len(views)},
                    )
                )
            heapq.heappush(
                self._deferred_heap,
                _DeferredArrival(
                    retry_at=decision.retry_at,
                    sequence=self._defer_sequence,
                    spec=spec,
                    arrived_at=arrived_at,
                ),
            )
            self._defer_sequence += 1
            return
        assert decision.replica_id is not None
        replica = routable.get(decision.replica_id)
        if replica is None:
            known = next((r for r in self.replicas if r.index == decision.replica_id), None)
            if known is not None:
                raise RuntimeError(
                    f"router {self.router.name!r} routed to replica {decision.replica_id}, "
                    f"which is {known.state.value} and must not receive new work; "
                    f"routable ids: {sorted(routable)}"
                )
            raise RuntimeError(
                f"router {self.router.name!r} routed to invalid replica "
                f"{decision.replica_id}; routable ids: {sorted(routable)}"
            )
        if self._tracing:
            chosen = next(v for v in views if v.replica_id == decision.replica_id)
            self.tracer.emit(
                TraceEvent(
                    obs.REQUEST_ROUTED,
                    now,
                    request_id=spec.request_id,
                    attrs={
                        "replica": decision.replica_id,
                        "candidates": len(views),
                        **chosen.trace_signals(),
                    },
                )
            )
        request = Request(spec=spec, arrival_time=arrived_at)
        if not replica.engine.has_work():
            # An idle replica resumes at the arrival instant; a busy one keeps
            # its clock and picks the request up at its next iteration.
            replica.clock = max(replica.clock, now)
        replica.requests.append(request)
        replica.engine.submit(request, now)

    # ---------------------------------------------------------------- running
    def _run(
        self,
        generator: LoadGenerator,
        workload_name: str,
        num_clients: int,
        arrivals_from_finishes: bool = False,
    ) -> ClusterResult:
        # Engines accumulate state (stats, timelines, scheduler history), so a
        # simulator drives exactly one run; build a fresh one per experiment.
        if self._consumed:
            raise RuntimeError("ClusterSimulator instances are single-use; build a new one per run")
        self._consumed = True
        generator.start(0.0)
        self.router.on_run_start()
        if self.throttle is not None:
            self.throttle.on_run_start()
        if self.autoscaler is not None:
            self.autoscaler.on_run_start()
        completed = True
        total_steps = 0
        notify = getattr(generator, "on_request_completed", None)

        # Event priorities at equal times: warm-ups complete first (a replica
        # ready at t may serve an arrival at t), fault actions land next (so
        # decisions, arrivals, and retries all see the post-fault fleet),
        # decisions see the pre-arrival fleet, arrivals join before retries
        # of older deferred requests, and all join before the step at the
        # same instant (matching ServingSimulator's "arrivals <= now join
        # this batch").
        READY, FAULT, DECIDE, ARRIVAL, RETRY, STEP = 0, 1, 2, 3, 4, 5

        while True:
            next_arrival = generator.next_arrival_time()
            busy = [r for r in self.replicas if r.steppable and r.engine.has_work()]
            step_replica = min(busy, key=lambda r: (r.clock, r.index)) if busy else None

            if step_replica is None and next_arrival is None and not self._deferred_heap:
                # No resident work, no future arrivals, nothing deferred: the
                # run is drained (or a closed-loop pool's remaining clients
                # were rejected).
                break

            events: list[tuple[float, int]] = []
            warming = [r for r in self.replicas if r.state is ReplicaState.WARMING]
            if warming:
                events.append((min(r.ready_at for r in warming), READY))
            if self._fault_injector is not None:
                fault_time = self._fault_injector.next_event_time()
                if fault_time is not None:
                    # Fault actions are loop events, so they automatically
                    # bound every replica's event-jump horizon: a macro-step
                    # can never fuse past a crash/preemption/straggler edge.
                    events.append((fault_time, FAULT))
            if self.autoscaler is not None:
                events.append((self.autoscaler.next_decision_time, DECIDE))
            if next_arrival is not None:
                events.append((next_arrival, ARRIVAL))
            if self._deferred_heap:
                events.append((self._deferred_heap[0].retry_at, RETRY))
            if step_replica is not None:
                events.append((step_replica.clock, STEP))
            time, kind = min(events)

            if kind == READY:
                self._activate_ready(time)
                continue
            if kind == FAULT:
                self._apply_faults(time)
                continue
            if kind == DECIDE:
                self._run_autoscale_decision(time)
                continue
            if kind == ARRIVAL:
                for spec in generator.pop_arrivals(time):
                    self._route_arrival(spec, time)
                while self._throttle_releases:
                    self._throttle_releases -= 1
                    generator.on_request_finished(time)
                continue
            if kind == RETRY:
                while self._deferred_heap and self._deferred_heap[0].retry_at <= time:
                    deferred = heapq.heappop(self._deferred_heap)
                    self._route_arrival(
                        deferred.spec, time, arrived_at=deferred.arrived_at, first_attempt=False
                    )
                continue

            assert step_replica is not None
            if self.fast_path and not self._deferred_releases:
                # Event-jump: this replica may fast-forward decode iterations
                # that provably produce no event.  Silent iterations touch
                # only the replica's own engine, so they commute with other
                # replicas' silent iterations; the horizon is the earliest
                # moment anything can *observe* this replica — a scheduled
                # arrival (routing views), a defer retry, an autoscale
                # decision, a warm-up completion, and, when completions
                # generate new arrivals (closed-loop clients), any other busy
                # replica's next iteration, which could finish a request whose
                # follow-up request is routed using this replica's state.
                horizon = min(
                    (event_time for event_time, kind in events if kind != STEP),
                    default=None,
                )
                if arrivals_from_finishes:
                    for other in busy:
                        if other is not step_replica and (
                            horizon is None or other.clock < horizon
                        ):
                            horizon = other.clock
                # The same horizon bounds the saturated-phase jump: a replica
                # whose waiting queue is non-empty may still fast-forward when
                # its scheduler proves the next admission decisions all admit
                # nothing (the queue, like the batch, is replica-local state,
                # so fused no-admit iterations commute the same way silent
                # ones do).
                jump = step_replica.engine.try_jump_any(
                    step_replica.clock,
                    horizon=horizon,
                    max_steps=self.limits.max_steps - total_steps,
                    max_time=self.limits.max_time,
                )
                if jump is not None:
                    step_replica.clock = jump.end_time
                    step_replica.idle_streak = 0
                    total_steps += jump.steps
                    if (
                        total_steps >= self.limits.max_steps
                        or step_replica.clock >= self.limits.max_time
                    ):
                        completed = False
                        break
                    continue
            result = step_replica.engine.step(step_replica.clock)
            if result.duration > 0:
                step_replica.clock = result.end_time
            for request in result.finished:
                generator.on_request_finished(step_replica.clock)
                if notify is not None:
                    # Identity-aware completion hook: session generators
                    # spawn the follow-up turn here (never inside a jump,
                    # so the arrival horizon stays complete).
                    notify(request, step_replica.clock)
                if self._tracing:
                    emit_session_completion(self.tracer, request, step_replica.clock)
                self.router.on_request_finished(request, step_replica.clock)
                if self.autoscaler is not None:
                    self.autoscaler.on_request_finished(request, step_replica.clock)
            # Client slots freed by rejections are released only once some
            # replica can route again (rejection implies every replica was
            # busy, so steps keep coming until that happens) — immediate
            # release would just feed the next request into the same
            # saturated fleet.
            if self._deferred_releases:
                open_views = self.snapshots()
                if open_views and not all(v.saturated for v in open_views):
                    while self._deferred_releases:
                        self._deferred_releases -= 1
                        generator.on_request_finished(step_replica.clock)

            if step_replica.state is ReplicaState.DRAINING and not step_replica.engine.has_work():
                # Drain complete: every resident request ran to completion.
                # The timeline sample lands at the event time (step start);
                # retirement itself is stamped with the step's end clock.
                self._retire(step_replica, time)

            # Stall guard, per replica: repeated idle iterations with waiting
            # requests mean no admission is possible (see ServingSimulator).
            if result.was_idle:
                step_replica.idle_streak += 1
                if step_replica.idle_streak >= 3:
                    completed = False
                    break
            else:
                step_replica.idle_streak = 0

            total_steps += 1
            if total_steps >= self.limits.max_steps or step_replica.clock >= self.limits.max_time:
                completed = False
                break

        makespan = max((r.clock for r in self.replicas), default=0.0)
        # Deferred requests still parked after the loop ends can only exist
        # on abnormal termination (step/time limits, stall guard) — a normal
        # drain requires an empty heap.  They must not vanish from
        # accounting: stamp each one into the rejected set with a typed
        # reason so routed + rejected still equals submitted.
        while self._deferred_heap:
            leftover = heapq.heappop(self._deferred_heap)
            self._reject_spec(leftover.spec, makespan, leftover.arrived_at, REASON_UNROUTED)
        self._record_fleet_sample(makespan)
        replica_results = [
            RunResult(
                scheduler=replica.engine.scheduler.describe(),
                workload=workload_name,
                platform=replica.platform.describe(),
                num_clients=num_clients,
                duration=replica.clock,
                requests=replica.requests,
                engine_stats=replica.engine.stats,
                memory_timeline=replica.engine.memory_timeline,
                token_capacity=replica.engine.token_capacity,
                completed=completed,
                jump_stats=replica.engine.jump_stats,
                prefix_stats=(
                    replica.engine.prefix_cache.stats
                    if replica.engine.prefix_cache is not None
                    else None
                ),
            )
            for replica in self.replicas
        ]
        distinct_platforms = dict.fromkeys(p.describe() for p in self.platforms)
        return ClusterResult(
            router=self.router.describe(),
            workload=workload_name,
            platform=" + ".join(distinct_platforms),
            num_replicas=self.num_replicas,
            duration=makespan,
            replicas=replica_results,
            rejected=list(self.rejected),
            completed=completed,
            autoscaler=self.autoscaler.describe() if self.autoscaler is not None else None,
            fleet_timeline=list(self.fleet_timeline),
            lifetimes=[replica.lifetime() for replica in self.replicas],
            deferrals=self.deferrals,
            reject_reasons=dict(self.reject_reasons),
            failed=list(self.failed),
            retries=self.retries,
            migrations=self.migrations,
            lost_tokens=self.lost_tokens,
            fault_events=list(self.fault_log),
            fault_plan=self.fault_plan.describe() if self.fault_plan is not None else None,
        )

    def run_closed_loop(
        self,
        workload: Workload,
        num_clients: int,
        think_time: float = 0.0,
    ) -> ClusterResult:
        """Serve a workload with a fleet-wide closed-loop client pool."""
        pool = ClosedLoopClientPool(workload, num_clients=num_clients, think_time=think_time)
        return self._run(pool, workload.name, num_clients, arrivals_from_finishes=True)

    def run_open_loop(
        self,
        workload: Workload,
        request_rate: float | None = None,
        seed: int = 0,
    ) -> ClusterResult:
        """Serve a workload with open-loop (Poisson, bursty, or recorded) arrivals."""
        arrivals = OpenLoopArrivals(workload, request_rate=request_rate, seed=seed)
        return self._run(arrivals, workload.name, num_clients=0)

    def run_sessions(
        self,
        interactions: Sequence[Interaction],
        name: str = "interactions",
    ) -> ClusterResult:
        """Serve multi-turn sessions closed-loop across the fleet.

        Each interaction's opening turn arrives at its start time; every
        later turn is spawned by its predecessor's completion, carrying the
        accumulated conversation prefix.  Spawned arrivals are routed like
        any other (the ``session-affinity`` router sends them back to the
        replica holding their prefix), and — as with any closed-loop run —
        every busy replica's clock bounds the event-jump horizon, since any
        step may finish a turn whose follow-up observes fleet state.
        """
        generator = InteractionLoadGenerator(interactions)
        return self._run(
            generator, name, num_clients=len(interactions), arrivals_from_finishes=True
        )

"""Seeded, deterministic fault injection for cluster serving.

Every replica the simulator launches is perfectly reliable by default, which
makes the fleet a poor testbed for the availability questions production
serving actually faces: GPUs fall over mid-decode, spot instances get
preempted with a notice window, one card silently runs 3x slow, and the
control plane drops a routing RPC now and then.  This module models those
four failure classes as *data*, so a run with faults is exactly as
reproducible as a run without:

* :class:`ReplicaCrash` — a replica dies at an instant; every in-flight and
  queued request on it is aborted (partial tokens are accounted as lost
  work) and, under a :class:`RetryPolicy`, re-dispatched through the
  router's defer path.
* :class:`Preemption` — a spot-style advance notice: the replica stops
  accepting placements and drains; queued work migrates off immediately,
  and whatever is still resident when the notice window expires is killed
  exactly like a crash.
* :class:`Straggler` — a transient slowdown window multiplying the
  replica's cost model by a factor; the replica is marked ``degraded`` so
  health-aware routers steer around it.
* :class:`RoutingErrorWindow` — a window during which each routing attempt
  fails with a given probability (decided by a seeded hash of the request
  id and attempt number, never by RNG-stream order), forcing the retry
  machinery even without any replica dying.

The determinism contract (see ``docs/resilience.md``): a
:class:`FaultPlan` is a pure value — the injector derives every fault time
at construction and every probabilistic decision from
``sha256(seed, request_id, attempt)``, so two runs of the same plan over the
same workload are bit-identical, and a run with ``faults=None`` is
byte-identical to one built before this module existed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.engine.cost_model import CostModel, StepWork

# --------------------------------------------------------------------- health
#: Replica serving normally.
HEALTH_HEALTHY = "healthy"
#: Replica serving but impaired (e.g. inside a straggler window).
HEALTH_DEGRADED = "degraded"
#: Replica finishing resident work before retiring; not routable.
HEALTH_DRAINING = "draining"
#: Replica crashed (or preemption deadline expired); never returns.
HEALTH_DEAD = "dead"

#: All health states, in decreasing order of routability.
HEALTH_STATES = (HEALTH_HEALTHY, HEALTH_DEGRADED, HEALTH_DRAINING, HEALTH_DEAD)

# -------------------------------------------------------------- typed reasons
#: Reject reason for work lost to a replica crash with no retry policy.
REASON_REPLICA_CRASH = "replica-crash"
#: Reject reason for a routing attempt dropped by a routing-error window
#: with no retry policy attached.
REASON_ROUTING_ERROR = "routing-error"
#: Reject reason when a request's retry attempt budget is exhausted.
REASON_RETRIES_EXHAUSTED = "retries-exhausted"
#: Reject reason for deferred requests still parked when the run terminates
#: abnormally (step/time limits, stall guard) — they must land in
#: ``reject_reasons`` rather than vanish from accounting.
REASON_UNROUTED = "unrouted-at-end"
#: Reject reason when an arrival finds no routable replica and none warming.
REASON_NO_REPLICAS = "no-replicas"


def hash_fraction(*parts: object) -> float:
    """Uniform fraction in ``[0, 1)`` derived from a sha256 of ``parts``.

    The basis of every probabilistic fault decision: keyed on stable
    identifiers (seed, request id, attempt number) rather than an RNG
    stream, so the outcome for one request cannot depend on how many draws
    *other* requests consumed before it.
    """
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


# ----------------------------------------------------------------- fault specs
@dataclass(frozen=True)
class ReplicaCrash:
    """Kill replica ``replica`` at fleet-clock ``time``."""

    time: float
    replica: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class Preemption:
    """Spot-style preemption: drain notice at ``time``, kill at ``time + notice``.

    The replica stops accepting placements at ``time`` (queued work migrates
    off it when the plan's ``migrate_on_drain`` is set); resident work that
    has not finished by the deadline is aborted exactly like a crash.
    """

    time: float
    replica: int
    notice: float = 5.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("preemption time must be non-negative")
        if self.notice <= 0:
            raise ValueError("preemption notice must be positive")

    @property
    def deadline(self) -> float:
        """Instant at which still-resident work is killed."""
        return self.time + self.notice


@dataclass(frozen=True)
class Straggler:
    """Multiply replica ``replica``'s iteration cost by ``slowdown`` for a window."""

    start: float
    duration: float
    replica: int
    slowdown: float = 3.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("straggler start must be non-negative")
        if self.duration <= 0:
            raise ValueError("straggler duration must be positive")
        if self.slowdown <= 1.0:
            raise ValueError("slowdown must exceed 1.0 (1.0 is a healthy replica)")

    @property
    def end(self) -> float:
        """Instant at which the replica recovers full speed."""
        return self.start + self.duration


@dataclass(frozen=True)
class RoutingErrorWindow:
    """A window during which each routing attempt fails with ``error_rate``.

    Failure is decided per ``(request_id, attempt)`` via :func:`hash_fraction`
    — deterministic, order-independent, and different across retry attempts
    so a retried request is not doomed to hit the same error forever.
    """

    start: float
    duration: float
    error_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("window start must be non-negative")
        if self.duration <= 0:
            raise ValueError("window duration must be positive")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")

    def covers(self, time: float) -> bool:
        """Whether ``time`` falls inside the half-open window ``[start, end)``."""
        return self.start <= time < self.start + self.duration


# ---------------------------------------------------------------- retry policy
@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attempt ``k`` (0-based) waits ``min(base_delay * multiplier**k,
    max_delay)`` seconds, plus a jitter fraction drawn from
    :func:`hash_fraction` of the seed, request id, and attempt — so two runs
    of the same plan back off identically, and reordering unrelated requests
    cannot shift anyone's delays.  ``delay`` returns ``None`` once the
    attempt budget is exhausted; the cluster then rejects the request with
    :data:`REASON_RETRIES_EXHAUSTED`.
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    max_attempts: int = 4
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, request_id: str, attempt: int) -> float | None:
        """Backoff before retry number ``attempt`` (0-based), or ``None``.

        ``None`` means the budget is spent: ``attempt`` of ``max_attempts``
        retries have already been dispatched for this request.
        """
        if attempt >= self.max_attempts:
            return None
        backoff = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter:
            backoff *= 1.0 + self.jitter * hash_fraction(self.seed, request_id, attempt)
        return backoff

    def describe(self) -> str:
        """One-line summary for result tables."""
        return (
            f"retry(base={self.base_delay:g}s x{self.multiplier:g} "
            f"cap={self.max_delay:g}s attempts={self.max_attempts})"
        )


# ------------------------------------------------------------------ fault plan
@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded failure schedule for one cluster run.

    A pure value: attach the same plan to two simulators over the same
    workload and the runs are bit-identical.  ``retry_policy=None`` turns
    off recovery (lost work is rejected with typed reasons instead of
    re-dispatched) — the "no recovery" baseline the fig14 benchmark
    degrades.
    """

    crashes: tuple[ReplicaCrash, ...] = ()
    preemptions: tuple[Preemption, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    routing_errors: tuple[RoutingErrorWindow, ...] = ()
    seed: int = 0
    retry_policy: RetryPolicy | None = field(default_factory=RetryPolicy)
    #: migrate queued work off a preempted (draining) replica immediately.
    migrate_on_drain: bool = True
    #: launch a cold replacement replica the instant one crashes.
    replace_crashed: bool = True
    #: warm-up delay of replacement launches (seconds).
    replacement_warmup: float = 0.0

    def __post_init__(self) -> None:
        # Accept lists for ergonomics but store tuples (frozen hashability).
        for name in ("crashes", "preemptions", "stragglers", "routing_errors"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.replacement_warmup < 0:
            raise ValueError("replacement_warmup must be non-negative")

    @property
    def empty(self) -> bool:
        """Whether the plan schedules no faults at all."""
        return not (self.crashes or self.preemptions or self.stragglers or self.routing_errors)

    def describe(self) -> str:
        """One-line plan summary for result tables and logs."""
        parts = []
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash")
        if self.preemptions:
            parts.append(f"{len(self.preemptions)} preempt")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler")
        if self.routing_errors:
            parts.append(f"{len(self.routing_errors)} routing-error-window")
        schedule = ", ".join(parts) if parts else "no faults"
        recovery = self.retry_policy.describe() if self.retry_policy else "no-retry"
        return f"faults(seed={self.seed}: {schedule}; {recovery})"


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the run's fault log (``ClusterResult.fault_events``)."""

    time: float
    kind: str
    replica: int | None = None
    detail: dict = field(default_factory=dict)


# --------------------------------------------------------------- fault injector
#: Fault-action kinds, in intra-instant application order.
_ACTION_ORDER = ("crash", "preempt-deadline", "preempt", "straggler-end", "straggler-start")


@dataclass(frozen=True)
class _FaultAction:
    """One scheduled point action derived from the plan at construction."""

    time: float
    order: int
    kind: str
    replica: int
    fault: object

    def __lt__(self, other: "_FaultAction") -> bool:
        return (self.time, self.order) < (other.time, other.order)


class FaultInjector:
    """Turns a :class:`FaultPlan` into a deterministic event timeline.

    Built once per run by the cluster simulator.  Every point action (crash,
    preemption notice, preemption deadline, straggler start/end) is derived
    and sorted at construction, so the injection order at equal times is a
    pure function of the plan; routing-error decisions are stateless hashes.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        actions: list[_FaultAction] = []

        def add(time: float, kind: str, replica: int, fault: object) -> None:
            actions.append(
                _FaultAction(
                    time=time,
                    order=_ACTION_ORDER.index(kind) * 1_000_000 + len(actions),
                    kind=kind,
                    replica=replica,
                    fault=fault,
                )
            )

        for crash in plan.crashes:
            add(crash.time, "crash", crash.replica, crash)
        for preemption in plan.preemptions:
            add(preemption.time, "preempt", preemption.replica, preemption)
            add(preemption.deadline, "preempt-deadline", preemption.replica, preemption)
        for straggler in plan.stragglers:
            add(straggler.start, "straggler-start", straggler.replica, straggler)
            add(straggler.end, "straggler-end", straggler.replica, straggler)
        self._actions = sorted(actions)
        self._cursor = 0

    def next_event_time(self) -> float | None:
        """Fleet-clock instant of the next scheduled fault action, if any."""
        if self._cursor >= len(self._actions):
            return None
        return self._actions[self._cursor].time

    def pop_due(self, time: float) -> list[_FaultAction]:
        """Consume and return every action scheduled at or before ``time``."""
        due: list[_FaultAction] = []
        while self._cursor < len(self._actions) and self._actions[self._cursor].time <= time:
            due.append(self._actions[self._cursor])
            self._cursor += 1
        return due

    def routing_error(self, request_id: str, now: float, attempt: int) -> bool:
        """Whether this routing attempt is dropped by an error window.

        Deterministic per ``(seed, request_id, attempt)``; the attempt number
        matters so a retried request re-rolls rather than failing forever.
        """
        for window in self.plan.routing_errors:
            if window.covers(now):
                draw = hash_fraction(self.plan.seed, "routing-error", request_id, attempt)
                return draw < window.error_rate
        return False


# ------------------------------------------------------------ straggler model
class SlowdownCostModel:
    """Cost-model wrapper multiplying every iteration latency by a factor.

    Wraps a replica's :class:`~repro.engine.cost_model.CostModel` for the
    duration of a straggler window.  Both the scalar reference path
    (:meth:`step_seconds`) and the vectorized fast path
    (:meth:`decode_step_durations`) scale by the *same* float factor, so the
    event-jump equivalence guarantee (fast == reference, bit-identical)
    survives the slowdown.  Every other attribute proxies to the wrapped
    model.
    """

    def __init__(self, inner: CostModel, slowdown: float) -> None:
        if slowdown <= 0:
            raise ValueError("slowdown must be positive")
        self.inner = inner
        self.slowdown = slowdown

    def step_seconds(self, work: StepWork) -> float:
        """Slowed latency of one iteration."""
        return self.inner.step_seconds(work) * self.slowdown

    def decode_step_durations(self, batch_size: int, context_tokens: int, steps: int) -> np.ndarray:
        """Slowed per-iteration latencies for a fused decode macro-step."""
        return self.inner.decode_step_durations(batch_size, context_tokens, steps) * self.slowdown

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

"""Request routers for multi-replica cluster serving.

A :class:`Router` answers one question per arriving request: *what should the
cluster do with it?*  The :class:`~repro.serving.cluster.ClusterSimulator`
hands the router a :class:`ReplicaView` per routable replica — only
scheduler-visible state (queue depths, KV occupancy, generated-so-far counts,
the replica's platform and relative speed), never the hidden true output
lengths — and expects back a :class:`RoutingDecision`:

* ``RoutingDecision.route(replica_id)`` — place the request on a replica;
* ``RoutingDecision.reject(reason)`` — turn the request away (cluster-level
  admission control is a *router policy*, not an emergent special case);
* ``RoutingDecision.defer(until)`` — hold the request and re-route it at a
  later instant (the hook request-migration policies build on).

Routers written against the legacy ``select_replica() -> int`` API keep
working: the base class adapts their integer return into a ``route`` decision
(and emits a :class:`DeprecationWarning` once per router instance).

Because a fleet may mix accelerator generations
(``ClusterSimulator(platforms=[a100, a100, rtx4090])``), replicas can differ
in both KV capacity and decode speed.  Views therefore expose
**capacity-normalised** signals — :attr:`ReplicaView.load_fraction`,
:attr:`ReplicaView.headroom_fraction`, and a :attr:`ReplicaView.speed_factor`
derived from the cost model — and the load-sensitive routers compare replicas
on fractions of *their own* capacity rather than absolute token counts, so a
24 GB card is never mistaken for an 80 GB one.  On homogeneous fleets the
normalised comparisons order replicas exactly as the absolute ones did.

Five policies are provided, in increasing order of awareness:

* :class:`RoundRobinRouter` — cycles through replicas, load-blind;
* :class:`LeastOutstandingRouter` — fewest in-flight (running + queued)
  requests, the classic load-balancer heuristic (capacity-blind on purpose:
  it is the baseline heterogeneous fleets expose);
* :class:`LeastKVLoadRouter` — lowest fractional KV-cache occupancy counting
  queued prompt demand, a memory-*present* policy;
* :class:`MemoryAwareRouter` — largest predicted future-memory headroom as a
  fraction of the replica's own capacity, weighted by replica speed.  It
  maintains the same sliding output-length history the Past-Future scheduler
  uses and evaluates each replica's peak future memory (Eq. 2–4 via
  :func:`repro.core.future_memory.peak_future_memory_arrays`), so a replica
  whose batch *will* balloon is avoided even while its present occupancy
  still looks low;
* :class:`SessionAffinityRouter` — memory-aware placement plus *session
  stickiness*: follow-up turns of a multi-turn session are routed back to
  the replica holding the session's cached KV prefix (see
  :class:`repro.memory.prefix_cache.PrefixCache`), falling back to
  memory-aware scoring when the home replica is saturated, draining, or
  dead.

All routers break ties deterministically in favour of the lowest replica
index, and skip saturated replicas unless every replica is saturated.  Every
router also understands two admission-policy knobs (see :class:`Router`):
``reject_when_saturated`` and per-SLA-class shedding via ``shed_classes``.
"""

from __future__ import annotations

import abc
import enum
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.future_memory import peak_future_memory_arrays
from repro.core.history import OutputLengthHistory
from repro.engine.request import Request
from repro.hardware.platform import Platform
from repro.registry import instantiate
from repro.serving.faults import HEALTH_HEALTHY, HEALTH_STATES
from repro.workloads.spec import RequestSpec


class RoutingAction(enum.Enum):
    """What the cluster should do with one arriving request."""

    ROUTE = "route"
    REJECT = "reject"
    DEFER = "defer"


#: Reject reason used when every routable replica is saturated.
REASON_SATURATED = "saturated"


def shed_reason(sla_class: str) -> str:
    """Reject reason used when a request's SLA class is shed under pressure."""
    return f"shed:{sla_class}"


@dataclass(frozen=True)
class RoutingDecision:
    """First-class outcome of one routing decision.

    Build instances through the :meth:`route`, :meth:`reject`, and
    :meth:`defer` constructors rather than directly; each action carries
    exactly the payload it needs.

    Attributes:
        action: what the cluster should do with the request.
        replica_id: target replica (``ROUTE`` only).
        reason: human-readable rejection reason (``REJECT`` only), used for
            per-reason bookkeeping in
            :attr:`repro.serving.results.ClusterResult.reject_reasons`.
        retry_at: absolute fleet-clock instant at which to re-route the
            request (``DEFER`` only); must lie strictly after the decision
            instant or the cluster raises.
    """

    action: RoutingAction
    replica_id: int | None = None
    reason: str | None = None
    retry_at: float | None = None

    def __post_init__(self) -> None:
        if self.action is RoutingAction.ROUTE and self.replica_id is None:
            raise ValueError("route decisions must name a replica_id")
        if self.action is not RoutingAction.ROUTE and self.replica_id is not None:
            raise ValueError("only route decisions may name a replica_id")
        if self.action is RoutingAction.DEFER and self.retry_at is None:
            raise ValueError("defer decisions must carry retry_at")
        if self.action is not RoutingAction.DEFER and self.retry_at is not None:
            raise ValueError("only defer decisions may carry retry_at")

    # ----------------------------------------------------------- constructors
    @classmethod
    def route(cls, replica_id: int) -> "RoutingDecision":
        """Place the request on ``replica_id``'s waiting queue."""
        return cls(action=RoutingAction.ROUTE, replica_id=replica_id)

    @classmethod
    def reject(cls, reason: str = REASON_SATURATED) -> "RoutingDecision":
        """Turn the request away; it never executes but is reported."""
        return cls(action=RoutingAction.REJECT, reason=reason)

    @classmethod
    def defer(cls, until: float) -> "RoutingDecision":
        """Hold the request and route it again at fleet-clock ``until``."""
        return cls(action=RoutingAction.DEFER, retry_at=until)

    # ------------------------------------------------------------- predicates
    @property
    def is_route(self) -> bool:
        """Whether the request was placed on a replica."""
        return self.action is RoutingAction.ROUTE

    @property
    def is_reject(self) -> bool:
        """Whether the request was turned away."""
        return self.action is RoutingAction.REJECT

    @property
    def is_defer(self) -> bool:
        """Whether the request is held for a later routing attempt."""
        return self.action is RoutingAction.DEFER


@dataclass(frozen=True)
class ReplicaView:
    """Scheduler-visible view of one replica at a routing decision.

    Attributes:
        replica_id: index of the replica within the cluster.
        token_capacity: KV-cache token slots of the replica's platform.
        used_tokens: token slots currently occupied by the running batch.
        running_current_tokens: per running request, KV tokens held now
            (prompt + generated).
        running_generated_tokens: per running request, output tokens
            generated so far (aligned with ``running_current_tokens``).
        waiting_prompt_tokens: per queued request, the KV tokens it needs at
            admission (prompt, plus regenerated tokens for evictees).
        running_remaining_cap_tokens: per running request, output tokens its
            ``max_new_tokens`` still allows; empty means unbounded.
        waiting_generated_tokens: per queued request, output tokens already
            generated before eviction; empty means all zero.
        waiting_remaining_cap_tokens: per queued request, output tokens its
            ``max_new_tokens`` still allows; empty means unbounded.
        platform: the replica's deployment target; heterogeneous fleets carry
            a different platform per replica.  ``None`` for hand-built views
            in tests and policy code that never inspects hardware.
        speed_factor: decode speed relative to the fastest platform in the
            fleet (1.0 for the fastest; see
            :meth:`repro.engine.cost_model.CostModel.relative_speed`).
            Homogeneous fleets carry 1.0 everywhere.
        health: the replica's health state as fault injection sees it (see
            :mod:`repro.serving.faults`): ``healthy`` by default,
            ``degraded`` inside a straggler window.  Routable views are never
            ``draining`` or ``dead`` (those states leave the routable set),
            but the field accepts all four so hand-built views can model
            them.  Routers must respect it — the shared :meth:`Router.candidates`
            filter prefers healthy replicas whenever any is available.
    """

    replica_id: int
    token_capacity: int
    used_tokens: int
    running_current_tokens: tuple[int, ...] = ()
    running_generated_tokens: tuple[int, ...] = ()
    waiting_prompt_tokens: tuple[int, ...] = ()
    running_remaining_cap_tokens: tuple[int, ...] = ()
    waiting_generated_tokens: tuple[int, ...] = ()
    waiting_remaining_cap_tokens: tuple[int, ...] = ()
    platform: Platform | None = None
    speed_factor: float = 1.0
    health: str = HEALTH_HEALTHY

    def __post_init__(self) -> None:
        if self.health not in HEALTH_STATES:
            raise ValueError(f"health must be one of {HEALTH_STATES}, got {self.health!r}")
        if self.token_capacity <= 0:
            raise ValueError("token_capacity must be positive")
        if self.used_tokens < 0:
            raise ValueError("used_tokens must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if len(self.running_current_tokens) != len(self.running_generated_tokens):
            raise ValueError("running token arrays must be aligned")
        for caps, reference in (
            (self.running_remaining_cap_tokens, self.running_current_tokens),
            (self.waiting_generated_tokens, self.waiting_prompt_tokens),
            (self.waiting_remaining_cap_tokens, self.waiting_prompt_tokens),
        ):
            if caps and len(caps) != len(reference):
                raise ValueError("optional per-request arrays must align with their queue")

    @property
    def num_running(self) -> int:
        """Requests resident in the replica's KV cache."""
        return len(self.running_current_tokens)

    @property
    def num_waiting(self) -> int:
        """Requests queued for admission on the replica."""
        return len(self.waiting_prompt_tokens)

    @property
    def outstanding(self) -> int:
        """In-flight requests: running plus queued."""
        return self.num_running + self.num_waiting

    @property
    def free_tokens(self) -> int:
        """Token slots not currently occupied."""
        return self.token_capacity - self.used_tokens

    @property
    def queued_demand_tokens(self) -> int:
        """Prompt tokens waiting to be admitted."""
        return sum(self.waiting_prompt_tokens)

    @property
    def load_fraction(self) -> float:
        """Occupied plus queued-prompt tokens as a fraction of capacity."""
        return (self.used_tokens + self.queued_demand_tokens) / self.token_capacity

    @property
    def headroom_tokens(self) -> int:
        """Token slots left after resident tokens and queued prompt demand.

        Negative when the admission queue already oversubscribes the pool.
        This is *present-state* headroom; the predicted-peak (Eq. 2–4)
        counterpart lives on the router that owns the length history —
        :meth:`MemoryAwareRouter.predicted_headroom_tokens`.
        """
        return self.token_capacity - self.used_tokens - self.queued_demand_tokens

    @property
    def headroom_fraction(self) -> float:
        """Present headroom as a fraction of *this replica's* capacity.

        The capacity-normalised form of :attr:`headroom_tokens`: 0.3 means
        the same relative slack on a 24 GB card as on an 80 GB one, which is
        what makes replicas of different generations comparable.  See
        :meth:`MemoryAwareRouter.predicted_headroom_fraction` for the
        predicted-peak counterpart.
        """
        return self.headroom_tokens / self.token_capacity

    @property
    def saturated(self) -> bool:
        """Whether the replica cannot absorb more work without stalling.

        A replica counts as saturated when its resident KV tokens plus the
        prompts already queued meet or exceed its capacity: any further
        request would sit behind demand that already fills the pool.
        """
        return self.used_tokens + self.queued_demand_tokens >= self.token_capacity

    def trace_signals(self) -> dict:
        """The scoring signals routers rank on, for ``request.routed`` events.

        A small JSON-serialisable snapshot of the view at decision time, so
        exported timelines show *why* a replica won the placement.
        """
        return {
            "running": self.num_running,
            "waiting": self.num_waiting,
            "load_fraction": round(self.load_fraction, 4),
            "headroom_fraction": round(self.headroom_fraction, 4),
            "saturated": self.saturated,
            "speed_factor": self.speed_factor,
            "health": self.health,
        }


#: Deprecated alias for :class:`ReplicaView`, kept for the PR-1/PR-2 API.
ReplicaSnapshot = ReplicaView


class Router(abc.ABC):
    """Placement policy mapping an arriving request to a routing decision.

    Subclasses implement :meth:`decide`.  Routers written against the legacy
    ``select_replica() -> int`` API still work — the base :meth:`decide`
    adapts the integer into ``RoutingDecision.route`` and warns once per
    instance with a :class:`DeprecationWarning`.

    Every router carries two admission-policy knobs, consulted before any
    placement logic whenever *all* routable replicas are saturated:

    Args:
        reject_when_saturated: reject any request arriving while every
            routable replica is saturated (cluster-level admission control);
            off by default, in which case requests queue on the least-bad
            replica exactly as before.
        shed_classes: SLA classes (see
            :attr:`repro.workloads.spec.RequestSpec.sla_class`) to reject
            while the fleet is saturated even when ``reject_when_saturated``
            is off — e.g. shed ``batch`` traffic under pressure so
            ``interactive`` latency survives the burst.
        defer_when_saturated: seconds to *defer* (hold and re-route) a
            request arriving into a fully saturated fleet instead of queueing
            or rejecting it; ``None`` disables deferral.  Rejection policies
            take precedence when both apply.
    """

    #: human-readable policy name used in tables and figures.
    name: str = "abstract"

    # Class-level defaults so legacy subclasses that never call
    # ``super().__init__`` still present the neutral admission policy.
    reject_when_saturated: bool = False
    shed_classes: frozenset[str] = frozenset()
    defer_when_saturated: float | None = None
    _warned_legacy: bool = False

    def __init__(
        self,
        *,
        reject_when_saturated: bool = False,
        shed_classes: Iterable[str] = (),
        defer_when_saturated: float | None = None,
    ) -> None:
        if defer_when_saturated is not None and defer_when_saturated <= 0:
            raise ValueError("defer_when_saturated must be positive when set")
        self.reject_when_saturated = reject_when_saturated
        self.shed_classes = frozenset(shed_classes)
        self.defer_when_saturated = defer_when_saturated

    def __init_subclass__(cls, **kwargs) -> None:
        # Neither decide() nor select_replica() is formally abstract (each
        # has a real body adapting to the other), so restore the
        # fail-at-definition behaviour an @abstractmethod would give:
        # a concrete router must override at least one of them.
        super().__init_subclass__(**kwargs)
        if (
            cls.decide is Router.decide
            and cls.select_replica is Router.select_replica
        ):
            raise TypeError(
                f"{cls.__name__} must implement decide() "
                "(or the legacy select_replica())"
            )

    # ------------------------------------------------------------------ API
    def decide(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float = 0.0,
    ) -> RoutingDecision:
        """Decide what the cluster should do with ``spec``.

        Implementations must be deterministic given the same views and
        internal state; ``route`` decisions must name the ``replica_id`` of
        one of the *given* views.  With an elastic fleet (see
        :mod:`repro.serving.autoscale`) the view set changes between calls
        and ids are not contiguous — replicas launch, warm up, drain, and
        retire, and retired ids are never reused — so ids must be treated as
        opaque keys, never as list indices.  The
        :class:`~repro.serving.cluster.ClusterSimulator` raises
        ``RuntimeError`` if a router routes to an id that is absent from the
        views (e.g. a warming, draining, or retired replica).

        Args:
            spec: the arriving request (including its ``sla_class``).
            views: one :class:`ReplicaView` per routable replica.
            now: fleet-clock instant of the decision, the base for
                ``RoutingDecision.defer`` targets.
        """
        if type(self).select_replica is Router.select_replica:
            raise TypeError(
                f"{type(self).__name__} must implement decide() "
                "(or the legacy select_replica())"
            )
        if not self._warned_legacy:
            warnings.warn(
                f"{type(self).__name__} implements the legacy "
                "select_replica() -> int API; implement "
                "decide() -> RoutingDecision instead",
                DeprecationWarning,
                stacklevel=2,
            )
            self._warned_legacy = True
        rejection = self.admission_check(spec, views, now)
        if rejection is not None:
            return rejection
        return RoutingDecision.route(self.select_replica(spec, views))

    def select_replica(self, spec: RequestSpec, views: Sequence[ReplicaView]) -> int:
        """Legacy accessor: the ``replica_id`` of this router's decision.

        Kept so call sites written against the PR-1 API keep working with
        new-style routers; raises if the decision was not a ``route`` (an
        integer cannot express reject/defer — migrate to :meth:`decide`).
        """
        decision = self.decide(spec, views)
        if not decision.is_route:
            raise RuntimeError(
                f"router {self.name!r} decided to {decision.action.value}; "
                "select_replica() can only express route decisions — "
                "call decide() instead"
            )
        assert decision.replica_id is not None
        return decision.replica_id

    # ------------------------------------------------------------- lifecycle
    def on_run_start(self) -> None:
        """Called once before a cluster run begins (reset mutable state)."""

    def on_request_finished(self, request: Request, time: float) -> None:
        """Called when any replica finishes a request (for learning policies)."""

    # -------------------------------------------------------------- utilities
    def admission_check(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float,
    ) -> RoutingDecision | None:
        """Shared saturation policy, evaluated before placement.

        Returns a reject/defer decision when the admission knobs apply (all
        routable replicas saturated), or ``None`` when the request should be
        placed.  Runs *before* any placement state is touched, so e.g. the
        round-robin cursor does not advance on a rejected request.
        """
        if not views:
            raise ValueError("cannot route with zero replicas")
        if not all(view.saturated for view in views):
            return None
        if spec.sla_class in self.shed_classes:
            return RoutingDecision.reject(shed_reason(spec.sla_class))
        if self.reject_when_saturated:
            return RoutingDecision.reject(REASON_SATURATED)
        if self.defer_when_saturated is not None:
            return RoutingDecision.defer(now + self.defer_when_saturated)
        return None

    @staticmethod
    def candidates(views: Sequence[ReplicaView]) -> list[ReplicaView]:
        """Routable replicas, best health tier first, saturation filtered.

        Non-saturated healthy replicas are preferred; if none exists, other
        non-saturated replicas (e.g. ``degraded`` stragglers) are used, and
        only a fully saturated fleet falls back to every view.  With every
        view healthy — any run without fault injection — this is exactly the
        historical "non-saturated or all" filter.
        """
        if not views:
            raise ValueError("cannot route with zero replicas")
        open_replicas = [view for view in views if not view.saturated]
        healthy = [view for view in open_replicas if view.health == HEALTH_HEALTHY]
        return healthy or open_replicas or list(views)

    def _pick_min(
        self,
        views: Sequence[ReplicaView],
        key: Callable[[ReplicaView], float],
    ) -> int:
        """Lowest-key candidate, ties broken by lowest replica id."""
        best = min(self.candidates(views), key=lambda view: (key(view), view.replica_id))
        return best.replica_id

    def _decide_min(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float,
        key: Callable[[ReplicaView], float],
    ) -> RoutingDecision:
        """Admission check, then route to the lowest-key candidate."""
        decision = self.admission_check(spec, views, now)
        if decision is not None:
            return decision
        return RoutingDecision.route(self._pick_min(views, key))

    def _policy_suffix(self) -> str:
        """Describe-fragment for non-default admission knobs (or '')."""
        parts: list[str] = []
        if self.reject_when_saturated:
            parts.append("reject-saturated")
        if self.shed_classes:
            parts.append(f"shed={'/'.join(sorted(self.shed_classes))}")
        if self.defer_when_saturated is not None:
            parts.append(f"defer={self.defer_when_saturated:g}s")
        return ", ".join(parts)

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        suffix = self._policy_suffix()
        return f"{self.name} ({suffix})" if suffix else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class RoundRobinRouter(Router):
    """Cycle through replicas in id order, skipping saturated ones.

    The cursor remembers the last *id* served rather than a list position, so
    the rotation survives an elastic fleet's churn: ids may appear, disappear,
    and leave gaps between calls, and the ring is simply the sorted eligible
    ids with wrap-around past the last one served.
    """

    name = "round-robin"

    def __init__(
        self,
        *,
        reject_when_saturated: bool = False,
        shed_classes: Iterable[str] = (),
        defer_when_saturated: float | None = None,
    ) -> None:
        super().__init__(
            reject_when_saturated=reject_when_saturated,
            shed_classes=shed_classes,
            defer_when_saturated=defer_when_saturated,
        )
        self._last: int | None = None

    def on_run_start(self) -> None:
        """Forget the cursor so replays of a run are deterministic."""
        self._last = None

    def decide(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float = 0.0,
    ) -> RoutingDecision:
        """Route to the next routable replica id after the cursor."""
        decision = self.admission_check(spec, views, now)
        if decision is not None:
            return decision
        eligible = sorted(view.replica_id for view in self.candidates(views))
        chosen = next(
            (replica_id for replica_id in eligible if self._last is None or replica_id > self._last),
            eligible[0],
        )
        self._last = chosen
        return RoutingDecision.route(chosen)


class LeastOutstandingRouter(Router):
    """Route to the replica with the fewest in-flight requests.

    Deliberately capacity-blind: outstanding-request counts ignore how much
    KV pool each replica actually has, which is exactly the baseline the
    heterogeneous-fleet comparison (fig12) measures the normalised routers
    against.
    """

    name = "least-outstanding"

    def decide(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float = 0.0,
    ) -> RoutingDecision:
        """Route to the candidate replica with the fewest in-flight requests."""
        return self._decide_min(spec, views, now, lambda view: view.outstanding)


class LeastKVLoadRouter(Router):
    """Route to the replica with the lowest fractional KV-cache load.

    Load counts both resident tokens and queued prompt demand, normalised by
    each replica's *own* capacity (:attr:`ReplicaView.load_fraction`), so a
    deep queue is not mistaken for an empty pool and a small-memory replica
    is not mistaken for a large one.
    """

    name = "least-kv-load"

    def decide(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float = 0.0,
    ) -> RoutingDecision:
        """Route to the candidate replica with the lowest fractional KV load."""
        return self._decide_min(spec, views, now, lambda view: view.load_fraction)


class MemoryAwareRouter(Router):
    """Route to the replica with the best speed-weighted predicted headroom.

    The router keeps the paper's sliding window of finished output lengths
    (fleet-wide — every replica's completions feed one history) and, per
    replica, predicts each in-flight request's remaining generation as the
    conditional mean of the window above what the request has already
    produced.  The replica's *predicted peak* future memory then follows from
    Eq. 2–4, and the placement score is the headroom left after placing the
    arriving request, **as a fraction of that replica's own capacity**,
    weighted by the replica's relative decode speed:

    * positive headroom is multiplied by :attr:`ReplicaView.speed_factor`
      (equal relative slack goes to the faster card, which drains it sooner);
    * negative headroom (oversubscription) is divided by it (overloading a
      slow card hurts longer than overloading a fast one).

    On a homogeneous fleet every ``speed_factor`` is 1.0 and every capacity
    equal, so the ordering — and therefore every routing decision — is
    identical to the absolute-headroom comparison this replaces.

    Args:
        window_size: sliding-window length (the paper uses 1000).
        default_length: output length assumed before any request finishes.
        reject_when_saturated: admission knob forwarded to :class:`Router`.
        shed_classes: admission knob forwarded to :class:`Router`.
        defer_when_saturated: admission knob forwarded to :class:`Router`.
    """

    name = "memory-aware"

    def __init__(
        self,
        window_size: int = 1000,
        default_length: int = 2048,
        *,
        reject_when_saturated: bool = False,
        shed_classes: Iterable[str] = (),
        defer_when_saturated: float | None = None,
    ) -> None:
        super().__init__(
            reject_when_saturated=reject_when_saturated,
            shed_classes=shed_classes,
            defer_when_saturated=defer_when_saturated,
        )
        self.history = OutputLengthHistory(window_size=window_size, default_length=default_length)

    def on_run_start(self) -> None:
        """Drop the fleet-wide output-length history for a fresh run."""
        self.history.clear()

    def on_request_finished(self, request: Request, time: float) -> None:
        """Record the finished request's output length (fleet-wide window)."""
        self.history.record(max(request.generated_tokens, 1))

    # ------------------------------------------------------------ prediction
    def _history_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted window and suffix sums, shared by one routing decision.

        Built once per :meth:`decide` call — the history cannot change
        between the per-replica headroom evaluations of a single decision,
        and re-sorting the window per replica would dominate the routing hot
        path.
        """
        lengths = np.sort(self.history.snapshot())
        suffix_sums = np.concatenate([np.cumsum(lengths[::-1])[::-1], [0]])
        return lengths, suffix_sums

    def _expected_remaining(
        self,
        generated: np.ndarray,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Conditional-mean remaining output tokens given ``generated`` so far.

        For each request the prediction is ``E[l | l > generated] −
        generated`` over the historical window; requests that already exceed
        every observed length fall back to one token (the most optimistic
        consistent estimate, matching the Past-Future scheduler).
        """
        lengths, suffix_sums = table if table is not None else self._history_table()
        starts = np.searchsorted(lengths, generated, side="right")
        counts = lengths.size - starts
        safe_counts = np.maximum(counts, 1)
        conditional_mean = suffix_sums[starts] / safe_counts
        expected_total = np.where(counts > 0, np.ceil(conditional_mean), generated + 1)
        return np.maximum(expected_total.astype(np.int64) - generated, 1)

    def predicted_peak_tokens(
        self,
        view: ReplicaView,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> int:
        """Predicted peak future memory of one replica's in-flight work."""
        running_current = np.asarray(view.running_current_tokens, dtype=np.int64)
        running_generated = np.asarray(view.running_generated_tokens, dtype=np.int64)
        waiting_prompts = np.asarray(view.waiting_prompt_tokens, dtype=np.int64)
        current = np.concatenate([running_current, waiting_prompts])
        if current.size == 0:
            return 0
        waiting_generated = (
            np.asarray(view.waiting_generated_tokens, dtype=np.int64)
            if view.waiting_generated_tokens
            else np.zeros(waiting_prompts.size, dtype=np.int64)
        )
        generated = np.concatenate([running_generated, waiting_generated])
        remaining = self._expected_remaining(generated, table)
        # Clamp to each request's max_new_tokens budget, like the Past-Future
        # scheduler: a 2048-token cold-start default must not predict growth
        # a 128-cap request can never physically occupy.
        caps = np.concatenate([
            np.asarray(view.running_remaining_cap_tokens, dtype=np.int64)
            if view.running_remaining_cap_tokens
            else np.full(running_current.size, np.iinfo(np.int64).max),
            np.asarray(view.waiting_remaining_cap_tokens, dtype=np.int64)
            if view.waiting_remaining_cap_tokens
            else np.full(waiting_prompts.size, np.iinfo(np.int64).max),
        ])
        remaining = np.maximum(np.minimum(remaining, caps), 1)
        return peak_future_memory_arrays(current, remaining)

    def predicted_peak_fraction(
        self,
        view: ReplicaView,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> float:
        """Predicted peak as a fraction of *this replica's* token capacity."""
        return self.predicted_peak_tokens(view, table) / view.token_capacity

    def predicted_headroom_tokens(
        self,
        view: ReplicaView,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> int:
        """Predicted future-memory headroom (can be negative when oversubscribed).

        Distinct from :attr:`ReplicaView.headroom_tokens`, which measures
        *present* occupancy plus queued prompts; this subtracts the Eq. 2–4
        predicted peak, so growth the batch has not realised yet counts.
        """
        return view.token_capacity - self.predicted_peak_tokens(view, table)

    def predicted_headroom_fraction(
        self,
        view: ReplicaView,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> float:
        """Predicted headroom as a fraction of *this replica's* capacity.

        The predicted-peak counterpart of the present-state
        :attr:`ReplicaView.headroom_fraction`.
        """
        return self.predicted_headroom_tokens(view, table) / view.token_capacity

    def headroom_tokens(
        self,
        view: ReplicaView,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> int:
        """Legacy alias of :meth:`predicted_headroom_tokens` (PR-1 name)."""
        return self.predicted_headroom_tokens(view, table)

    def placement_score(
        self,
        spec: RequestSpec,
        view: ReplicaView,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> float:
        """Speed-weighted normalised headroom left after placing ``spec``.

        Higher is better.  The arriving request's prompt footprint is charged
        against the replica's predicted headroom before normalising, so a
        request that simply does not fit a small replica scores deeply
        negative there rather than hiding behind a rosy fraction.
        """
        placed = (
            self.predicted_headroom_tokens(view, table) - spec.prompt_tokens
        ) / view.token_capacity
        if placed >= 0:
            return placed * view.speed_factor
        return placed / view.speed_factor

    def decide(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float = 0.0,
    ) -> RoutingDecision:
        """Route to the candidate with the best speed-weighted headroom score."""
        decision = self.admission_check(spec, views, now)
        if decision is not None:
            # Reject/defer before sorting the window: a saturated burst is
            # exactly when this hot path fires per arrival.
            return decision
        table = self._history_table()
        # Largest score == smallest negated score, so tie-breaking still
        # favours the lowest replica id.
        return RoutingDecision.route(
            self._pick_min(views, lambda view: -self.placement_score(spec, view, table))
        )

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        suffix = self._policy_suffix()
        extra = f", {suffix}" if suffix else ""
        return f"{self.name} (window={self.history.window_size}{extra})"


class SessionAffinityRouter(MemoryAwareRouter):
    """Route follow-up session turns back to the replica holding their prefix.

    Multi-turn sessions (see :mod:`repro.workloads.interactions`) carry a
    ``session_id``, and each finished turn's KV context can be retained in
    the serving replica's :class:`~repro.memory.prefix_cache.PrefixCache`.
    A follow-up turn only *hits* that cache if it lands on the same replica,
    so this router remembers where it last placed each session — the
    session's **home** — and prefers the home replica whenever it is still a
    viable candidate.

    The fallback is full memory-aware placement (the parent policy), which
    fires when:

    * the request carries no ``session_id`` (sessionless traffic is routed
      exactly as :class:`MemoryAwareRouter` would);
    * the session has no home yet (its first turn);
    * the home replica is saturated, unhealthy, draining, dead, or has left
      the fleet — :meth:`Router.candidates` filters those out, so a crashed
      home degrades gracefully to load-aware placement instead of stalling
      the session.

    Whatever replica wins becomes the session's new home, so sessions that
    are migrated, retried, or re-placed after a crash *re-home* on their
    next turn and regain affinity from there on.

    Args:
        window_size: sliding-window length for the memory-aware fallback.
        default_length: output length assumed before any request finishes.
        reject_when_saturated: admission knob forwarded to :class:`Router`.
        shed_classes: admission knob forwarded to :class:`Router`.
        defer_when_saturated: admission knob forwarded to :class:`Router`.
    """

    name = "session-affinity"

    def __init__(
        self,
        window_size: int = 1000,
        default_length: int = 2048,
        *,
        reject_when_saturated: bool = False,
        shed_classes: Iterable[str] = (),
        defer_when_saturated: float | None = None,
    ) -> None:
        super().__init__(
            window_size=window_size,
            default_length=default_length,
            reject_when_saturated=reject_when_saturated,
            shed_classes=shed_classes,
            defer_when_saturated=defer_when_saturated,
        )
        self._homes: dict[str, int] = {}

    def on_run_start(self) -> None:
        """Forget session homes and the length history for a fresh run."""
        super().on_run_start()
        self._homes.clear()

    def home_of(self, session_id: str) -> int | None:
        """The replica id this router last placed ``session_id`` on, if any."""
        return self._homes.get(session_id)

    def decide(
        self,
        spec: RequestSpec,
        views: Sequence[ReplicaView],
        now: float = 0.0,
    ) -> RoutingDecision:
        """Route to the session's home replica when viable, else fall back."""
        if spec.session_id is None:
            return super().decide(spec, views, now)
        decision = self.admission_check(spec, views, now)
        if decision is not None:
            return decision
        home = self._homes.get(spec.session_id)
        if home is not None and any(
            view.replica_id == home for view in self.candidates(views)
        ):
            chosen = home
        else:
            table = self._history_table()
            chosen = self._pick_min(
                views, lambda view: -self.placement_score(spec, view, table)
            )
        self._homes[spec.session_id] = chosen
        return RoutingDecision.route(chosen)

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        suffix = self._policy_suffix()
        extra = f", {suffix}" if suffix else ""
        return f"{self.name} (window={self.history.window_size}{extra})"


RouterFactory = Callable[..., Router]

ROUTER_REGISTRY: dict[str, RouterFactory] = {
    "round-robin": RoundRobinRouter,
    "least-outstanding": LeastOutstandingRouter,
    "least-kv-load": LeastKVLoadRouter,
    "memory-aware": MemoryAwareRouter,
    "session-affinity": SessionAffinityRouter,
}


def create_router(name: str, **kwargs) -> Router:
    """Instantiate a router by registry name.

    Args:
        name: one of ``round-robin``, ``least-outstanding``,
            ``least-kv-load``, ``memory-aware``, ``session-affinity``.
        **kwargs: forwarded to the router constructor — policy knobs shared
            by every router (``reject_when_saturated``, ``shed_classes``,
            ``defer_when_saturated``) plus router-specific parameters such as
            ``window_size``.

    Raises:
        KeyError: if the name is unknown.
        TypeError: if a keyword argument is not accepted by the router,
            listing the keywords it does accept.
    """
    return instantiate("router", ROUTER_REGISTRY, name, kwargs)


def available_routers() -> list[str]:
    """Names of all registered routers, sorted for deterministic listings."""
    return sorted(ROUTER_REGISTRY)


def router_overview() -> dict[str, str]:
    """One-line summary per registered router, in ``available_routers`` order.

    Mirrors the scheduler registry's ergonomics: the summary is the first
    line of each router class's docstring, so ``--help`` style listings stay
    in sync with the documentation.
    """
    overview: dict[str, str] = {}
    for name in available_routers():
        doc = ROUTER_REGISTRY[name].__doc__ or ""
        overview[name] = doc.strip().splitlines()[0] if doc.strip() else name
    return overview

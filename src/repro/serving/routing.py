"""Request routers for multi-replica cluster serving.

A :class:`Router` answers one question per arriving request: *which replica
should serve it?*  The :class:`~repro.serving.cluster.ClusterSimulator` hands
the router a :class:`ReplicaSnapshot` per replica — only scheduler-visible
state (queue depths, KV occupancy, generated-so-far counts), never the hidden
true output lengths — and expects back a replica index.

Four policies are provided, in increasing order of awareness:

* :class:`RoundRobinRouter` — cycles through replicas, load-blind;
* :class:`LeastOutstandingRouter` — fewest in-flight (running + queued)
  requests, the classic load-balancer heuristic;
* :class:`LeastKVLoadRouter` — lowest fractional KV-cache occupancy counting
  queued prompt demand, a memory-*present* policy;
* :class:`MemoryAwareRouter` — largest predicted future-memory headroom.  It
  maintains the same sliding output-length history the Past-Future scheduler
  uses and evaluates each replica's peak future memory (Eq. 2–4 via
  :func:`repro.core.future_memory.peak_future_memory_arrays`), so a replica
  whose batch *will* balloon is avoided even while its present occupancy
  still looks low.

All routers break ties deterministically in favour of the lowest replica
index, and skip saturated replicas unless every replica is saturated.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.future_memory import peak_future_memory_arrays
from repro.core.history import OutputLengthHistory
from repro.engine.request import Request
from repro.workloads.spec import RequestSpec


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Scheduler-visible view of one replica at a routing decision.

    Attributes:
        replica_id: index of the replica within the cluster.
        token_capacity: KV-cache token slots of the replica's platform.
        used_tokens: token slots currently occupied by the running batch.
        running_current_tokens: per running request, KV tokens held now
            (prompt + generated).
        running_generated_tokens: per running request, output tokens
            generated so far (aligned with ``running_current_tokens``).
        waiting_prompt_tokens: per queued request, the KV tokens it needs at
            admission (prompt, plus regenerated tokens for evictees).
        running_remaining_cap_tokens: per running request, output tokens its
            ``max_new_tokens`` still allows; empty means unbounded.
        waiting_generated_tokens: per queued request, output tokens already
            generated before eviction; empty means all zero.
        waiting_remaining_cap_tokens: per queued request, output tokens its
            ``max_new_tokens`` still allows; empty means unbounded.
    """

    replica_id: int
    token_capacity: int
    used_tokens: int
    running_current_tokens: tuple[int, ...] = ()
    running_generated_tokens: tuple[int, ...] = ()
    waiting_prompt_tokens: tuple[int, ...] = ()
    running_remaining_cap_tokens: tuple[int, ...] = ()
    waiting_generated_tokens: tuple[int, ...] = ()
    waiting_remaining_cap_tokens: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.token_capacity <= 0:
            raise ValueError("token_capacity must be positive")
        if self.used_tokens < 0:
            raise ValueError("used_tokens must be non-negative")
        if len(self.running_current_tokens) != len(self.running_generated_tokens):
            raise ValueError("running token arrays must be aligned")
        for caps, reference in (
            (self.running_remaining_cap_tokens, self.running_current_tokens),
            (self.waiting_generated_tokens, self.waiting_prompt_tokens),
            (self.waiting_remaining_cap_tokens, self.waiting_prompt_tokens),
        ):
            if caps and len(caps) != len(reference):
                raise ValueError("optional per-request arrays must align with their queue")

    @property
    def num_running(self) -> int:
        """Requests resident in the replica's KV cache."""
        return len(self.running_current_tokens)

    @property
    def num_waiting(self) -> int:
        """Requests queued for admission on the replica."""
        return len(self.waiting_prompt_tokens)

    @property
    def outstanding(self) -> int:
        """In-flight requests: running plus queued."""
        return self.num_running + self.num_waiting

    @property
    def free_tokens(self) -> int:
        """Token slots not currently occupied."""
        return self.token_capacity - self.used_tokens

    @property
    def queued_demand_tokens(self) -> int:
        """Prompt tokens waiting to be admitted."""
        return sum(self.waiting_prompt_tokens)

    @property
    def load_fraction(self) -> float:
        """Occupied plus queued-prompt tokens as a fraction of capacity."""
        return (self.used_tokens + self.queued_demand_tokens) / self.token_capacity

    @property
    def saturated(self) -> bool:
        """Whether the replica cannot absorb more work without stalling.

        A replica counts as saturated when its resident KV tokens plus the
        prompts already queued meet or exceed its capacity: any further
        request would sit behind demand that already fills the pool.
        """
        return self.used_tokens + self.queued_demand_tokens >= self.token_capacity


class Router(abc.ABC):
    """Placement policy mapping an arriving request to a replica."""

    #: human-readable policy name used in tables and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def select_replica(self, spec: RequestSpec, snapshots: Sequence[ReplicaSnapshot]) -> int:
        """Return the ``replica_id`` that should serve ``spec``.

        Implementations must be deterministic given the same snapshots and
        internal state, and must return the ``replica_id`` of one of the
        *given* snapshots.  With an elastic fleet (see
        :mod:`repro.serving.autoscale`) the snapshot set changes between
        calls and ids are not contiguous — replicas launch, warm up, drain,
        and retire, and retired ids are never reused — so ids must be
        treated as opaque keys, never as list indices.  The
        :class:`~repro.serving.cluster.ClusterSimulator` raises
        ``RuntimeError`` if a router returns an id that is absent from the
        snapshots (e.g. a warming, draining, or retired replica).
        """

    # ------------------------------------------------------------- lifecycle
    def on_run_start(self) -> None:
        """Called once before a cluster run begins (reset mutable state)."""

    def on_request_finished(self, request: Request, time: float) -> None:
        """Called when any replica finishes a request (for learning policies)."""

    # -------------------------------------------------------------- utilities
    @staticmethod
    def candidates(snapshots: Sequence[ReplicaSnapshot]) -> list[ReplicaSnapshot]:
        """Routable replicas: the non-saturated ones, or all if none is free."""
        if not snapshots:
            raise ValueError("cannot route with zero replicas")
        open_replicas = [s for s in snapshots if not s.saturated]
        return open_replicas or list(snapshots)

    def _pick_min(
        self,
        snapshots: Sequence[ReplicaSnapshot],
        key: Callable[[ReplicaSnapshot], float],
    ) -> int:
        """Lowest-key candidate, ties broken by lowest replica id."""
        best = min(self.candidates(snapshots), key=lambda s: (key(s), s.replica_id))
        return best.replica_id

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class RoundRobinRouter(Router):
    """Cycle through replicas in id order, skipping saturated ones.

    The cursor remembers the last *id* served rather than a list position, so
    the rotation survives an elastic fleet's churn: ids may appear, disappear,
    and leave gaps between calls, and the ring is simply the sorted eligible
    ids with wrap-around past the last one served.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._last: int | None = None

    def on_run_start(self) -> None:
        self._last = None

    def select_replica(self, spec: RequestSpec, snapshots: Sequence[ReplicaSnapshot]) -> int:
        eligible = sorted(s.replica_id for s in self.candidates(snapshots))
        chosen = next(
            (replica_id for replica_id in eligible if self._last is None or replica_id > self._last),
            eligible[0],
        )
        self._last = chosen
        return chosen


class LeastOutstandingRouter(Router):
    """Route to the replica with the fewest in-flight requests."""

    name = "least-outstanding"

    def select_replica(self, spec: RequestSpec, snapshots: Sequence[ReplicaSnapshot]) -> int:
        return self._pick_min(snapshots, lambda s: s.outstanding)


class LeastKVLoadRouter(Router):
    """Route to the replica with the lowest fractional KV-cache load.

    Load counts both resident tokens and queued prompt demand, so a replica
    with a deep admission queue is not mistaken for an empty one.
    """

    name = "least-kv-load"

    def select_replica(self, spec: RequestSpec, snapshots: Sequence[ReplicaSnapshot]) -> int:
        return self._pick_min(snapshots, lambda s: s.load_fraction)


class MemoryAwareRouter(Router):
    """Route to the replica with the largest predicted future-memory headroom.

    The router keeps the paper's sliding window of finished output lengths
    (fleet-wide — every replica's completions feed one history) and, per
    replica, predicts each in-flight request's remaining generation as the
    conditional mean of the window above what the request has already
    produced.  The replica's *predicted peak* future memory then follows from
    Eq. 2–4, and the request goes wherever ``capacity − peak`` is largest.

    Args:
        window_size: sliding-window length (the paper uses 1000).
        default_length: output length assumed before any request finishes.
    """

    name = "memory-aware"

    def __init__(self, window_size: int = 1000, default_length: int = 2048) -> None:
        self.history = OutputLengthHistory(window_size=window_size, default_length=default_length)

    def on_run_start(self) -> None:
        self.history.clear()

    def on_request_finished(self, request: Request, time: float) -> None:
        self.history.record(max(request.generated_tokens, 1))

    # ------------------------------------------------------------ prediction
    def _history_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted window and suffix sums, shared by one routing decision.

        Built once per :meth:`select_replica` call — the history cannot
        change between the per-replica headroom evaluations of a single
        decision, and re-sorting the window per replica would dominate the
        routing hot path.
        """
        lengths = np.sort(self.history.snapshot())
        suffix_sums = np.concatenate([np.cumsum(lengths[::-1])[::-1], [0]])
        return lengths, suffix_sums

    def _expected_remaining(
        self,
        generated: np.ndarray,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Conditional-mean remaining output tokens given ``generated`` so far.

        For each request the prediction is ``E[l | l > generated] −
        generated`` over the historical window; requests that already exceed
        every observed length fall back to one token (the most optimistic
        consistent estimate, matching the Past-Future scheduler).
        """
        lengths, suffix_sums = table if table is not None else self._history_table()
        starts = np.searchsorted(lengths, generated, side="right")
        counts = lengths.size - starts
        safe_counts = np.maximum(counts, 1)
        conditional_mean = suffix_sums[starts] / safe_counts
        expected_total = np.where(counts > 0, np.ceil(conditional_mean), generated + 1)
        return np.maximum(expected_total.astype(np.int64) - generated, 1)

    def predicted_peak_tokens(
        self,
        snapshot: ReplicaSnapshot,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> int:
        """Predicted peak future memory of one replica's in-flight work."""
        running_current = np.asarray(snapshot.running_current_tokens, dtype=np.int64)
        running_generated = np.asarray(snapshot.running_generated_tokens, dtype=np.int64)
        waiting_prompts = np.asarray(snapshot.waiting_prompt_tokens, dtype=np.int64)
        current = np.concatenate([running_current, waiting_prompts])
        if current.size == 0:
            return 0
        waiting_generated = (
            np.asarray(snapshot.waiting_generated_tokens, dtype=np.int64)
            if snapshot.waiting_generated_tokens
            else np.zeros(waiting_prompts.size, dtype=np.int64)
        )
        generated = np.concatenate([running_generated, waiting_generated])
        remaining = self._expected_remaining(generated, table)
        # Clamp to each request's max_new_tokens budget, like the Past-Future
        # scheduler: a 2048-token cold-start default must not predict growth
        # a 128-cap request can never physically occupy.
        caps = np.concatenate([
            np.asarray(snapshot.running_remaining_cap_tokens, dtype=np.int64)
            if snapshot.running_remaining_cap_tokens
            else np.full(running_current.size, np.iinfo(np.int64).max),
            np.asarray(snapshot.waiting_remaining_cap_tokens, dtype=np.int64)
            if snapshot.waiting_remaining_cap_tokens
            else np.full(waiting_prompts.size, np.iinfo(np.int64).max),
        ])
        remaining = np.maximum(np.minimum(remaining, caps), 1)
        return peak_future_memory_arrays(current, remaining)

    def headroom_tokens(
        self,
        snapshot: ReplicaSnapshot,
        table: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> int:
        """Predicted future-memory headroom (can be negative when oversubscribed)."""
        return snapshot.token_capacity - self.predicted_peak_tokens(snapshot, table)

    def select_replica(self, spec: RequestSpec, snapshots: Sequence[ReplicaSnapshot]) -> int:
        table = self._history_table()
        # Largest headroom == smallest negated headroom, so tie-breaking still
        # favours the lowest replica id.
        return self._pick_min(snapshots, lambda s: -self.headroom_tokens(s, table))

    def describe(self) -> str:
        return f"{self.name} (window={self.history.window_size})"


RouterFactory = Callable[..., Router]

ROUTER_REGISTRY: dict[str, RouterFactory] = {
    "round-robin": RoundRobinRouter,
    "least-outstanding": LeastOutstandingRouter,
    "least-kv-load": LeastKVLoadRouter,
    "memory-aware": MemoryAwareRouter,
}


def create_router(name: str, **kwargs) -> Router:
    """Instantiate a router by registry name.

    Args:
        name: one of ``round-robin``, ``least-outstanding``,
            ``least-kv-load``, ``memory-aware``.
        **kwargs: forwarded to the router constructor (e.g. ``window_size``).

    Raises:
        KeyError: if the name is unknown.
    """
    try:
        factory = ROUTER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(ROUTER_REGISTRY))
        raise KeyError(f"unknown router {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_routers() -> list[str]:
    """Names of all registered routers."""
    return sorted(ROUTER_REGISTRY)

"""The serving simulator: clients + admission scheduler + engine event loop.

:class:`ServingSimulator` owns the simulation clock.  Each tick it

1. injects every client arrival whose timestamp has passed into the engine's
   waiting queue,
2. runs one continuous-batching iteration of the engine, which advances the
   clock by the iteration's modelled latency, and
3. reports completions back to the client pool so closed-loop clients can
   submit their next request.

When the engine is idle but future arrivals exist, the clock jumps forward to
the next arrival, so lightly loaded simulations do not burn iterations doing
nothing.

The single engine here is perfectly reliable: fault injection (crashes,
preemptions, stragglers — :mod:`repro.serving.faults`) is a fleet-level
concern, attached to :class:`~repro.serving.cluster.ClusterSimulator` via its
``faults=`` keyword, because recovery is meaningless without other replicas
to absorb the displaced work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.engine.cost_model import CostModel
from repro.engine.engine import InferenceEngine
from repro.engine.eviction import EvictionPolicy
from repro.engine.request import Request
from repro.hardware.platform import Platform
from repro.obs import events as obs
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer
from repro.schedulers.base import Scheduler
from repro.serving.clients import ClosedLoopClientPool, OpenLoopArrivals
from repro.serving.results import RunResult
from repro.serving.throttle import OverloadThrottle
from repro.workloads.interactions import Interaction, InteractionLoadGenerator
from repro.workloads.spec import Workload


class LoadGenerator(Protocol):
    """The interface both client models implement."""

    def start(self, time: float = 0.0) -> None:
        """Begin generating arrivals at simulation time ``time``."""
        ...

    def on_request_finished(self, time: float) -> None:
        """Observe a completion (closed-loop clients schedule their next request)."""
        ...

    def pop_arrivals(self, now: float) -> list:
        """Return (and consume) every arrival with timestamp <= ``now``."""
        ...

    def next_arrival_time(self) -> float | None:
        """Timestamp of the next scheduled arrival, or ``None`` if exhausted."""
        ...

    @property
    def drained(self) -> bool:
        """Whether no further arrivals can ever be produced."""
        ...


def _submit_attrs(spec) -> dict:
    """``request.submit`` payload: prompt size plus any tenant identity."""
    attrs: dict = {"prompt_tokens": spec.prompt_tokens}
    if spec.user_id is not None:
        attrs["user_id"] = spec.user_id
    if spec.app_id is not None:
        attrs["app_id"] = spec.app_id
    if spec.sla_class:
        attrs["sla_class"] = spec.sla_class
    return attrs


def emit_session_submit(tracer: Tracer, spec, time: float) -> None:
    """Emit ``session.start`` when a session's opening turn is submitted."""
    if spec.session_id is None or spec.session_stage != 0:
        return
    tracer.emit(
        TraceEvent(
            obs.SESSION_START,
            time,
            request_id=spec.request_id,
            attrs={"session_id": spec.session_id, "stages": spec.session_stages},
        )
    )


def emit_session_completion(tracer: Tracer, request: Request, time: float) -> None:
    """Emit ``session.stage`` / ``session.end`` for one finished session turn."""
    spec = request.spec
    if spec.session_id is None or spec.session_stage is None:
        return
    if spec.is_final_stage:
        tracer.emit(
            TraceEvent(
                obs.SESSION_END,
                time,
                request_id=spec.request_id,
                attrs={
                    "session_id": spec.session_id,
                    "turns_completed": spec.session_stage + 1,
                    "abandoned": False,
                },
            )
        )
    else:
        tracer.emit(
            TraceEvent(
                obs.SESSION_STAGE,
                time,
                request_id=spec.request_id,
                attrs={"session_id": spec.session_id, "stage": spec.session_stage},
            )
        )


def emit_session_abandoned(tracer: Tracer, spec, time: float) -> None:
    """Emit an abandoned ``session.end`` for a turned-away session turn."""
    if spec.session_id is None or spec.session_stage is None:
        return
    tracer.emit(
        TraceEvent(
            obs.SESSION_END,
            time,
            request_id=spec.request_id,
            attrs={
                "session_id": spec.session_id,
                "turns_completed": spec.session_stage,
                "abandoned": True,
            },
        )
    )


@dataclass
class SimulationLimits:
    """Safety bounds so misconfigured runs terminate."""

    max_steps: int = 2_000_000
    max_time: float = 1_000_000.0


class ServingSimulator:
    """Drives an :class:`InferenceEngine` against a load generator.

    With ``fast_path`` (the default) the loop asks the engine to fuse
    provably event-free decode iterations into vectorized macro-steps,
    bounded by the next scheduled arrival — including saturated phases,
    where the admission scheduler itself proves its next decisions admit
    nothing (:meth:`InferenceEngine.try_jump_saturated`);
    ``fast_path=False`` forces the reference one-iteration-at-a-time loop.
    Results are bit-identical, so the flag is purely a bisection escape
    hatch.

    ``tracer`` attaches an observer (see :mod:`repro.obs`): the simulator
    emits ``request.submit`` / ``request.throttled`` events and shares the
    tracer with the engine, which emits the queue/admission/token lifecycle
    and the ``engine.step`` / ``engine.jump`` spans.  The default
    :class:`~repro.obs.tracer.NullTracer` keeps every run byte-identical to
    an untraced one.
    """

    def __init__(
        self,
        platform: Platform,
        scheduler: Scheduler,
        cost_model: CostModel | None = None,
        eviction_policy: EvictionPolicy | None = None,
        block_size: int = 1,
        chunked_prefill_tokens: int | None = None,
        token_capacity_override: int | None = None,
        limits: SimulationLimits | None = None,
        fast_path: bool = True,
        throttle: OverloadThrottle | None = None,
        tracer: Tracer | None = None,
        prefix_cache_tokens: int | None = None,
    ) -> None:
        self.platform = platform
        self.scheduler = scheduler
        self.fast_path = fast_path
        self.throttle = throttle
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.engine = InferenceEngine(
            platform=platform,
            scheduler=scheduler,
            cost_model=cost_model,
            eviction_policy=eviction_policy,
            block_size=block_size,
            chunked_prefill_tokens=chunked_prefill_tokens,
            token_capacity_override=token_capacity_override,
            fast_path=fast_path,
            tracer=self.tracer,
            prefix_cache_tokens=prefix_cache_tokens,
        )
        self.limits = limits or SimulationLimits()

    # ---------------------------------------------------------------- running
    def _run(self, generator: LoadGenerator, workload_name: str, num_clients: int) -> RunResult:
        engine = self.engine
        time = 0.0
        generator.start(time)
        if self.throttle is not None:
            self.throttle.on_run_start()
        all_requests: list[Request] = []
        rejected: list[Request] = []
        reject_reasons: dict[str, int] = {}
        completed = True

        tracing = self.tracer.enabled
        notify = getattr(generator, "on_request_completed", None)
        step = 0
        idle_streak = 0
        while True:
            for spec in generator.pop_arrivals(time):
                arrival = spec.arrival_time if spec.arrival_time is not None else time
                if tracing:
                    emit_session_submit(self.tracer, spec, time)
                    self.tracer.emit(
                        TraceEvent(
                            obs.REQUEST_SUBMIT,
                            time,
                            request_id=spec.request_id,
                            attrs=_submit_attrs(spec),
                        )
                    )
                if self.throttle is not None:
                    reason = self.throttle.check(spec, time)
                    if reason is not None:
                        # Turned away before touching the engine.  The client
                        # slot is released immediately — a closed-loop client
                        # whose request is throttled issues its next one after
                        # its think time, exactly like a completion would.
                        rejected.append(Request(spec=spec, arrival_time=arrival))
                        reject_reasons[reason] = reject_reasons.get(reason, 0) + 1
                        if tracing:
                            self.tracer.emit(
                                TraceEvent(
                                    obs.REQUEST_THROTTLED,
                                    time,
                                    request_id=spec.request_id,
                                    attrs={
                                        "reason": reason,
                                        **self.throttle.window_usage(spec, time),
                                    },
                                )
                            )
                            # A throttled turn never finishes, so its session
                            # cannot spawn a follow-up: the session ends here.
                            emit_session_abandoned(self.tracer, spec, time)
                        generator.on_request_finished(time)
                        continue
                request = Request(spec=spec, arrival_time=arrival)
                all_requests.append(request)
                engine.submit(request, time)

            if not engine.has_work():
                if generator.drained:
                    break
                next_arrival = generator.next_arrival_time()
                if next_arrival is None:
                    break
                time = max(time, next_arrival)
                continue

            if self.fast_path:
                # Event-jump: fuse decode iterations up to the next arrival.
                # No request finishes inside a jump, so closed-loop clients
                # cannot schedule new arrivals mid-macro-step and the horizon
                # is complete knowledge of future events.  With an empty
                # waiting queue the silent jump applies; with a non-empty one
                # the saturated jump asks the scheduler to prove its next
                # admission decisions are all "admit nothing" (consuming its
                # RNG bookkeeping exactly as the reference loop would).
                jump = engine.try_jump_any(
                    time,
                    horizon=generator.next_arrival_time(),
                    max_steps=self.limits.max_steps - step,
                    max_time=self.limits.max_time,
                )
                if jump is not None:
                    time = jump.end_time
                    step += jump.steps
                    idle_streak = 0
                    if step >= self.limits.max_steps or time >= self.limits.max_time:
                        completed = False
                        break
                    continue

            result = engine.step(time)
            time = result.end_time if result.duration > 0 else time
            for request in result.finished:
                generator.on_request_finished(time)
                if notify is not None:
                    # Identity-aware completion hook: session generators
                    # spawn the follow-up turn here (never inside a jump,
                    # so the arrival horizon stays complete).
                    notify(request, time)
                if tracing:
                    emit_session_completion(self.tracer, request, time)

            # Stall guard: an idle iteration while requests are waiting means no
            # admission is possible (e.g. a prompt larger than the capacity).
            # A real server would reject such requests; the simulation stops
            # instead of spinning forever.
            if result.was_idle:
                idle_streak += 1
                if idle_streak >= 3:
                    completed = False
                    break
            else:
                idle_streak = 0

            step += 1
            if step >= self.limits.max_steps or time >= self.limits.max_time:
                completed = False
                break

        return RunResult(
            scheduler=self.scheduler.describe(),
            workload=workload_name,
            platform=self.platform.describe(),
            num_clients=num_clients,
            duration=time,
            requests=all_requests,
            engine_stats=engine.stats,
            memory_timeline=engine.memory_timeline,
            token_capacity=engine.token_capacity,
            completed=completed,
            rejected=rejected,
            reject_reasons=reject_reasons,
            jump_stats=engine.jump_stats,
            prefix_stats=engine.prefix_cache.stats if engine.prefix_cache is not None else None,
        )

    def run_closed_loop(
        self,
        workload: Workload,
        num_clients: int,
        think_time: float = 0.0,
    ) -> RunResult:
        """Serve a workload with a fixed-size closed-loop client pool."""
        pool = ClosedLoopClientPool(workload, num_clients=num_clients, think_time=think_time)
        return self._run(pool, workload.name, num_clients)

    def run_open_loop(
        self,
        workload: Workload,
        request_rate: float | None = None,
        seed: int = 0,
    ) -> RunResult:
        """Serve a workload with open-loop (Poisson or recorded) arrivals."""
        arrivals = OpenLoopArrivals(workload, request_rate=request_rate, seed=seed)
        return self._run(arrivals, workload.name, num_clients=0)

    def run_sessions(
        self,
        interactions: Sequence[Interaction],
        name: str = "interactions",
    ) -> RunResult:
        """Serve multi-turn sessions closed-loop.

        Each interaction's opening turn arrives at its start time; every
        later turn is spawned by its predecessor's completion (plus the
        interaction's think time), so stage *n + 1* always carries the
        accumulated conversation prefix stage *n* just finished.  Pair with
        ``prefix_cache_tokens`` to model KV prefix reuse across turns.
        """
        generator = InteractionLoadGenerator(interactions)
        return self._run(generator, name, num_clients=len(interactions))

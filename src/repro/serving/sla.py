"""SLA specifications and per-request compliance checks.

The paper's SLA (Section 5.1) bounds two per-request quantities:

* TTFT — time to first token, and
* MTPOT — the maximum inter-token gap within the request,

and declares a *service* SLA-compliant when 99% of requests satisfy both.
Goodput counts only the tokens of compliant requests.

Two presets match the paper: ``(TTFT < 10 s, MTPOT < 1.5 s)`` for the 7B/13B
models and ``(TTFT < 15 s, MTPOT < 5 s)`` for the 70B model.

Production traffic is not one class, though: a fleet mixes latency-sensitive
*interactive* requests with throughput-oriented *batch* requests (see
:attr:`repro.workloads.spec.RequestSpec.sla_class`), and they sign different
contracts.  An :class:`SLASpec` therefore optionally carries **per-class
deadline overrides**: :meth:`limits_for` resolves the bounds a given class
must meet (falling back to the base bounds), and
:meth:`request_compliant` judges every request against *its own class's*
deadlines.  Per-class goodput accounting on top of this lives in
:mod:`repro.metrics.goodput` and :mod:`repro.metrics.fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.engine.request import Request
from repro.workloads.spec import SLA_CLASS_BATCH, SLA_CLASS_INTERACTIVE


@dataclass(frozen=True)
class ClassLimits:
    """Latency bounds one SLA class must meet."""

    ttft_limit: float
    mtpot_limit: float

    def __post_init__(self) -> None:
        if self.ttft_limit <= 0 or self.mtpot_limit <= 0:
            raise ValueError("SLA limits must be positive")

    def describe(self) -> str:
        """Compact ``TTFT .. / MTPOT ..`` rendering."""
        return f"TTFT {self.ttft_limit:g}s, MTPOT {self.mtpot_limit:g}s"


@dataclass(frozen=True)
class SLASpec:
    """Per-request latency bounds plus the service-level percentile target.

    Attributes:
        ttft_limit: base time-to-first-token bound (seconds).
        mtpot_limit: base maximum inter-token-gap bound (seconds).
        percentile: service-level attainment target.
        class_limits: optional per-SLA-class deadline overrides; classes not
            listed fall back to the base bounds.  Build incrementally with
            :meth:`with_class`.  Excluded from the hash (the mapping is not
            hashable) so specs remain usable as dict keys / set members;
            equality still compares it.
    """

    ttft_limit: float
    mtpot_limit: float
    percentile: float = 99.0
    class_limits: Mapping[str, ClassLimits] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.ttft_limit <= 0 or self.mtpot_limit <= 0:
            raise ValueError("SLA limits must be positive")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")

    def with_class(self, sla_class: str, ttft_limit: float, mtpot_limit: float) -> "SLASpec":
        """Copy of this spec with deadlines bound for one service class."""
        limits = dict(self.class_limits)
        limits[sla_class] = ClassLimits(ttft_limit=ttft_limit, mtpot_limit=mtpot_limit)
        return replace(self, class_limits=limits)

    def limits_for(self, sla_class: str) -> ClassLimits:
        """Effective deadlines for a service class (base bounds by default)."""
        override = self.class_limits.get(sla_class)
        if override is not None:
            return override
        return ClassLimits(ttft_limit=self.ttft_limit, mtpot_limit=self.mtpot_limit)

    def request_compliant(self, request: Request) -> bool:
        """Whether a single request met both latency bounds of *its class*.

        Unfinished requests and requests that never produced a token are
        non-compliant by definition.  Requests with a single output token have
        no inter-token gap, so only their TTFT is checked.
        """
        if not request.is_finished:
            return False
        limits = self.limits_for(request.spec.sla_class)
        ttft = request.ttft
        if ttft is None or ttft > limits.ttft_limit:
            return False
        max_gap = request.max_tpot
        if max_gap is not None and max_gap > limits.mtpot_limit:
            return False
        return True

    def describe(self) -> str:
        """Human-readable SLA string as used in the paper's figure captions."""
        base = (
            f"P{self.percentile:.0f} TTFT {self.ttft_limit:g}s, "
            f"P{self.percentile:.0f} MTPOT {self.mtpot_limit:g}s"
        )
        if not self.class_limits:
            return base
        classes = "; ".join(
            f"{name}: {self.class_limits[name].describe()}"
            for name in sorted(self.class_limits)
        )
        return f"{base} [{classes}]"


#: SLA used for the 7B and 13B models in the paper.
SLA_SMALL_MODEL = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)

#: SLA used for the 70B model in the paper.
SLA_LARGE_MODEL = SLASpec(ttft_limit=15.0, mtpot_limit=5.0)


def sla_for_model(model_name: str) -> SLASpec:
    """The paper's SLA preset for a given model name."""
    return SLA_LARGE_MODEL if "70B" in model_name else SLA_SMALL_MODEL


def two_class_sla(
    interactive: ClassLimits | tuple[float, float],
    batch: ClassLimits | tuple[float, float],
    percentile: float = 99.0,
) -> SLASpec:
    """Build the canonical interactive/batch two-class SLA.

    The base bounds are the interactive ones (unknown classes are held to the
    stricter contract), with an explicit looser contract for ``batch``.

    Args:
        interactive: ``ClassLimits`` or ``(ttft, mtpot)`` for interactive
            traffic.
        batch: ``ClassLimits`` or ``(ttft, mtpot)`` for batch traffic.
        percentile: service-level attainment target.
    """
    if isinstance(interactive, tuple):
        interactive = ClassLimits(*interactive)
    if isinstance(batch, tuple):
        batch = ClassLimits(*batch)
    return SLASpec(
        ttft_limit=interactive.ttft_limit,
        mtpot_limit=interactive.mtpot_limit,
        percentile=percentile,
        class_limits={SLA_CLASS_INTERACTIVE: interactive, SLA_CLASS_BATCH: batch},
    )

"""SLA specifications and per-request compliance checks.

The paper's SLA (Section 5.1) bounds two per-request quantities:

* TTFT — time to first token, and
* MTPOT — the maximum inter-token gap within the request,

and declares a *service* SLA-compliant when 99% of requests satisfy both.
Goodput counts only the tokens of compliant requests.

Two presets match the paper: ``(TTFT < 10 s, MTPOT < 1.5 s)`` for the 7B/13B
models and ``(TTFT < 15 s, MTPOT < 5 s)`` for the 70B model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.request import Request


@dataclass(frozen=True)
class SLASpec:
    """Per-request latency bounds plus the service-level percentile target."""

    ttft_limit: float
    mtpot_limit: float
    percentile: float = 99.0

    def __post_init__(self) -> None:
        if self.ttft_limit <= 0 or self.mtpot_limit <= 0:
            raise ValueError("SLA limits must be positive")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")

    def request_compliant(self, request: Request) -> bool:
        """Whether a single request met both latency bounds.

        Unfinished requests and requests that never produced a token are
        non-compliant by definition.  Requests with a single output token have
        no inter-token gap, so only their TTFT is checked.
        """
        if not request.is_finished:
            return False
        ttft = request.ttft
        if ttft is None or ttft > self.ttft_limit:
            return False
        max_gap = request.max_tpot
        if max_gap is not None and max_gap > self.mtpot_limit:
            return False
        return True

    def describe(self) -> str:
        """Human-readable SLA string as used in the paper's figure captions."""
        return (
            f"P{self.percentile:.0f} TTFT {self.ttft_limit:g}s, "
            f"P{self.percentile:.0f} MTPOT {self.mtpot_limit:g}s"
        )


#: SLA used for the 7B and 13B models in the paper.
SLA_SMALL_MODEL = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)

#: SLA used for the 70B model in the paper.
SLA_LARGE_MODEL = SLASpec(ttft_limit=15.0, mtpot_limit=5.0)


def sla_for_model(model_name: str) -> SLASpec:
    """The paper's SLA preset for a given model name."""
    return SLA_LARGE_MODEL if "70B" in model_name else SLA_SMALL_MODEL

"""Interaction-aware overload throttling: per-user and per-app rate limits.

Admission schedulers decide *which queued request* joins the batch; a
throttle decides *whether a request joins the queue at all*.  Under tenant
skew (see :mod:`repro.workloads.tenants`) one abusive user can bury the
queue faster than any fair scheduler can reorder it, so production serving
stacks put a request-rate limiter in front of admission.  This module models
that limiter:

* a **sliding window** per user and per application counts admitted arrivals
  over the last ``window_seconds`` (the half-open interval
  ``(now - window, now]``);
* an arrival whose user or app is at its per-minute limit is rejected with
  reason :data:`REASON_THROTTLED` before it consumes any serving resources —
  throttled arrivals are *not* recorded, so they do not extend their own
  punishment;
* the ``exempt`` hook makes the throttle *interaction-aware*: a predicate
  over the :class:`~repro.workloads.spec.RequestSpec` that waves through
  traffic the operator never wants throttled (e.g. the ``interactive`` SLA
  class, an internal app, or short conversational turns), while batch-style
  traffic from the same tenants stays rate-limited.

Requests without a ``user_id`` bypass the user window (there is no tenant to
attribute them to) and likewise for ``app_id`` — an untenanted workload
passes through a configured throttle untouched.

Throttle rejections share the same typed ``reject_reasons`` accounting as the
fault subsystem's reasons (:mod:`repro.serving.faults`), so conservation
(``routed + rejected == submitted``) holds with both a throttle and a
:class:`~repro.serving.faults.FaultPlan` mounted.  The throttle only gates
*fresh arrivals*: work re-dispatched after a replica crash was already
admitted once and retries through the router's defer path, never back
through the rate limiter.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.workloads.spec import RequestSpec

#: Reject reason stamped by the throttle (see ``RunResult.reject_reasons``).
REASON_THROTTLED = "throttled"


class OverloadThrottle:
    """Sliding-window RPM limiter applied before routing/admission.

    Args:
        user_rpm: maximum admitted arrivals per user per window (``None``
            disables the user check).
        app_rpm: maximum admitted arrivals per application per window
            (``None`` disables the app check).
        window_seconds: sliding-window length; "RPM" limits with the default
            60-second window.
        exempt: optional predicate over the arriving spec; a ``True`` return
            bypasses both checks *and* recording, so exempt traffic neither
            gets throttled nor eats into its tenant's budget.
    """

    def __init__(
        self,
        user_rpm: int | None = None,
        app_rpm: int | None = None,
        window_seconds: float = 60.0,
        exempt: Callable[[RequestSpec], bool] | None = None,
    ) -> None:
        if user_rpm is not None and user_rpm <= 0:
            raise ValueError("user_rpm must be positive (or None to disable)")
        if app_rpm is not None and app_rpm <= 0:
            raise ValueError("app_rpm must be positive (or None to disable)")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.user_rpm = user_rpm
        self.app_rpm = app_rpm
        self.window_seconds = window_seconds
        self.exempt = exempt
        self._user_windows: dict[str, deque[float]] = {}
        self._app_windows: dict[str, deque[float]] = {}

    # ------------------------------------------------------------------ state
    def reset(self) -> None:
        """Forget all window state (called at the start of every run)."""
        self._user_windows = {}
        self._app_windows = {}

    def on_run_start(self) -> None:
        """Simulator lifecycle alias for :meth:`reset`."""
        self.reset()

    def _prune(self, window: deque[float], now: float) -> None:
        cutoff = now - self.window_seconds
        while window and window[0] <= cutoff:
            window.popleft()

    def _at_limit(
        self,
        windows: dict[str, deque[float]],
        key: str | None,
        limit: int | None,
        now: float,
    ) -> bool:
        if limit is None or key is None:
            return False
        window = windows.get(key)
        if window is None:
            return False
        self._prune(window, now)
        return len(window) >= limit

    # ------------------------------------------------------------------ check
    def check(self, spec: RequestSpec, now: float) -> str | None:
        """Admit or reject one arrival; returns a reject reason or ``None``.

        Both limits are checked *before* either window records the arrival,
        so a request rejected by the app limit does not count against its
        user's budget (and vice versa).  Admitted arrivals are recorded in
        every applicable window.
        """
        if self.exempt is not None and self.exempt(spec):
            return None
        if self._at_limit(self._user_windows, spec.user_id, self.user_rpm, now):
            return REASON_THROTTLED
        if self._at_limit(self._app_windows, spec.app_id, self.app_rpm, now):
            return REASON_THROTTLED
        if self.user_rpm is not None and spec.user_id is not None:
            self._user_windows.setdefault(spec.user_id, deque()).append(now)
        if self.app_rpm is not None and spec.app_id is not None:
            self._app_windows.setdefault(spec.app_id, deque()).append(now)
        return None

    def window_usage(self, spec: RequestSpec, now: float) -> dict:
        """Read-only snapshot of the tenant windows behind one decision.

        Counts in-window arrivals without mutating the deques (no pruning),
        so it is safe to call from tracing code at any point relative to
        :meth:`check`.  Returned keys (``user_window`` / ``user_rpm`` /
        ``app_window`` / ``app_rpm``) appear only for configured limits whose
        tenant id is present on the spec — the payload of
        ``request.throttled`` events.
        """
        cutoff = now - self.window_seconds
        usage: dict = {}
        if self.user_rpm is not None and spec.user_id is not None:
            window = self._user_windows.get(spec.user_id, ())
            usage["user_window"] = sum(1 for t in window if t > cutoff)
            usage["user_rpm"] = self.user_rpm
        if self.app_rpm is not None and spec.app_id is not None:
            window = self._app_windows.get(spec.app_id, ())
            usage["app_window"] = sum(1 for t in window if t > cutoff)
            usage["app_rpm"] = self.app_rpm
        return usage

    def describe(self) -> str:
        """One-line parameterised description used in result tables."""
        parts = []
        if self.user_rpm is not None:
            parts.append(f"user<={self.user_rpm}")
        if self.app_rpm is not None:
            parts.append(f"app<={self.app_rpm}")
        limits = ", ".join(parts) if parts else "disabled"
        suffix = ", exempt hook" if self.exempt is not None else ""
        return f"throttle ({limits} per {self.window_seconds:g}s{suffix})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverloadThrottle({self.describe()})"

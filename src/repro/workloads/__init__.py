"""Workload substrate: request specs and synthetic trace generators."""

from repro.workloads.arrivals import (
    assign_bursty_arrivals,
    assign_diurnal_arrivals,
    assign_poisson_arrivals,
)
from repro.workloads.burstgpt import (
    API_ARCHETYPES,
    FIGURE3_TRACES,
    TaskArchetype,
    figure3_trace,
    generate_api_trace,
    generate_conversation_trace,
)
from repro.workloads.distributions import (
    DISTRIBUTION_1,
    DISTRIBUTION_2,
    DISTRIBUTION_3,
    PAPER_DISTRIBUTIONS,
    UniformLengthSpec,
    distribution_workload,
    generate_uniform_workload,
)
from repro.workloads.interactions import (
    Interaction,
    InteractionLoadGenerator,
    InteractionStage,
    generate_interactions,
    interactions_workload,
)
from repro.workloads.mixed import generate_phase_workload, generate_varying_load
from repro.workloads.multimodal import generate_textvqa_workload
from repro.workloads.sharegpt import (
    generate_sharegpt_o1_workload,
    generate_sharegpt_workload,
)
from repro.workloads.spec import (
    SLA_CLASS_BATCH,
    SLA_CLASS_INTERACTIVE,
    RequestSpec,
    Workload,
    assign_sla_classes,
    concatenate,
    interleave,
    scale_workload,
)
from repro.workloads.tenants import (
    TenantPopulation,
    TenantProfile,
    assign_tenants,
    generate_tenant_population,
)

__all__ = [
    "assign_bursty_arrivals",
    "assign_diurnal_arrivals",
    "assign_poisson_arrivals",
    "assign_sla_classes",
    "SLA_CLASS_BATCH",
    "SLA_CLASS_INTERACTIVE",
    "API_ARCHETYPES",
    "FIGURE3_TRACES",
    "TaskArchetype",
    "figure3_trace",
    "generate_api_trace",
    "generate_conversation_trace",
    "DISTRIBUTION_1",
    "DISTRIBUTION_2",
    "DISTRIBUTION_3",
    "PAPER_DISTRIBUTIONS",
    "UniformLengthSpec",
    "distribution_workload",
    "generate_uniform_workload",
    "Interaction",
    "InteractionLoadGenerator",
    "InteractionStage",
    "generate_interactions",
    "interactions_workload",
    "generate_phase_workload",
    "generate_varying_load",
    "generate_textvqa_workload",
    "generate_sharegpt_o1_workload",
    "generate_sharegpt_workload",
    "RequestSpec",
    "Workload",
    "concatenate",
    "interleave",
    "scale_workload",
    "TenantPopulation",
    "TenantProfile",
    "assign_tenants",
    "generate_tenant_population",
]

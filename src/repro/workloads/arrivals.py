"""Arrival-time assignment for open-loop (trace replay) workloads.

The single-engine experiments either let closed-loop clients pace themselves
or draw plain Poisson arrivals inside
:class:`~repro.serving.clients.OpenLoopArrivals`.  Fleet-level routing only
becomes interesting under *bursty* traffic — production request streams arrive
in waves (diurnal peaks, retry storms, batch jobs), and it is exactly during a
burst that a router's placement decisions determine whether one replica melts
while its neighbours idle.

:func:`assign_bursty_arrivals` stamps a workload with arrival times drawn from
an on/off modulated Poisson process: the trace alternates between quiet phases
at ``base_rate`` and burst phases at ``burst_rate`` requests per second.
:func:`assign_diurnal_arrivals` layers a sinusoidal rate envelope over that
bursty base — the day/night cycle every production service sees — so
autoscaling policies face slow tides *and* fast waves at once.  A stamped
workload replays identically through
:meth:`~repro.serving.cluster.ClusterSimulator.run_open_loop` for every router
under comparison, so router effects are never confounded with arrival noise.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.workloads.spec import Workload


def _stamp_exponential_gaps(
    workload: Workload, rates: np.ndarray, rng: np.random.Generator, note: str
) -> Workload:
    """Stamp arrival times from per-request exponential gaps at ``rates``."""
    gaps = rng.exponential(scale=1.0, size=len(workload)) / rates
    times = np.cumsum(gaps)
    requests = [
        replace(spec, arrival_time=float(time))
        for spec, time in zip(workload.requests, times)
    ]
    return Workload(
        name=workload.name,
        requests=requests,
        description=f"{workload.description} ({note})",
    )


def assign_poisson_arrivals(
    workload: Workload,
    request_rate: float,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Stamp a workload with Poisson arrival times at a constant rate.

    Args:
        workload: the requests to stamp, in submission order.
        request_rate: arrival rate in requests per second.
        seed: seed for a fresh generator when ``rng`` is not given.
        rng: an explicit :class:`numpy.random.Generator` to draw from; takes
            precedence over ``seed``, letting experiments thread one seeded
            generator through every stochastic stage for end-to-end
            reproducibility.
    """
    if request_rate <= 0:
        raise ValueError("request_rate must be positive")
    rates = np.full(len(workload), request_rate)
    generator = rng if rng is not None else np.random.default_rng(seed)
    return _stamp_exponential_gaps(workload, rates, generator, f"poisson {request_rate:g} req/s")


def _bursty_nominal_rates(
    num_requests: int,
    base_rate: float,
    burst_rate: float,
    burst_length: int,
    cycle_length: int,
) -> np.ndarray:
    """Validated per-request on/off rates shared by the bursty stampers.

    Requests arrive in repeating cycles of ``cycle_length`` requests: the
    first ``burst_length`` of each cycle at ``burst_rate`` (the wave), the
    remainder at ``base_rate`` (the lull).
    """
    if base_rate <= 0 or burst_rate <= 0:
        raise ValueError("arrival rates must be positive")
    if burst_rate <= base_rate:
        raise ValueError("burst_rate must exceed base_rate")
    if not 0 < burst_length <= cycle_length:
        raise ValueError("burst_length must be in (0, cycle_length]")
    positions = np.arange(num_requests)
    in_burst = (positions % cycle_length) < burst_length
    return np.where(in_burst, burst_rate, base_rate)


def assign_bursty_arrivals(
    workload: Workload,
    base_rate: float,
    burst_rate: float,
    burst_length: int = 32,
    cycle_length: int = 64,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Stamp a workload with on/off modulated Poisson arrival times.

    Requests arrive in repeating cycles of ``cycle_length`` requests: the
    first ``burst_length`` of each cycle draw inter-arrival gaps at
    ``burst_rate`` (the wave), the remainder at ``base_rate`` (the lull).

    Args:
        workload: the requests to stamp, in submission order.
        base_rate: arrival rate (requests/second) during quiet phases.
        burst_rate: arrival rate during bursts; must exceed ``base_rate``.
        burst_length: number of requests per cycle that arrive at burst rate.
        cycle_length: total requests per quiet+burst cycle.
        seed: seed for a fresh generator when ``rng`` is not given.
        rng: an explicit :class:`numpy.random.Generator` to draw the
            exponential gaps from; takes precedence over ``seed`` so cluster
            and autoscale experiments can share one seeded generator
            end-to-end.
    """
    rates = _bursty_nominal_rates(
        len(workload), base_rate, burst_rate, burst_length, cycle_length
    )
    note = (
        f"bursty {base_rate:g}->{burst_rate:g} req/s, "
        f"{burst_length}/{cycle_length} cycle"
    )
    generator = rng if rng is not None else np.random.default_rng(seed)
    return _stamp_exponential_gaps(workload, rates, generator, note)


def assign_diurnal_arrivals(
    workload: Workload,
    base_rate: float,
    burst_rate: float,
    period: float,
    amplitude: float = 0.5,
    burst_length: int = 32,
    cycle_length: int = 64,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Stamp arrivals from a bursty process under a sinusoidal daily envelope.

    The per-request rate is the on/off bursty rate (exactly as in
    :func:`assign_bursty_arrivals`) multiplied by a time-dependent envelope::

        envelope(t) = 1 + amplitude * sin(2 * pi * t / period)

    so traffic tides between ``(1 - amplitude)`` and ``(1 + amplitude)``
    times the nominal rates over each ``period`` (starting at the mean,
    rising first).  Because the envelope depends on *time*, arrival times are
    accumulated sequentially — each gap is an exponential draw scaled by the
    instantaneous rate — which is the standard stepwise-rate construction of
    a nonhomogeneous Poisson process.  The random stream is the same
    per-request standard-exponential draw the other stampers use, so one
    seeded :class:`numpy.random.Generator` threads through unchanged.

    Args:
        workload: the requests to stamp, in submission order.
        base_rate: nominal arrival rate (requests/second) during quiet phases.
        burst_rate: nominal rate during bursts; must exceed ``base_rate``.
        period: seconds per full diurnal cycle.
        amplitude: relative swing of the envelope, in ``[0, 1)``.
        burst_length: number of requests per cycle that arrive at burst rate.
        cycle_length: total requests per quiet+burst cycle.
        seed: seed for a fresh generator when ``rng`` is not given.
        rng: an explicit :class:`numpy.random.Generator` to draw the
            exponential gaps from; takes precedence over ``seed``.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    nominal_rates = _bursty_nominal_rates(
        len(workload), base_rate, burst_rate, burst_length, cycle_length
    )
    generator = rng if rng is not None else np.random.default_rng(seed)
    standard_gaps = generator.exponential(scale=1.0, size=len(workload))
    times = np.empty(len(workload))
    now = 0.0
    angular = 2.0 * np.pi / period
    for index, (nominal, gap) in enumerate(zip(nominal_rates, standard_gaps)):
        envelope = 1.0 + amplitude * np.sin(angular * now)
        now += float(gap / (nominal * envelope))
        times[index] = now
    requests = [
        replace(spec, arrival_time=float(time))
        for spec, time in zip(workload.requests, times)
    ]
    note = (
        f"diurnal x{amplitude:g} over {period:g}s, bursty "
        f"{base_rate:g}->{burst_rate:g} req/s, {burst_length}/{cycle_length} cycle"
    )
    return Workload(
        name=workload.name,
        requests=requests,
        description=f"{workload.description} ({note})",
    )

"""BurstGPT-style request traces for the window-similarity study (Fig. 3 / 4).

The paper's key empirical observation (Section 3.2) is about *trace structure*
rather than individual requests:

* requests from a single end-user service (conversation, code completion,
  dialog) have an output-length distribution that is stable over long periods;
* requests from an API / hybrid service mix several task types whose mixture
  drifts over hours, so the *global* distribution varies — but **adjacent time
  windows remain similar** (the diagonal pattern in Figure 3).

The BurstGPT, Mooncake and in-house traces themselves are not redistributable,
so this module synthesises traces with exactly those structural properties:

* :func:`generate_conversation_trace` — a stationary log-normal output-length
  process (single-service traces: BurstGPT conversation, in-house dialog,
  code completion, Mooncake).
* :func:`generate_api_trace` — a slowly drifting mixture of task archetypes
  (short classification-style answers, medium chat answers, long generation),
  so that distant windows diverge while adjacent windows stay similar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.spec import (
    SLA_CLASS_BATCH,
    SLA_CLASS_INTERACTIVE,
    RequestSpec,
    Workload,
)


@dataclass(frozen=True)
class TaskArchetype:
    """One task type inside a mixed API trace."""

    name: str
    mean_output: float
    sigma: float
    mean_input: float = 512.0
    #: service class this task type signs up for — a user waiting on a chat
    #: answer is interactive; long-form generation rides the batch contract.
    sla_class: str = SLA_CLASS_INTERACTIVE

    def sample_output(self, rng: np.random.Generator, size: int) -> np.ndarray:
        mu = np.log(self.mean_output) - self.sigma ** 2 / 2.0
        samples = rng.lognormal(mean=mu, sigma=self.sigma, size=size)
        return np.clip(np.round(samples), 1, 8192).astype(int)

    def sample_input(self, rng: np.random.Generator, size: int) -> np.ndarray:
        mu = np.log(self.mean_input) - 0.64 / 2.0
        samples = rng.lognormal(mean=mu, sigma=0.8, size=size)
        return np.clip(np.round(samples), 4, 8192).astype(int)


#: Archetypes roughly matching the task mix of a public LLM API: extraction /
#: classification (very short outputs), chat answers, code generation, and
#: long-form generation.
API_ARCHETYPES: tuple[TaskArchetype, ...] = (
    TaskArchetype("extraction", mean_output=24.0, sigma=0.6, mean_input=900.0),
    TaskArchetype("chat", mean_output=280.0, sigma=0.8, mean_input=400.0),
    TaskArchetype("code", mean_output=700.0, sigma=0.7, mean_input=650.0),
    TaskArchetype(
        "longform", mean_output=1500.0, sigma=0.5, mean_input=300.0,
        sla_class=SLA_CLASS_BATCH,
    ),
)


def generate_conversation_trace(
    num_requests: int,
    seed: int = 0,
    mean_output: float = 330.0,
    sigma: float = 0.9,
    mean_input: float = 420.0,
    max_new_tokens: int = 4096,
    name: str = "BurstGPT-Conversation",
) -> Workload:
    """Stationary single-service trace (conversation/dialog/code-completion)."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    archetype = TaskArchetype("conversation", mean_output=mean_output, sigma=sigma, mean_input=mean_input)
    outputs = np.minimum(archetype.sample_output(rng, num_requests), max_new_tokens)
    inputs = archetype.sample_input(rng, num_requests)
    requests = [
        RequestSpec(
            request_id=f"{name.lower()}-{i}",
            input_length=int(inputs[i]),
            output_length=int(outputs[i]),
            max_new_tokens=max_new_tokens,
        )
        for i in range(num_requests)
    ]
    return Workload(
        name=name,
        requests=requests,
        description="stationary single-service trace (stable output-length distribution)",
    )


def generate_api_trace(
    num_requests: int,
    seed: int = 0,
    drift_period: int = 20_000,
    max_new_tokens: int = 8192,
    name: str = "BurstGPT-API",
) -> Workload:
    """API-style trace whose task mixture drifts slowly over the trace.

    The mixture weights over :data:`API_ARCHETYPES` rotate with a period of
    ``drift_period`` requests, so windows separated by less than ~1/10 of the
    period have nearly the same distribution while windows far apart differ.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    num_types = len(API_ARCHETYPES)
    requests: list[RequestSpec] = []
    positions = np.arange(num_requests)
    # Rotating mixture: each archetype's weight is a shifted raised cosine of
    # the trace position, guaranteeing smooth drift.
    phases = 2.0 * np.pi * positions[:, None] / drift_period + \
        2.0 * np.pi * np.arange(num_types)[None, :] / num_types
    weights = 1.0 + np.cos(phases)
    weights = weights / weights.sum(axis=1, keepdims=True)
    choices = np.array([
        rng.choice(num_types, p=weights[i]) for i in range(num_requests)
    ])
    for type_index, archetype in enumerate(API_ARCHETYPES):
        mask = choices == type_index
        count = int(mask.sum())
        if count == 0:
            continue
        outputs = np.minimum(archetype.sample_output(rng, count), max_new_tokens)
        inputs = archetype.sample_input(rng, count)
        slots = np.flatnonzero(mask)
        for slot, inp, out in zip(slots, inputs, outputs):
            requests.append(
                RequestSpec(
                    request_id=f"{name.lower()}-{slot}",
                    input_length=int(inp),
                    output_length=int(out),
                    max_new_tokens=max_new_tokens,
                    sla_class=archetype.sla_class,
                )
            )
    requests.sort(key=lambda r: int(r.request_id.rsplit("-", 1)[1]))
    return Workload(
        name=name,
        requests=requests,
        description="mixed API trace with slowly drifting task mixture",
    )


#: The six traces analysed in Figure 3 of the paper, as named factories.  Each
#: entry maps the figure's panel label to a callable ``(num_requests, seed) ->
#: Workload`` with the qualitative character described in the paper.
FIGURE3_TRACES: dict[str, str] = {
    "(a) BurstGPT Conversation": "conversation",
    "(b) BurstGPT API": "api",
    "(c) In-house Dialog A": "conversation",
    "(d) In-house Dialog B": "conversation",
    "(e) In-house Code Completion": "conversation",
    "(f) Mooncake": "conversation",
}


def figure3_trace(label: str, num_requests: int, seed: int = 0) -> Workload:
    """Generate one of the Figure-3 traces by its panel label."""
    try:
        kind = FIGURE3_TRACES[label]
    except KeyError:
        known = ", ".join(sorted(FIGURE3_TRACES))
        raise KeyError(f"unknown trace label {label!r}; known: {known}") from None
    if kind == "api":
        return generate_api_trace(num_requests, seed=seed, name=label)
    # Vary the stationary parameters per panel — keyed on the panel's position
    # in the figure so every panel is distinct AND deterministic (str hash()
    # is randomised per process; a modular digest collides between panels).
    offset = list(FIGURE3_TRACES).index(label)
    return generate_conversation_trace(
        num_requests,
        seed=seed + offset,
        mean_output=260.0 + 60.0 * offset,
        sigma=0.8 + 0.05 * offset,
        name=label,
    )

"""The paper's synthetic uniform length distributions (Distribution-1/2/3).

Section 5.1 of the paper constructs three datasets from the length statistics
of a production service, with uniform input/output length ranges:

* **Distribution-1** (decode-heavy): input 32–4k, output 2k–4k
* **Distribution-2** (balanced):     input 3k–5k, output 3k–5k
* **Distribution-3** (prefill-heavy): input 2k–4k, output 32–4k

``max_new_tokens`` is set to the top of the output range so the true output is
always admissible, matching the paper's setup where the maximum output length
is a generous cap rather than a tight bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.spec import RequestSpec, Workload


@dataclass(frozen=True)
class UniformLengthSpec:
    """Uniform input/output length ranges defining one synthetic dataset."""

    name: str
    input_low: int
    input_high: int
    output_low: int
    output_high: int
    max_new_tokens: int | None = None

    def resolved_max_new_tokens(self) -> int:
        """The generation cap: explicit value or the top of the output range."""
        return self.max_new_tokens if self.max_new_tokens is not None else self.output_high


DISTRIBUTION_1 = UniformLengthSpec("Distribution-1", 32, 4096, 2048, 4096)
DISTRIBUTION_2 = UniformLengthSpec("Distribution-2", 3072, 5120, 3072, 5120)
DISTRIBUTION_3 = UniformLengthSpec("Distribution-3", 2048, 4096, 32, 4096)

PAPER_DISTRIBUTIONS: dict[str, UniformLengthSpec] = {
    "Distribution-1": DISTRIBUTION_1,
    "Distribution-2": DISTRIBUTION_2,
    "Distribution-3": DISTRIBUTION_3,
}


def generate_uniform_workload(
    spec: UniformLengthSpec,
    num_requests: int,
    seed: int = 0,
) -> Workload:
    """Sample a workload with uniformly distributed input/output lengths.

    Args:
        spec: the length ranges to sample from.
        num_requests: number of requests to generate.
        seed: RNG seed; the same seed always produces the same workload.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    inputs = rng.integers(spec.input_low, spec.input_high + 1, size=num_requests)
    outputs = rng.integers(spec.output_low, spec.output_high + 1, size=num_requests)
    cap = spec.resolved_max_new_tokens()
    requests = [
        RequestSpec(
            request_id=f"{spec.name.lower()}-{i}",
            input_length=int(inputs[i]),
            output_length=int(min(outputs[i], cap)),
            max_new_tokens=cap,
        )
        for i in range(num_requests)
    ]
    return Workload(
        name=spec.name,
        requests=requests,
        description=(
            f"uniform input {spec.input_low}-{spec.input_high}, "
            f"output {spec.output_low}-{spec.output_high}"
        ),
    )


def distribution_workload(name: str, num_requests: int, seed: int = 0) -> Workload:
    """Generate one of the paper's Distribution-1/2/3 workloads by name."""
    try:
        spec = PAPER_DISTRIBUTIONS[name]
    except KeyError:
        known = ", ".join(sorted(PAPER_DISTRIBUTIONS))
        raise KeyError(f"unknown distribution {name!r}; known: {known}") from None
    return generate_uniform_workload(spec, num_requests, seed=seed)

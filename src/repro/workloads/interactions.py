"""Multi-turn agentic interaction workloads (closed-loop sessions).

Production LLM traffic is increasingly *sessions*, not single shots: a user
prompt triggers an agent turn, whose output (plus tool results or a follow-up
prompt) becomes part of the next turn's prompt, until a final answer — the
fairserve ``Interaction`` model (USER_PROMPT → AGENT_n → FINAL).  Two
properties matter to a serving system:

1. **Closed-loop spawning** — turn *n + 1* cannot arrive before turn *n*
   completes.  :class:`InteractionLoadGenerator` implements the
   :class:`~repro.serving.server.LoadGenerator` protocol and schedules each
   follow-up turn at its predecessor's completion time (plus an optional
   think time), so session arrivals are *reactions* to the simulation, not a
   pre-recorded trace.
2. **Prefix accumulation** — turn *n + 1*'s prompt is exactly turn *n*'s
   full context (prompt + generated output) extended by the new user/tool
   tokens.  The per-replica :class:`~repro.memory.prefix_cache.PrefixCache`
   exploits this: a turn landing on the replica that served its predecessor
   skips recomputing (and re-allocating) the shared prefix.

Spawned arrivals compose with the event-jump fast path for the same reason
retries do: no request finishes inside a jump, so a follow-up turn can only
be scheduled between macro-steps, where it is visible to the jump horizon
via ``next_arrival_time()`` before any iteration is fused past it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.workloads.spec import SLA_CLASS_INTERACTIVE, RequestSpec, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.request import Request


@dataclass(frozen=True)
class InteractionStage:
    """One turn of a session: new prompt tokens appended and output generated.

    ``prompt_tokens`` counts only the tokens this stage *adds* to the
    conversation (the user message or tool result); the request's full
    prompt is the accumulated context of every earlier stage plus these.
    """

    prompt_tokens: int
    output_tokens: int
    max_new_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError("prompt_tokens must be positive")
        if self.output_tokens <= 0:
            raise ValueError("output_tokens must be positive")
        if self.max_new_tokens is not None and self.max_new_tokens < self.output_tokens:
            raise ValueError("max_new_tokens must cover output_tokens")


@dataclass(frozen=True)
class Interaction:
    """A multi-stage session: stage *n*'s completion spawns stage *n + 1*.

    Attributes:
        session_id: unique session identity; request ids derive from it.
        stages: the turns, in order.  Stage 0 is the user prompt, the last
            stage the final answer.
        start_time: when the session's first turn arrives.
        think_time: delay between a turn's completion and the next turn's
            arrival (user typing / tool latency).
        user_id / app_id: optional tenant identity stamped on every turn.
        sla_class: service class stamped on every turn.
    """

    session_id: str
    stages: tuple[InteractionStage, ...]
    start_time: float = 0.0
    think_time: float = 0.0
    user_id: str | None = None
    app_id: str | None = None
    sla_class: str = SLA_CLASS_INTERACTIVE

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ValueError("session_id must be a non-empty string")
        if not self.stages:
            raise ValueError("an interaction needs at least one stage")
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")

    @property
    def num_stages(self) -> int:
        """Total turns the session will attempt."""
        return len(self.stages)

    def context_before(self, stage: int) -> int:
        """Accumulated conversation tokens carried *into* ``stage``.

        The sum of every earlier stage's full context growth (its new prompt
        tokens plus its generated output) — exactly the tokens a resident
        prefix on the serving replica would hold.
        """
        return sum(s.prompt_tokens + s.output_tokens for s in self.stages[:stage])

    def spec(self, stage: int) -> RequestSpec:
        """The request spec of turn ``stage`` (prompt = accumulated context)."""
        turn = self.stages[stage]
        input_length = self.context_before(stage) + turn.prompt_tokens
        cap = turn.max_new_tokens if turn.max_new_tokens is not None else turn.output_tokens
        return RequestSpec(
            request_id=f"{self.session_id}/t{stage}",
            input_length=input_length,
            output_length=turn.output_tokens,
            max_new_tokens=cap,
            sla_class=self.sla_class,
            user_id=self.user_id,
            app_id=self.app_id,
            session_id=self.session_id,
            session_stage=stage,
            session_stages=self.num_stages,
        )

    @property
    def total_output_tokens(self) -> int:
        """Sum of true output lengths across all turns."""
        return sum(s.output_tokens for s in self.stages)


def interactions_workload(name: str, interactions: list[Interaction]) -> Workload:
    """Flatten sessions into a :class:`Workload` (all turns, session order).

    Useful for inspection and for open-loop replay experiments; closed-loop
    runs should drive an :class:`InteractionLoadGenerator` instead so stage
    *n + 1* arrives only after stage *n* completes.
    """
    specs = [it.spec(stage) for it in interactions for stage in range(it.num_stages)]
    return Workload(
        name=name,
        requests=specs,
        description=f"{len(interactions)} multi-turn sessions",
    )


def generate_interactions(
    num_sessions: int,
    seed: int = 0,
    mean_prompt_tokens: float = 128.0,
    mean_output_tokens: float = 96.0,
    turn_alpha: float = 1.8,
    min_turns: int = 1,
    max_turns: int = 8,
    think_time: float = 0.0,
    start_spacing: float = 0.0,
    num_users: int = 0,
    num_apps: int = 0,
    sla_class: str = SLA_CLASS_INTERACTIVE,
) -> list[Interaction]:
    """Synthesize sessions with heavy-tail turn counts, deterministically.

    Turn counts follow a Zipf(``turn_alpha``) draw clipped to
    [``min_turns``, ``max_turns``] — most sessions are short, a heavy tail
    runs long (the agent-pipeline shape).  Per-stage prompt sizes are
    lognormal around ``mean_prompt_tokens``; outputs are exponential around
    ``mean_output_tokens``.  With ``num_users``/``num_apps`` set, sessions
    are stamped with Zipf-skewed tenant identities (every turn of a session
    shares its tenant).  The same ``seed`` always yields the same sessions.
    """
    if num_sessions <= 0:
        raise ValueError("num_sessions must be positive")
    if not 1 <= min_turns <= max_turns:
        raise ValueError("need 1 <= min_turns <= max_turns")
    rng = np.random.default_rng(seed)
    sessions: list[Interaction] = []
    for index in range(num_sessions):
        turns = int(np.clip(rng.zipf(turn_alpha), min_turns, max_turns))
        stages = []
        for _ in range(turns):
            prompt = max(1, int(rng.lognormal(np.log(mean_prompt_tokens), 0.5)))
            output = max(1, int(rng.exponential(mean_output_tokens)))
            stages.append(InteractionStage(prompt_tokens=prompt, output_tokens=output))
        user = app = None
        if num_users > 0:
            user = f"u{int(np.clip(rng.zipf(1.5), 1, num_users)) - 1}"
        if num_apps > 0:
            app = f"a{int(np.clip(rng.zipf(1.5), 1, num_apps)) - 1}"
        sessions.append(
            Interaction(
                session_id=f"s{index:04d}",
                stages=tuple(stages),
                start_time=index * start_spacing,
                think_time=think_time,
                user_id=user,
                app_id=app,
                sla_class=sla_class,
            )
        )
    return sessions


@dataclass(order=True)
class _TurnArrival:
    """One scheduled turn arrival (heap-ordered by time, then sequence)."""

    time: float
    sequence: int
    spec: RequestSpec = field(compare=False)


class InteractionLoadGenerator:
    """Closed-loop load generator over a set of :class:`Interaction` sessions.

    Implements the :class:`~repro.serving.server.LoadGenerator` protocol plus
    the request-aware completion hook ``on_request_completed`` the simulators
    duck-type: completing turn *n* of a session schedules turn *n + 1* at
    completion time plus the session's think time.  A turn that is throttled
    or rejected releases its slot through the identity-free
    ``on_request_finished`` only, so the session spawns no further turns —
    it is *abandoned*, which per-session metrics account.
    """

    def __init__(self, interactions: list[Interaction]) -> None:
        if not interactions:
            raise ValueError("need at least one interaction")
        self._interactions: dict[str, Interaction] = {}
        for interaction in interactions:
            if interaction.session_id in self._interactions:
                raise ValueError(f"duplicate session id {interaction.session_id!r}")
            self._interactions[interaction.session_id] = interaction
        self._pending: list[_TurnArrival] = []
        self._sequence = 0
        self._in_flight = 0
        #: session_id -> turns completed so far (exposed for tests/metrics).
        self.turns_completed: dict[str, int] = {
            sid: 0 for sid in self._interactions
        }

    @property
    def num_sessions(self) -> int:
        """Number of sessions this generator drives."""
        return len(self._interactions)

    @property
    def in_flight(self) -> int:
        """Turns currently submitted but not yet finished."""
        return self._in_flight

    def _push(self, time: float, spec: RequestSpec) -> None:
        self._sequence += 1
        heapq.heappush(self._pending, _TurnArrival(time=time, sequence=self._sequence, spec=spec))

    def start(self, time: float = 0.0) -> None:
        """Schedule every session's first turn."""
        for interaction in self._interactions.values():
            self._push(max(time, interaction.start_time), interaction.spec(0))

    def on_request_finished(self, time: float) -> None:
        """Identity-free slot release (completions, throttles, rejections)."""
        self._in_flight = max(self._in_flight - 1, 0)

    def on_request_completed(self, request: Request, time: float) -> None:
        """Record a finished turn and spawn the session's next stage.

        Called by the simulators alongside ``on_request_finished`` with the
        finished :class:`~repro.engine.request.Request`, whose spec carries
        the session identity the protocol-level hook lacks.
        """
        spec = request.spec
        if spec.session_id is None or not request.is_finished:
            return
        interaction = self._interactions.get(spec.session_id)
        if interaction is None or spec.session_stage is None:
            return
        done = spec.session_stage + 1
        if done > self.turns_completed[spec.session_id]:
            self.turns_completed[spec.session_id] = done
        if done < interaction.num_stages:
            self._push(time + interaction.think_time, interaction.spec(done))

    def pop_arrivals(self, now: float) -> list[RequestSpec]:
        """Specs whose scheduled arrival time is at or before ``now``."""
        ready: list[RequestSpec] = []
        while self._pending and self._pending[0].time <= now:
            arrival = heapq.heappop(self._pending)
            ready.append(arrival.spec.with_arrival(arrival.time))
            self._in_flight += 1
        return ready

    def next_arrival_time(self) -> float | None:
        """Time of the earliest scheduled future turn, if any."""
        return self._pending[0].time if self._pending else None

    @property
    def drained(self) -> bool:
        """Whether no further turns can ever arrive.

        Follow-up turns spawn only from in-flight completions, so an empty
        heap with nothing in flight is terminal.
        """
        return not self._pending and self._in_flight == 0

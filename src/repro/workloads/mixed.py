"""Composite workloads with shifting length distributions (Figure 8).

The parameter-sweep experiment of the paper concatenates ShareGPT-o1 followed
by Distribution-1, -2 and -3 "to generate a workload with varying output
length distributions".  :func:`generate_varying_load` builds exactly that
sequence; :func:`generate_phase_workload` is the general form.
"""

from __future__ import annotations

from typing import Sequence

from repro.workloads.distributions import (
    DISTRIBUTION_1,
    DISTRIBUTION_2,
    DISTRIBUTION_3,
    generate_uniform_workload,
)
from repro.workloads.sharegpt import generate_sharegpt_o1_workload
from repro.workloads.spec import Workload, concatenate


def generate_phase_workload(
    name: str,
    phases: Sequence[Workload],
) -> Workload:
    """Concatenate workload *phases* into one long varying-distribution run."""
    if not phases:
        raise ValueError("at least one phase is required")
    return concatenate(name, list(phases))


def generate_varying_load(
    requests_per_phase: int,
    seed: int = 0,
) -> Workload:
    """The Figure-8 workload: ShareGPT-o1 ⧺ Distribution-1 ⧺ -2 ⧺ -3."""
    if requests_per_phase <= 0:
        raise ValueError("requests_per_phase must be positive")
    phases = [
        generate_sharegpt_o1_workload(requests_per_phase, seed=seed),
        generate_uniform_workload(DISTRIBUTION_1, requests_per_phase, seed=seed + 1),
        generate_uniform_workload(DISTRIBUTION_2, requests_per_phase, seed=seed + 2),
        generate_uniform_workload(DISTRIBUTION_3, requests_per_phase, seed=seed + 3),
    ]
    return generate_phase_workload("VaryingLoad", phases)

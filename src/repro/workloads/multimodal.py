"""TextVQA-style multimodal workload (Table 2).

The paper evaluates Qwen-VL-Chat and LLaVA-1.5 on the TextVQA validation set:
5,000 questions over 3,166 images.  VQA prompts are short questions plus an
image; answers are short.  The KV-footprint structure is therefore

* a fixed image-token prefix per request (256 tokens for Qwen-VL, 576 for
  LLaVA-1.5), plus
* a short text question (tens of tokens), plus
* a short answer (a few tokens up to a short sentence).

The image corpus itself is not needed: the engine only charges the vision
encoder's latency and the image tokens' KV space.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.models import ModelConfig
from repro.workloads.spec import RequestSpec, Workload


def generate_textvqa_workload(
    model: ModelConfig,
    num_requests: int = 5000,
    seed: int = 0,
    max_new_tokens: int = 256,
) -> Workload:
    """VQA-style workload with the image-token prefix of ``model``.

    Args:
        model: the multimodal model being served; supplies the number of image
            tokens prepended to every prompt.
        num_requests: number of questions (the TextVQA validation set has 5,000).
        seed: RNG seed.
        max_new_tokens: generation cap for the short answers.
    """
    if not model.is_multimodal:
        raise ValueError(f"model {model.name} has no image-token prefix")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    # Question lengths: short, 6-40 tokens.  Answer lengths: geometric-ish,
    # mostly a handful of tokens with an occasional sentence.
    questions = rng.integers(6, 41, size=num_requests)
    answers = np.clip(rng.geometric(p=0.12, size=num_requests) + 2, 3, max_new_tokens)
    requests = [
        RequestSpec(
            request_id=f"textvqa-{i}",
            input_length=int(questions[i]),
            output_length=int(answers[i]),
            max_new_tokens=max_new_tokens,
            image_tokens=model.vision_prefix_tokens,
        )
        for i in range(num_requests)
    ]
    return Workload(
        name=f"TextVQA-{model.name}",
        requests=requests,
        description=f"TextVQA-style VQA questions with {model.vision_prefix_tokens} image tokens per request",
    )

"""ShareGPT-style workloads, including the paper's ShareGPT-o1 variant.

The paper uses two ShareGPT-derived datasets:

* plain **ShareGPT** conversations (Figure 9 end-to-end comparison), with
  ``max_new_tokens = 2048`` and relatively short outputs, and
* **ShareGPT-o1** (Figure 7), built by replaying ShareGPT questions through the
  OpenAI o1-preview API: chain-of-thought reasoning makes the outputs much
  longer than the inputs (the paper reports average input 381, average output
  2160 tokens), i.e. a decode-heavy workload.

The original text corpora are not redistributable here, so both are modelled
as log-normal length distributions whose means/tails match the published
statistics.  The scheduler consumes only the lengths, so this preserves the
behaviour the experiments depend on.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.spec import SLA_CLASS_INTERACTIVE, RequestSpec, Workload


def _lognormal_lengths(
    rng: np.random.Generator,
    mean_target: float,
    sigma: float,
    size: int,
    low: int,
    high: int,
) -> np.ndarray:
    """Log-normal samples clipped to [low, high] with approximately the target mean."""
    mu = np.log(mean_target) - sigma ** 2 / 2.0
    samples = rng.lognormal(mean=mu, sigma=sigma, size=size)
    return np.clip(np.round(samples), low, high).astype(int)


def generate_sharegpt_workload(
    num_requests: int,
    seed: int = 0,
    max_new_tokens: int = 2048,
    sla_class: str = SLA_CLASS_INTERACTIVE,
) -> Workload:
    """Plain ShareGPT-style conversation workload.

    Inputs average a few hundred tokens; outputs average ~250 tokens with a
    long tail, capped at ``max_new_tokens`` (2048 in the paper's Figure 9).
    Conversations are end-user traffic, so requests are stamped
    ``interactive`` unless a different ``sla_class`` is given (mixed-class
    traces can also be produced post hoc with
    :func:`repro.workloads.spec.assign_sla_classes`).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    inputs = _lognormal_lengths(rng, mean_target=300.0, sigma=1.0, size=num_requests, low=8, high=4096)
    outputs = _lognormal_lengths(rng, mean_target=250.0, sigma=1.1, size=num_requests, low=4, high=max_new_tokens)
    requests = [
        RequestSpec(
            request_id=f"sharegpt-{i}",
            input_length=int(inputs[i]),
            output_length=int(outputs[i]),
            max_new_tokens=max_new_tokens,
            sla_class=sla_class,
        )
        for i in range(num_requests)
    ]
    return Workload(
        name="ShareGPT",
        requests=requests,
        description="ShareGPT-style conversations, log-normal lengths, cap 2048",
    )


def generate_sharegpt_o1_workload(
    num_requests: int,
    seed: int = 0,
    max_new_tokens: int = 8192,
    sla_class: str = SLA_CLASS_INTERACTIVE,
) -> Workload:
    """ShareGPT-o1 style decode-heavy workload (chain-of-thought outputs).

    Matches the paper's reported averages: ~381 input tokens and ~2160 output
    tokens per request, with a heavy output tail from long reasoning chains.
    Stamped ``interactive`` by default, like
    :func:`generate_sharegpt_workload`.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    inputs = _lognormal_lengths(rng, mean_target=381.0, sigma=0.9, size=num_requests, low=8, high=4096)
    outputs = _lognormal_lengths(rng, mean_target=2160.0, sigma=0.7, size=num_requests, low=64, high=max_new_tokens)
    requests = [
        RequestSpec(
            request_id=f"sharegpt-o1-{i}",
            input_length=int(inputs[i]),
            output_length=int(outputs[i]),
            max_new_tokens=max_new_tokens,
            sla_class=sla_class,
        )
        for i in range(num_requests)
    ]
    return Workload(
        name="ShareGPT-o1",
        requests=requests,
        description="ShareGPT questions with o1-style chain-of-thought outputs (decode-heavy)",
    )

"""Request and workload containers shared by all trace generators.

A :class:`RequestSpec` is the scheduler-visible description of one request:
its prompt length, the output length the model *will* produce (hidden from the
scheduler — only the engine consults it to know when the EOS token fires), and
the ``max_new_tokens`` cap the client declared.

A :class:`Workload` is an ordered list of specs plus metadata about how it was
generated.  Arrival times are optional: closed-loop client simulations assign
arrival dynamically, while open-loop (trace replay) runs use the recorded
``arrival_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import mean
from typing import Iterator, Mapping, Sequence

import numpy as np

#: Default service class: latency-sensitive end-user traffic.
SLA_CLASS_INTERACTIVE = "interactive"

#: Throughput-oriented service class: background / batch traffic that
#: tolerates looser latency bounds (and is the first to be shed or deferred
#: by class-aware routers under pressure).
SLA_CLASS_BATCH = "batch"


@dataclass(frozen=True)
class RequestSpec:
    """One request of a workload.

    Attributes:
        request_id: unique identifier within the workload.
        input_length: number of prompt tokens.
        output_length: number of tokens the model will actually generate
            (unknown to the scheduler; the engine stops the request after this
            many tokens, emulating the EOS token).
        max_new_tokens: client-declared generation cap.  The true output
            length never exceeds it.
        arrival_time: optional arrival timestamp (seconds) for open-loop replay.
        image_tokens: extra prompt tokens contributed by images (multimodal
            workloads); 0 for text-only requests.
        sla_class: service class the request belongs to (e.g.
            :data:`SLA_CLASS_INTERACTIVE` vs :data:`SLA_CLASS_BATCH`).
            Routers may place, shed, or defer by class, and
            :class:`~repro.serving.sla.SLASpec` may bind per-class latency
            bounds; fleet metrics report goodput per class.
        user_id: the end user the request belongs to, or ``None`` for
            tenant-less traffic.  Fair schedulers
            (:mod:`repro.schedulers.fair`) account service per user, the
            overload throttle (:mod:`repro.serving.throttle`) rate-limits per
            user, and fairness metrics (:mod:`repro.metrics.fairness`) slice
            per user.  Stamp populations with
            :func:`repro.workloads.tenants.assign_tenants`.
        app_id: the application the request arrived through (one app serves
            many users; one user may use several apps), or ``None``.
            Throttling and fairness metrics can also slice per app.
        session_id: the multi-turn session the request belongs to, or ``None``
            for single-shot traffic.  Session-affine routers
            (:mod:`repro.serving.routing`) pin a session's turns to the
            replica holding its KV prefix, and the per-replica
            :class:`~repro.memory.prefix_cache.PrefixCache` keys resident
            prefixes by session.  Stamped by
            :mod:`repro.workloads.interactions`.
        session_stage: 0-based turn index within the session (``None`` when
            ``session_id`` is ``None``).  Stage *n + 1*'s prompt extends the
            accumulated context of stage *n*.
        session_stages: total turns the session will attempt, used to tell
            the final stage (whose context is never reused) from
            intermediate ones.
    """

    request_id: str
    input_length: int
    output_length: int
    max_new_tokens: int
    arrival_time: float | None = None
    image_tokens: int = 0
    sla_class: str = SLA_CLASS_INTERACTIVE
    user_id: str | None = None
    app_id: str | None = None
    session_id: str | None = None
    session_stage: int | None = None
    session_stages: int | None = None

    def __post_init__(self) -> None:
        if self.input_length < 0:
            raise ValueError("input_length must be non-negative")
        if self.output_length <= 0:
            raise ValueError("output_length must be positive")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.output_length > self.max_new_tokens:
            raise ValueError(
                f"output_length ({self.output_length}) exceeds "
                f"max_new_tokens ({self.max_new_tokens})"
            )
        if self.image_tokens < 0:
            raise ValueError("image_tokens must be non-negative")
        if not self.sla_class:
            raise ValueError("sla_class must be a non-empty string")
        if self.user_id is not None and not self.user_id:
            raise ValueError("user_id must be None or a non-empty string")
        if self.app_id is not None and not self.app_id:
            raise ValueError("app_id must be None or a non-empty string")
        if self.session_id is not None and not self.session_id:
            raise ValueError("session_id must be None or a non-empty string")
        if (self.session_stage is None) != (self.session_id is None):
            raise ValueError("session_stage and session_id must be set together")
        if self.session_stage is not None and self.session_stage < 0:
            raise ValueError("session_stage must be non-negative")
        if self.session_stages is not None:
            if self.session_id is None:
                raise ValueError("session_stages requires session_id")
            if self.session_stage is not None and self.session_stage >= self.session_stages:
                raise ValueError("session_stage must be below session_stages")

    @property
    def prompt_tokens(self) -> int:
        """Total prompt tokens including any image prefix."""
        return self.input_length + self.image_tokens

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens — the request's final KV footprint."""
        return self.prompt_tokens + self.output_length

    @property
    def worst_case_tokens(self) -> int:
        """Prompt plus ``max_new_tokens`` — what a conservative scheduler reserves."""
        return self.prompt_tokens + self.max_new_tokens

    def with_arrival(self, arrival_time: float) -> "RequestSpec":
        """Copy of this spec with an arrival timestamp."""
        return replace(self, arrival_time=arrival_time)

    def with_sla_class(self, sla_class: str) -> "RequestSpec":
        """Copy of this spec stamped with a service class."""
        return replace(self, sla_class=sla_class)

    def with_tenant(self, user_id: str | None, app_id: str | None = None) -> "RequestSpec":
        """Copy of this spec stamped with tenant identities."""
        return replace(self, user_id=user_id, app_id=app_id)

    def with_session(
        self, session_id: str, stage: int, stages: int | None = None
    ) -> "RequestSpec":
        """Copy of this spec stamped as turn ``stage`` of a multi-turn session."""
        return replace(
            self, session_id=session_id, session_stage=stage, session_stages=stages
        )

    @property
    def is_final_stage(self) -> bool:
        """Whether this is the last turn of its session (``False`` if unknown)."""
        return (
            self.session_stage is not None
            and self.session_stages is not None
            and self.session_stage == self.session_stages - 1
        )


@dataclass
class Workload:
    """An ordered collection of request specs."""

    name: str
    requests: list[RequestSpec] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for spec in self.requests:
            if spec.request_id in seen:
                raise ValueError(f"duplicate request id {spec.request_id!r}")
            seen.add(spec.request_id)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RequestSpec]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> RequestSpec:
        return self.requests[index]

    @property
    def mean_input_length(self) -> float:
        """Mean prompt length (excluding image tokens)."""
        if not self.requests:
            return 0.0
        return mean(r.input_length for r in self.requests)

    @property
    def mean_output_length(self) -> float:
        """Mean true output length."""
        if not self.requests:
            return 0.0
        return mean(r.output_length for r in self.requests)

    @property
    def output_lengths(self) -> list[int]:
        """True output lengths in order, e.g. for distribution analysis."""
        return [r.output_length for r in self.requests]

    @property
    def total_output_tokens(self) -> int:
        """Sum of all true output lengths."""
        return sum(r.output_length for r in self.requests)

    @property
    def is_decode_heavy(self) -> bool:
        """Whether outputs are longer than inputs on average."""
        return self.mean_output_length > self.mean_input_length

    @property
    def sla_classes(self) -> list[str]:
        """Distinct service classes present, sorted for determinism."""
        return sorted({r.sla_class for r in self.requests})

    def class_counts(self) -> dict[str, int]:
        """Requests per service class, keyed in sorted class order."""
        counts: dict[str, int] = {}
        for name in self.sla_classes:
            counts[name] = sum(1 for r in self.requests if r.sla_class == name)
        return counts

    @property
    def user_ids(self) -> list[str]:
        """Distinct user identities present, sorted (tenant-less specs excluded)."""
        return sorted({r.user_id for r in self.requests if r.user_id is not None})

    @property
    def app_ids(self) -> list[str]:
        """Distinct application identities present, sorted."""
        return sorted({r.app_id for r in self.requests if r.app_id is not None})

    @property
    def has_tenants(self) -> bool:
        """Whether any request carries a user or application identity."""
        return any(r.user_id is not None or r.app_id is not None for r in self.requests)

    @property
    def session_ids(self) -> list[str]:
        """Distinct session identities present, sorted (sessionless specs excluded)."""
        return sorted({r.session_id for r in self.requests if r.session_id is not None})

    @property
    def has_sessions(self) -> bool:
        """Whether any request belongs to a multi-turn session."""
        return any(r.session_id is not None for r in self.requests)

    def head(self, count: int) -> "Workload":
        """A workload containing the first ``count`` requests."""
        return Workload(
            name=f"{self.name}[:{count}]",
            requests=self.requests[:count],
            description=self.description,
        )

    def renumbered(self, prefix: str) -> "Workload":
        """Copy with request ids rewritten as ``{prefix}-{index}``.

        Useful when concatenating workloads whose ids would collide.
        """
        renamed = [
            replace(spec, request_id=f"{prefix}-{i}")
            for i, spec in enumerate(self.requests)
        ]
        return Workload(name=self.name, requests=renamed, description=self.description)


def scale_workload(workload: Workload, factor: float, min_tokens: int = 1) -> Workload:
    """Scale every length in a workload by ``factor`` (rounding, with a floor).

    Scheduling behaviour depends on the *ratio* between request footprints and
    the KV-cache capacity, not on absolute token counts.  Scaling a workload
    down together with a proportional ``token_capacity_override`` keeps the
    experiment's shape while making simulations orders of magnitude cheaper;
    the scaled benchmarks rely on this.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    scaled: list[RequestSpec] = []
    for spec in workload.requests:
        output = max(int(round(spec.output_length * factor)), min_tokens)
        cap = max(int(round(spec.max_new_tokens * factor)), output)
        scaled.append(
            replace(
                spec,
                input_length=max(int(round(spec.input_length * factor)), min_tokens),
                output_length=output,
                max_new_tokens=cap,
                image_tokens=int(round(spec.image_tokens * factor)),
            )
        )
    return Workload(
        name=workload.name,
        requests=scaled,
        description=f"{workload.description} (scaled x{factor:g})",
    )


def assign_sla_classes(
    workload: Workload,
    fractions: Mapping[str, float],
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Stamp each request with a service class drawn from ``fractions``.

    Mixed interactive/batch traces are the norm in production (the paper's
    API-trace observation), so class labels are assigned i.i.d. per request
    rather than in blocks — bursts then contain both classes, which is what
    makes class-aware routing interesting.

    Args:
        workload: the requests to stamp, in submission order.
        fractions: class name to probability; must sum to 1 (within 1e-9).
        seed: seed for a fresh generator when ``rng`` is not given.
        rng: an explicit :class:`numpy.random.Generator` to draw from; takes
            precedence over ``seed``, letting experiments thread one seeded
            generator through every stochastic stage (class stamping, arrival
            stamping, workload synthesis) for end-to-end reproducibility.
    """
    if not fractions:
        raise ValueError("fractions must name at least one class")
    names = sorted(fractions)
    probabilities = np.array([fractions[name] for name in names], dtype=float)
    if np.any(probabilities < 0) or abs(probabilities.sum() - 1.0) > 1e-9:
        raise ValueError("fractions must be non-negative and sum to 1")
    generator = rng if rng is not None else np.random.default_rng(seed)
    drawn = generator.choice(len(names), size=len(workload), p=probabilities)
    requests = [
        replace(spec, sla_class=names[index])
        for spec, index in zip(workload.requests, drawn)
    ]
    mix = ", ".join(f"{name} {fractions[name]:.0%}" for name in names)
    return Workload(
        name=workload.name,
        requests=requests,
        description=f"{workload.description} (classes: {mix})",
    )


def concatenate(name: str, workloads: Sequence[Workload]) -> Workload:
    """Concatenate several workloads into one, renumbering request ids."""
    requests: list[RequestSpec] = []
    for index, workload in enumerate(workloads):
        renamed = workload.renumbered(f"w{index}")
        requests.extend(renamed.requests)
    description = " + ".join(w.name for w in workloads)
    return Workload(name=name, requests=requests, description=description)


def interleave(name: str, workloads: Sequence[Workload]) -> Workload:
    """Round-robin interleave several workloads into one."""
    iterators: list[Iterator[RequestSpec]] = [iter(w.renumbered(f"w{i}")) for i, w in enumerate(workloads)]
    requests: list[RequestSpec] = []
    live: list[Iterator[RequestSpec]] = list(iterators)
    while live:
        still_live: list[Iterator[RequestSpec]] = []
        for iterator in live:
            try:
                requests.append(next(iterator))
            except StopIteration:
                continue
            still_live.append(iterator)
        live = still_live
    description = " | ".join(w.name for w in workloads)
    return Workload(name=name, requests=requests, description=description)

"""Tenant populations: *who* is asking, with a heavy tail of request share.

The north-star deployment serves millions of users through a handful of
applications, and production traffic is never uniform across them: a small
number of tenants (scripted integrations, runaway agents, scraping jobs)
submit a disproportionate share of all requests.  Fairness work only becomes
interesting under exactly that skew — a fair scheduler must keep the heavy
tail from starving everyone else, and a throttle must cut it off at the door.

:func:`generate_tenant_population` builds a deterministic population whose
request shares follow a Zipf-style power law, optionally with a few explicit
*abusive* users that together carry a configurable fraction of all traffic.
:func:`assign_tenants` then stamps an existing workload with user/application
identities drawn i.i.d. from those shares, following the same seed/``rng``
idiom as :func:`repro.workloads.spec.assign_sla_classes` so one seeded
generator can thread through every stochastic stage of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.workloads.spec import Workload


@dataclass(frozen=True)
class TenantProfile:
    """One user of a tenant population, bound to an application."""

    user_id: str
    app_id: str
    #: fraction of all requests this user submits (population shares sum to 1).
    share: float

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ValueError("user_id must be non-empty")
        if not self.app_id:
            raise ValueError("app_id must be non-empty")
        if self.share < 0:
            raise ValueError("share must be non-negative")


@dataclass(frozen=True)
class TenantPopulation:
    """A fixed set of users (each bound to an app) with request shares.

    Shares sum to 1 and define the probability that any given request of a
    stamped workload belongs to each user (see :func:`assign_tenants`).
    """

    tenants: tuple[TenantProfile, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a tenant population needs at least one tenant")
        seen: set[str] = set()
        for tenant in self.tenants:
            if tenant.user_id in seen:
                raise ValueError(f"duplicate user id {tenant.user_id!r}")
            seen.add(tenant.user_id)
        total = sum(t.share for t in self.tenants)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"tenant shares must sum to 1 (got {total})")

    @property
    def num_users(self) -> int:
        """Number of distinct users."""
        return len(self.tenants)

    @property
    def user_ids(self) -> list[str]:
        """User identities in population order."""
        return [t.user_id for t in self.tenants]

    @property
    def app_ids(self) -> list[str]:
        """Distinct application identities, sorted."""
        return sorted({t.app_id for t in self.tenants})

    @property
    def shares(self) -> np.ndarray:
        """Request share per user, in population order (sums to 1)."""
        return np.array([t.share for t in self.tenants], dtype=float)

    def share_of(self, user_id: str) -> float:
        """Request share of one user.

        Raises:
            KeyError: if the user is not part of the population.
        """
        for tenant in self.tenants:
            if tenant.user_id == user_id:
                return tenant.share
        raise KeyError(f"unknown user {user_id!r}")

    def describe(self) -> str:
        """One-line population summary for logs and tables."""
        return (
            self.description
            or f"{self.num_users} users across {len(self.app_ids)} apps"
        )


def generate_tenant_population(
    num_users: int,
    num_apps: int = 1,
    zipf_alpha: float = 1.1,
    abusive_users: int = 0,
    abusive_share: float = 0.0,
) -> TenantPopulation:
    """Build a heavy-tail tenant population deterministically.

    The first ``abusive_users`` users split ``abusive_share`` of all traffic
    evenly among themselves; the remaining users split the rest following a
    Zipf power law (the ``k``-th of them carries weight ``k**-zipf_alpha``).
    With ``abusive_users=0`` the whole population is the plain Zipf tail.
    Users are named ``user-0000``... and assigned to apps ``app-0``... round
    robin, so every app serves both heavy and light users.

    Args:
        num_users: total population size.
        num_apps: number of applications users are spread over.
        zipf_alpha: power-law exponent of the non-abusive tail; larger means
            steeper skew.  Must be positive.
        abusive_users: how many users form the explicit abusive head.
        abusive_share: the fraction of all requests the abusive head submits
            together; must be in ``[0, 1)`` and 0 iff ``abusive_users`` is 0.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    if not 0 < num_apps <= num_users:
        raise ValueError("num_apps must be in [1, num_users]")
    if zipf_alpha <= 0:
        raise ValueError("zipf_alpha must be positive")
    if not 0 <= abusive_users < num_users:
        raise ValueError("abusive_users must be in [0, num_users)")
    if not 0.0 <= abusive_share < 1.0:
        raise ValueError("abusive_share must be in [0, 1)")
    if (abusive_users == 0) != (abusive_share == 0.0):
        raise ValueError("abusive_users and abusive_share must be set together")
    num_tail = num_users - abusive_users
    tail_weights = np.arange(1, num_tail + 1, dtype=float) ** -zipf_alpha
    tail_shares = tail_weights / tail_weights.sum() * (1.0 - abusive_share)
    shares = np.concatenate(
        (np.full(abusive_users, abusive_share / max(abusive_users, 1)), tail_shares)
    )
    width = max(4, len(str(num_users - 1)))
    tenants = tuple(
        TenantProfile(
            user_id=f"user-{index:0{width}d}",
            app_id=f"app-{index % num_apps}",
            share=float(share),
        )
        for index, share in enumerate(shares)
    )
    head = (
        f"{abusive_users} abusive users carrying {abusive_share:.0%}, "
        if abusive_users
        else ""
    )
    return TenantPopulation(
        tenants=tenants,
        description=(
            f"{num_users} users / {num_apps} apps ({head}zipf alpha={zipf_alpha:g})"
        ),
    )


def assign_tenants(
    workload: Workload,
    population: TenantPopulation,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Workload:
    """Stamp each request with a user (and its app) drawn from the population.

    Draws are i.i.d. per request from the population's shares, so bursts mix
    heavy and light tenants — which is exactly what makes fair admission
    interesting.  Identities are stamped on top of whatever SLA classes or
    arrival times the workload already carries.

    Args:
        workload: the requests to stamp, in submission order.
        population: who submits, with what probability.
        seed: seed for a fresh generator when ``rng`` is not given.
        rng: an explicit :class:`numpy.random.Generator` to draw from; takes
            precedence over ``seed``, letting experiments thread one seeded
            generator through every stochastic stage for end-to-end
            reproducibility.
    """
    generator = rng if rng is not None else np.random.default_rng(seed)
    drawn = generator.choice(population.num_users, size=len(workload), p=population.shares)
    requests = [
        replace(
            spec,
            user_id=population.tenants[index].user_id,
            app_id=population.tenants[index].app_id,
        )
        for spec, index in zip(workload.requests, drawn)
    ]
    return Workload(
        name=workload.name,
        requests=requests,
        description=f"{workload.description} (tenants: {population.describe()})",
    )

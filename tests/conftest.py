"""Shared fixtures for the test suite.

Most tests run against a deliberately tiny "platform" (a few thousand KV token
slots) and short synthetic workloads so the whole suite stays fast while still
exercising admission, eviction, and SLA accounting end to end.
"""

from __future__ import annotations

import pytest

from repro.hardware.platform import Platform, paper_platform
from repro.workloads.distributions import UniformLengthSpec, generate_uniform_workload
from repro.workloads.spec import RequestSpec, Workload


@pytest.fixture(scope="session")
def platform_7b() -> Platform:
    """The paper's Llama-2-7B on A100-80G platform."""
    return paper_platform("7b-a100")


@pytest.fixture(scope="session")
def platform_70b() -> Platform:
    """The paper's Llama-2-70B on 4x A100-80G platform."""
    return paper_platform("70b-a100x4")


#: Small token capacity used with ``token_capacity_override`` in engine tests.
TINY_CAPACITY = 2048


@pytest.fixture()
def tiny_capacity() -> int:
    """Token-capacity override small enough to force contention in tests."""
    return TINY_CAPACITY


def make_spec(
    request_id: str = "r0",
    input_length: int = 32,
    output_length: int = 16,
    max_new_tokens: int = 64,
    image_tokens: int = 0,
) -> RequestSpec:
    """Convenience RequestSpec builder for tests."""
    return RequestSpec(
        request_id=request_id,
        input_length=input_length,
        output_length=output_length,
        max_new_tokens=max_new_tokens,
        image_tokens=image_tokens,
    )


def make_workload(
    num_requests: int = 20,
    input_length: int = 32,
    output_length: int = 16,
    max_new_tokens: int = 64,
    name: str = "test-workload",
) -> Workload:
    """Uniform workload of identical requests."""
    specs = [
        make_spec(
            request_id=f"{name}-{i}",
            input_length=input_length,
            output_length=output_length,
            max_new_tokens=max_new_tokens,
        )
        for i in range(num_requests)
    ]
    return Workload(name=name, requests=specs)


@pytest.fixture()
def small_decode_heavy_workload() -> Workload:
    """A small decode-heavy workload (outputs much longer than inputs)."""
    spec = UniformLengthSpec("tiny-decode-heavy", 4, 64, 128, 256)
    return generate_uniform_workload(spec, 40, seed=7)


@pytest.fixture()
def small_prefill_heavy_workload() -> Workload:
    """A small prefill-heavy workload (inputs much longer than outputs)."""
    spec = UniformLengthSpec("tiny-prefill-heavy", 128, 256, 4, 64)
    return generate_uniform_workload(spec, 40, seed=11)


@pytest.fixture()
def uniform_workload() -> Workload:
    """Workload of identical small requests."""
    return make_workload()

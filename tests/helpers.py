"""Shared invariant harness for the test suite.

Three contracts recur across the serving tests — conservation (nothing
vanishes), fingerprint neutrality (a feature left off is byte-invisible),
and fast-path/reference identity (the event-jump loop consumes the same RNG
stream and produces bit-identical results).  Each used to be hand-rolled per
test module; this module is the single implementation they all share.

Every helper accepts results, zero-argument callables producing results, or
precomputed digest strings, so call sites can pass whatever they already
have without re-running simulations.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.analysis.perf import cluster_fingerprint, run_fingerprint
from repro.serving.results import ClusterResult, RunResult

#: Anything the helpers can reduce to a fingerprint digest.
Fingerprintable = Union[RunResult, ClusterResult, str, Callable[[], "Fingerprintable"]]


def fingerprint_of(source: Fingerprintable) -> str:
    """Reduce a result, callable, or digest string to a fingerprint digest."""
    if callable(source):
        source = source()
    if isinstance(source, str):
        return source
    if isinstance(source, ClusterResult):
        return cluster_fingerprint(source)
    return run_fingerprint(source)


def assert_conservation(result, submitted: int | None = None) -> None:
    """Routed + rejected must equal submitted — no request ever vanishes.

    Works for both :class:`~repro.serving.results.RunResult` (served ==
    ``len(requests)``) and ``ClusterResult`` (served == ``routed_requests``,
    which counts each request once however many retries or migrations it
    took).  When ``submitted`` is omitted it is derived from the distinct
    request ids the result knows about, which stays correct when retried
    copies of one request appear on several replicas.
    """
    rejected = len(result.rejected)
    if isinstance(result, ClusterResult):
        served = result.routed_requests
    else:
        served = len(result.requests)
    if submitted is None:
        ids = {r.request_id for r in result.requests}
        ids |= {r.request_id for r in result.rejected}
        submitted = len(ids)
    assert served + rejected == submitted, (
        f"conservation violated: {served} served + {rejected} rejected "
        f"!= {submitted} submitted"
    )


def assert_fingerprint_neutral(
    scenario: Fingerprintable, feature_off: Fingerprintable, label: str = "feature"
) -> None:
    """The scenario must hash byte-identically with the feature off.

    ``scenario`` is the run with the subsystem under test present (or a
    committed pre-feature digest to compare against); ``feature_off`` is the
    same recipe without it.  Any divergence means the subsystem leaked into
    a pipeline it was supposed to leave untouched.
    """
    on_digest = fingerprint_of(scenario)
    off_digest = fingerprint_of(feature_off)
    assert on_digest == off_digest, (
        f"{label} is not byte-neutral: {on_digest[:16]}... != {off_digest[:16]}..."
    )


def assert_rng_stream_identity(fast: Fingerprintable, reference: Fingerprintable) -> None:
    """The fast path must be bit-identical to the reference loop.

    Identical fingerprints imply the event-jump loop consumed every RNG
    stream (admission sampling, retry jitter, fault hashing) exactly as the
    one-iteration-at-a-time reference did — a jump that skipped or reordered
    a single draw would cascade into visibly different metrics.
    """
    fast_digest = fingerprint_of(fast)
    reference_digest = fingerprint_of(reference)
    assert fast_digest == reference_digest, (
        f"fast path diverged from reference loop: {fast_digest[:16]}... != "
        f"{reference_digest[:16]}... (results or RNG stream differ)"
    )

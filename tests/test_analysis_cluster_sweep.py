"""Tests for the cluster experiment drivers (router and autoscale sweeps)."""

from __future__ import annotations

import pytest

from repro.analysis.autoscale_sweep import (
    AutoscaleExperimentConfig,
    autoscale_comparison_sweep,
    autoscale_table,
)
from repro.analysis.cluster_sweep import (
    ClusterExperimentConfig,
    fleet_table,
    router_comparison_sweep,
    run_cluster_experiment,
)
from repro.analysis.tables import render_table
from repro.serving.results import ClusterResult
from repro.serving.sla import SLASpec
from repro.workloads.arrivals import assign_poisson_arrivals
from tests.conftest import make_workload

SLA = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)


@pytest.fixture()
def config(platform_7b) -> ClusterExperimentConfig:
    return ClusterExperimentConfig(
        platform=platform_7b,
        num_replicas=2,
        scheduler_name="conservative",
        token_capacity_override=2048,
    )


@pytest.fixture()
def stamped():
    return assign_poisson_arrivals(make_workload(num_requests=16), request_rate=20.0, seed=5)


class TestClusterExperimentConfig:
    def test_config_round_trips_into_simulator(self, platform_7b):
        config = ClusterExperimentConfig(
            platform=platform_7b,
            num_replicas=3,
            scheduler_name="aggressive",
            scheduler_kwargs={"watermark": 0.9},
            block_size=4,
            chunked_prefill_tokens=256,
            token_capacity_override=1024,
            reject_when_saturated=True,
        )
        simulator = config.build_simulator("least-kv-load")
        assert simulator.num_replicas == 3
        assert simulator.router.name == "least-kv-load"
        assert simulator.reject_when_saturated is True
        for replica in simulator.replicas:
            assert replica.engine.token_capacity == 1024
            assert replica.engine.chunked_prefill_tokens == 256
            assert replica.engine.pool.block_size == 4
            assert "aggressive" in replica.engine.scheduler.describe()

    def test_each_build_is_a_fresh_fleet(self, config):
        first = config.build_simulator("round-robin")
        second = config.build_simulator("round-robin")
        assert first is not second
        assert first.replicas[0].engine is not second.replicas[0].engine

    def test_default_sla_matches_model_preset(self, config):
        from repro.serving.sla import sla_for_model

        assert config.default_sla() == sla_for_model(config.platform.model.name)


class TestRouterComparisonSweep:
    def test_runs_every_registered_router_by_default(self, config, stamped):
        results = router_comparison_sweep(config, stamped)
        from repro.serving.routing import available_routers

        assert sorted(results) == available_routers()
        assert all(isinstance(r, ClusterResult) for r in results.values())

    def test_same_stamped_workload_across_routers(self, config, stamped):
        # The invariant the sweep exists for: every router sees the identical
        # trace, so per-run arrival times (and totals) match exactly.
        results = router_comparison_sweep(config, stamped, routers=["round-robin", "least-kv-load"])
        expected_arrivals = sorted(spec.arrival_time for spec in stamped)
        for result in results.values():
            assert result.completed
            assert result.submitted_requests == len(stamped)
            arrivals = sorted(r.arrival_time for r in result.requests)
            assert arrivals == pytest.approx(expected_arrivals)

    def test_single_experiment_runs_end_to_end(self, config, stamped):
        result = run_cluster_experiment(config, stamped, "least-outstanding")
        assert result.completed
        assert len(result.finished_requests) == len(stamped)
        assert result.router == "least-outstanding"

    def test_fleet_table_rows_render(self, config, stamped):
        results = router_comparison_sweep(config, stamped, routers=["round-robin"])
        rows = fleet_table(results, SLA)
        assert len(rows) == 1
        assert rows[0]["router"] == "round-robin"
        assert "goodput_tok_s" in rows[0]
        assert "round-robin" in render_table(rows, title="t")


class TestAutoscaleComparisonSweep:
    def test_tiny_end_to_end_sweep(self, platform_7b, stamped):
        config = AutoscaleExperimentConfig(
            platform=platform_7b,
            initial_replicas=1,
            min_replicas=1,
            max_replicas=3,
            decision_interval=0.25,
            warmup_delay=0.1,
            scheduler_name="conservative",
            token_capacity_override=2048,
        )
        results = autoscale_comparison_sweep(config, stamped, policies=["static", "reactive"])
        assert sorted(results) == ["reactive", "static"]
        for result in results.values():
            assert result.completed
            assert len(result.finished_requests) == len(stamped)
        # The static baseline runs peak-provisioned at max_replicas.
        assert all(s.provisioned == 3 for s in results["static"].fleet_timeline)
        rows = autoscale_table(results, SLA)
        assert {row["policy"] for row in rows} == {"static", "reactive"}
        assert all("goodput_per_rs" in row for row in rows)

    def test_policy_kwargs_reach_policies(self, platform_7b):
        config = AutoscaleExperimentConfig(platform=platform_7b, token_capacity_override=2048)
        autoscaler = config.build_autoscaler("reactive", cooldown=42.0)
        assert autoscaler.policy.cooldown == 42.0
        with pytest.raises(ValueError, match="policy_kwargs"):
            from repro.serving.autoscale import StaticPolicy

            config.build_autoscaler(StaticPolicy(), cooldown=1.0)

"""Tests for the future-required-memory estimator (Eq. 2-4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.future_memory import (
    BatchEntry,
    future_memory_profile,
    memory_timeline,
    peak_future_memory,
    peak_future_memory_arrays,
)


class TestBatchEntry:
    def test_rejects_negative_current_tokens(self):
        with pytest.raises(ValueError):
            BatchEntry(current_tokens=-1, remaining_tokens=2)

    def test_rejects_negative_remaining_tokens(self):
        with pytest.raises(ValueError):
            BatchEntry(current_tokens=1, remaining_tokens=-2)

    def test_allows_zero_remaining(self):
        entry = BatchEntry(current_tokens=5, remaining_tokens=0)
        assert entry.remaining_tokens == 0


class TestPeakFutureMemory:
    def test_empty_batch_requires_no_memory(self):
        assert peak_future_memory([]) == 0

    def test_single_request_peak_is_final_footprint(self):
        # A lone request peaks exactly when it finishes: current + remaining.
        assert peak_future_memory([BatchEntry(10, 5)]) == 15

    def test_paper_figure5_example_schedule_at_t(self):
        # Figure 5(a): three running requests plus a queued one admitted at t.
        # Entries are (current tokens, remaining outputs); the figure reports a
        # max memory usage of 19 when the new request is added at time t...
        entries = [BatchEntry(6, 1), BatchEntry(5, 2), BatchEntry(4, 3), BatchEntry(2, 2)]
        at_t = peak_future_memory(entries)
        # ... and 18 when it is added one step later, after the shortest
        # request has released its memory (Figure 5(b)).
        later_entries = [BatchEntry(6, 1), BatchEntry(5, 2), BatchEntry(4, 3)]
        at_t_plus_1 = max(
            peak_future_memory(later_entries),
            peak_future_memory(
                [BatchEntry(7, 1), BatchEntry(5, 2), BatchEntry(2, 2)]
            ),
        )
        assert at_t > at_t_plus_1

    def test_two_requests_worked_example(self):
        # Request A: 4 current, 1 remaining.  Request B: 2 current, 3 remaining.
        # Sorted by remaining desc: B then A.
        # M_1 (B alone counted): 2 + 3*1 = 5
        # M_2 (A finishes first): 2 + 4 + 1*2 = 8
        # Peak = 8.
        assert peak_future_memory([BatchEntry(4, 1), BatchEntry(2, 3)]) == 8

    def test_peak_never_below_current_total(self):
        entries = [BatchEntry(10, 0), BatchEntry(20, 0)]
        assert peak_future_memory(entries) == 30

    def test_peak_never_exceeds_sum_of_final_footprints(self):
        entries = [BatchEntry(3, 7), BatchEntry(5, 2), BatchEntry(1, 9)]
        upper = sum(e.current_tokens + e.remaining_tokens for e in entries)
        assert peak_future_memory(entries) <= upper

    def test_order_independence(self):
        entries = [BatchEntry(3, 7), BatchEntry(5, 2), BatchEntry(1, 9), BatchEntry(8, 8)]
        reordered = list(reversed(entries))
        assert peak_future_memory(entries) == peak_future_memory(reordered)


class TestFutureMemoryProfile:
    def test_profile_length_matches_batch_size(self):
        entries = [BatchEntry(2, 5), BatchEntry(4, 1), BatchEntry(3, 3)]
        assert len(future_memory_profile(entries)) == 3

    def test_profile_max_equals_peak(self):
        entries = [BatchEntry(2, 5), BatchEntry(4, 1), BatchEntry(3, 3), BatchEntry(6, 6)]
        assert max(future_memory_profile(entries)) == peak_future_memory(entries)

    def test_empty_profile(self):
        assert future_memory_profile([]) == []


class TestPeakFutureMemoryArrays:
    def test_matches_dataclass_version(self):
        rng = np.random.default_rng(3)
        current = rng.integers(0, 100, size=50)
        remaining = rng.integers(0, 100, size=50)
        entries = [BatchEntry(int(c), int(r)) for c, r in zip(current, remaining)]
        assert peak_future_memory_arrays(current, remaining) == peak_future_memory(entries)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            peak_future_memory_arrays([1, 2], [1])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            peak_future_memory_arrays([1, -2], [1, 1])

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError):
            peak_future_memory_arrays([[1, 2]], [[1, 2]])

    def test_empty_arrays(self):
        assert peak_future_memory_arrays([], []) == 0


class TestMemoryTimeline:
    def test_timeline_starts_at_current_sum(self):
        entries = [BatchEntry(5, 3), BatchEntry(7, 1)]
        timeline = memory_timeline(entries)
        assert timeline[0] == 12

    def test_timeline_max_equals_peak(self):
        entries = [BatchEntry(5, 3), BatchEntry(7, 1), BatchEntry(2, 6)]
        assert max(memory_timeline(entries)) == peak_future_memory(entries)

    def test_timeline_horizon_is_longest_remaining(self):
        entries = [BatchEntry(5, 3), BatchEntry(7, 1)]
        assert len(memory_timeline(entries)) == 4  # steps 0..3

    def test_requests_release_memory_when_done(self):
        # One short and one long request: after the short one finishes the
        # occupancy drops below the peak.
        entries = [BatchEntry(10, 1), BatchEntry(2, 10)]
        timeline = memory_timeline(entries)
        peak_step = timeline.index(max(timeline))
        assert timeline[-1] < timeline[peak_step]

    def test_empty_timeline(self):
        assert memory_timeline([]) == [0]

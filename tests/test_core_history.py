"""Tests for the sliding-window output-length history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import OutputLengthHistory


class TestConstruction:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            OutputLengthHistory(window_size=0)

    def test_rejects_non_positive_default_length(self):
        with pytest.raises(ValueError):
            OutputLengthHistory(default_length=0)

    def test_starts_empty(self):
        history = OutputLengthHistory()
        assert history.is_empty
        assert len(history) == 0


class TestRecording:
    def test_record_appends(self):
        history = OutputLengthHistory(window_size=10)
        history.record(5)
        history.record(7)
        assert len(history) == 2
        assert list(history.snapshot()) == [5, 7]

    def test_rejects_non_positive_lengths(self):
        history = OutputLengthHistory()
        with pytest.raises(ValueError):
            history.record(0)

    def test_window_evicts_oldest(self):
        history = OutputLengthHistory(window_size=3)
        history.extend([1, 2, 3, 4])
        assert list(history.snapshot()) == [2, 3, 4]

    def test_extend_matches_repeated_record(self):
        a = OutputLengthHistory(window_size=5)
        b = OutputLengthHistory(window_size=5)
        values = [3, 1, 4, 1, 5]
        a.extend(values)
        for value in values:
            b.record(value)
        assert list(a.snapshot()) == list(b.snapshot())

    def test_clear_resets(self):
        history = OutputLengthHistory()
        history.extend([10, 20])
        history.clear()
        assert history.is_empty


class TestSnapshotSeeding:
    def test_empty_snapshot_uses_default_length(self):
        history = OutputLengthHistory(default_length=512)
        assert list(history.snapshot()) == [512]

    def test_snapshot_is_int64(self):
        history = OutputLengthHistory()
        history.record(9)
        assert history.snapshot().dtype == np.int64


class TestStatistics:
    def test_mean(self):
        history = OutputLengthHistory()
        history.extend([2, 4, 6])
        assert history.mean() == pytest.approx(4.0)

    def test_mean_of_empty_history_is_default(self):
        history = OutputLengthHistory(default_length=100)
        assert history.mean() == pytest.approx(100.0)

    def test_quantile(self):
        history = OutputLengthHistory()
        history.extend(list(range(1, 101)))
        assert history.quantile(0.5) == pytest.approx(50.5)

    def test_quantile_rejects_out_of_range(self):
        history = OutputLengthHistory()
        with pytest.raises(ValueError):
            history.quantile(1.5)

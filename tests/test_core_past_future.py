"""Tests for the Past-Future scheduler's admission behaviour."""

from __future__ import annotations

import pytest

from repro.core.past_future import PastFutureScheduler
from repro.engine.request import Request
from repro.schedulers.base import SchedulingContext
from tests.conftest import make_spec


def make_request(request_id: str, input_length: int, output_length: int,
                 max_new_tokens: int = 4096, generated: int = 0) -> Request:
    request = Request(
        spec=make_spec(
            request_id=request_id,
            input_length=input_length,
            output_length=output_length,
            max_new_tokens=max_new_tokens,
        ),
        arrival_time=0.0,
    )
    if generated:
        request.admit(0.0)
        request.note_prefill(request.recompute_tokens)
        for _ in range(generated):
            request.deliver_token(0.0)
    return request


def make_context(running, waiting, capacity=1000, used=None) -> SchedulingContext:
    if used is None:
        used = sum(r.current_context_tokens for r in running)
    return SchedulingContext(
        time=0.0,
        step=1,
        running=list(running),
        waiting=list(waiting),
        token_capacity=capacity,
        used_tokens=used,
    )


class TestConstruction:
    def test_rejects_invalid_reserved_fraction(self):
        with pytest.raises(ValueError):
            PastFutureScheduler(reserved_fraction=1.0)
        with pytest.raises(ValueError):
            PastFutureScheduler(reserved_fraction=-0.1)

    def test_describe_mentions_parameters(self):
        scheduler = PastFutureScheduler(reserved_fraction=0.05, window_size=500)
        description = scheduler.describe()
        assert "5%" in description
        assert "500" in description


class TestHistoryFeedback:
    def test_finished_requests_enter_history(self):
        scheduler = PastFutureScheduler()
        request = make_request("a", 10, 5, generated=5)
        request.finish(1.0)
        scheduler.on_request_finished(request, 1.0)
        assert len(scheduler.history) == 1
        assert scheduler.history.snapshot()[0] == 5

    def test_on_run_start_clears_history(self):
        scheduler = PastFutureScheduler()
        scheduler.history.record(42)
        scheduler.on_run_start()
        assert scheduler.history.is_empty


class TestAdmission:
    def test_empty_queue_admits_nothing(self):
        scheduler = PastFutureScheduler()
        context = make_context(running=[], waiting=[])
        assert scheduler.schedule(context) == []

    def test_admits_when_memory_clearly_sufficient(self):
        scheduler = PastFutureScheduler(seed=1)
        scheduler.history.extend([8] * 100)
        waiting = [make_request(f"w{i}", 10, 8, max_new_tokens=64) for i in range(3)]
        context = make_context(running=[], waiting=waiting, capacity=10_000)
        admitted = scheduler.schedule(context)
        assert admitted == waiting

    def test_rejects_when_predicted_peak_exceeds_budget(self):
        scheduler = PastFutureScheduler(seed=1, reserved_fraction=0.0)
        # History says outputs are 100 tokens long.
        scheduler.history.extend([100] * 200)
        running = [make_request("r0", 50, 100, generated=10)]
        waiting = [make_request("w0", 50, 100)]
        # Capacity fits the running request's worst case (150) but not both
        # requests' predicted peaks.
        context = make_context(running=running, waiting=waiting, capacity=200)
        assert scheduler.schedule(context) == []

    def test_admission_is_queue_prefix(self):
        scheduler = PastFutureScheduler(seed=3)
        scheduler.history.extend([64] * 100)
        waiting = [make_request(f"w{i}", 40, 64, max_new_tokens=128) for i in range(10)]
        context = make_context(running=[], waiting=waiting, capacity=600)
        admitted = scheduler.schedule(context)
        assert admitted == waiting[: len(admitted)]
        assert 0 < len(admitted) < len(waiting)

    def test_reserved_fraction_reduces_admissions(self):
        waiting = [make_request(f"w{i}", 40, 64, max_new_tokens=128) for i in range(20)]
        counts = {}
        for reserved in (0.0, 0.3):
            scheduler = PastFutureScheduler(seed=5, reserved_fraction=reserved)
            scheduler.history.extend([64] * 100)
            context = make_context(running=[], waiting=list(waiting), capacity=1500)
            counts[reserved] = len(scheduler.schedule(context))
        assert counts[0.3] <= counts[0.0]

    def test_progress_guarantee_on_empty_system(self):
        # Even if the prediction says the head request cannot fit the budget,
        # an idle system must admit it to avoid starvation.
        scheduler = PastFutureScheduler(seed=2, reserved_fraction=0.5)
        scheduler.history.extend([4000] * 100)
        waiting = [make_request("w0", 600, 4000)]
        context = make_context(running=[], waiting=waiting, capacity=1000)
        admitted = scheduler.schedule(context)
        assert admitted == waiting

    def test_respects_batch_cap(self):
        scheduler = PastFutureScheduler(seed=4, max_running_requests=2)
        scheduler.history.extend([8] * 50)
        waiting = [make_request(f"w{i}", 10, 8, max_new_tokens=32) for i in range(5)]
        context = make_context(running=[], waiting=waiting, capacity=100_000)
        assert len(scheduler.schedule(context)) == 2

    def test_seeded_history_limits_admissions_before_first_completion(self):
        # At service start the distribution is seeded with the preset maximum
        # output length, so the scheduler behaves conservatively at first.
        scheduler = PastFutureScheduler(seed=6, default_length=1000)
        waiting = [make_request(f"w{i}", 10, 100, max_new_tokens=1000) for i in range(10)]
        context = make_context(running=[], waiting=waiting, capacity=2500)
        admitted = scheduler.schedule(context)
        assert len(admitted) <= 2

    def test_admission_budget_scales_with_reserved(self):
        scheduler = PastFutureScheduler(reserved_fraction=0.1)
        context = make_context(running=[], waiting=[], capacity=1000)
        assert scheduler.admission_budget(context) == 900


class TestEvictedRequeue:
    def test_requeued_request_uses_conditional_prediction(self):
        scheduler = PastFutureScheduler(seed=7)
        scheduler.history.extend([50] * 100)
        # An evicted request that already generated 30 tokens: its prediction
        # must exceed 30, so the admission accounts for at least 20 more.
        evicted = make_request("e0", 20, 50, generated=30)
        evicted.evict()
        context = make_context(running=[], waiting=[evicted], capacity=10_000)
        admitted = scheduler.schedule(context)
        assert admitted == [evicted]

"""Tests for the output-length distribution predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import OutputLengthPredictor, build_predictor


def make_predictor(lengths, **kwargs) -> OutputLengthPredictor:
    return build_predictor(np.array(lengths, dtype=np.int64), **kwargs)


class TestConstruction:
    def test_rejects_empty_lengths(self):
        with pytest.raises(ValueError):
            make_predictor([])

    def test_rejects_non_positive_lengths(self):
        with pytest.raises(ValueError):
            make_predictor([4, 0, 2])

    def test_rejects_non_positive_num_samples(self):
        with pytest.raises(ValueError):
            make_predictor([1, 2], num_samples=0)


class TestDistribution:
    def test_probability_matches_counts(self):
        predictor = make_predictor([1, 2, 2, 3])
        assert predictor.probability(2) == pytest.approx(0.5)
        assert predictor.probability(1) == pytest.approx(0.25)
        assert predictor.probability(7) == 0.0

    def test_exceedance_matches_counts(self):
        predictor = make_predictor([1, 2, 2, 3])
        assert predictor.exceedance(1) == pytest.approx(0.75)
        assert predictor.exceedance(3) == 0.0

    def test_support_and_max(self):
        predictor = make_predictor([5, 3, 3, 9])
        assert list(predictor.support) == [3, 5, 9]
        assert predictor.max_length == 9


class TestPredictNew:
    def test_samples_come_from_history(self):
        lengths = [10, 20, 30]
        predictor = make_predictor(lengths, seed=1)
        samples = predictor.predict_new(200)
        assert set(samples.tolist()) <= set(lengths)

    def test_count_zero_returns_empty(self):
        predictor = make_predictor([10])
        assert predictor.predict_new(0).size == 0

    def test_negative_count_rejected(self):
        predictor = make_predictor([10])
        with pytest.raises(ValueError):
            predictor.predict_new(-1)

    def test_deterministic_for_fixed_seed(self):
        first = make_predictor([1, 5, 9, 13], seed=42).predict_new(50)
        second = make_predictor([1, 5, 9, 13], seed=42).predict_new(50)
        np.testing.assert_array_equal(first, second)

    def test_single_value_history_is_constant(self):
        predictor = make_predictor([77])
        assert set(predictor.predict_new(20).tolist()) == {77}

    def test_samples_approximate_distribution(self):
        # With a large sample the empirical frequency of each value should be
        # close to its probability in the window.
        predictor = make_predictor([10] * 30 + [100] * 70, seed=3)
        samples = predictor.predict_new(5000)
        frequency_100 = float(np.mean(samples == 100))
        assert frequency_100 == pytest.approx(0.7, abs=0.05)


class TestPredictRunning:
    def test_conditional_samples_exceed_generated(self):
        predictor = make_predictor([5, 10, 20, 40], seed=0)
        generated = np.array([0, 4, 9, 19, 39])
        predictions = predictor.predict_running(generated)
        assert np.all(predictions > generated)

    def test_exhausted_history_falls_back_to_next_token(self):
        predictor = make_predictor([5, 10], seed=0)
        predictions = predictor.predict_running([50])
        assert predictions[0] == 51

    def test_empty_input_returns_empty(self):
        predictor = make_predictor([5, 10])
        assert predictor.predict_running([]).size == 0

    def test_rejects_negative_generated(self):
        predictor = make_predictor([5, 10])
        with pytest.raises(ValueError):
            predictor.predict_running([-1])

    def test_rejects_two_dimensional_generated(self):
        predictor = make_predictor([5, 10])
        with pytest.raises(ValueError):
            predictor.predict_running(np.zeros((2, 2), dtype=np.int64))

    def test_conditional_samples_come_from_tail(self):
        predictor = make_predictor([5, 10, 20, 40], seed=9)
        predictions = predictor.predict_running([10] * 500)
        assert set(predictions.tolist()) <= {20, 40}


class TestAggregation:
    def test_max_aggregation_dominates_mean(self):
        lengths = list(range(1, 101))
        max_pred = make_predictor(lengths, seed=5, num_samples=8, aggregation="max")
        mean_pred = make_predictor(lengths, seed=5, num_samples=8, aggregation="mean")
        assert max_pred.predict_new(100).mean() >= mean_pred.predict_new(100).mean()

    def test_median_aggregation_supported(self):
        predictor = make_predictor([1, 2, 3, 4], num_samples=5, aggregation="median")
        samples = predictor.predict_new(10)
        assert np.all((samples >= 1) & (samples <= 4))

    def test_unknown_aggregation_rejected(self):
        predictor = make_predictor([1, 2, 3], num_samples=2, aggregation="max")
        object.__setattr__(predictor, "aggregation", "bogus")
        with pytest.raises(ValueError):
            predictor.predict_new(3)

    def test_repeated_sampling_with_max_is_conservative(self):
        # More repeats with max-aggregation can only raise the prediction.
        lengths = list(range(1, 1001))
        single = make_predictor(lengths, seed=11, num_samples=1).predict_new(500).mean()
        repeated = make_predictor(lengths, seed=11, num_samples=10).predict_new(500).mean()
        assert repeated >= single

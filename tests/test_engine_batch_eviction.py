"""Tests for the running-batch container and the eviction policies."""

from __future__ import annotations

from repro.engine.batch import RunningBatch
from repro.engine.eviction import (
    RecomputeNewestFirst,
    RecomputeOldestFirst,
    SwapEviction,
)
from repro.engine.request import Request
from tests.conftest import make_spec


def running_request(request_id: str, admit_time: float, generated: int = 0) -> Request:
    request = Request(
        spec=make_spec(request_id=request_id, input_length=10, output_length=20, max_new_tokens=40),
        arrival_time=0.0,
    )
    request.admit(admit_time)
    request.note_prefill(request.recompute_tokens)
    for step in range(generated):
        request.deliver_token(admit_time + step + 1)
    return request


class TestRunningBatch:
    def test_add_remove_len(self):
        batch = RunningBatch()
        a = running_request("a", 1.0)
        batch.add(a)
        assert len(batch) == 1
        assert a in batch
        batch.remove(a)
        assert batch.is_empty

    def test_decoding_and_prefilling_views(self):
        batch = RunningBatch()
        decoding = running_request("a", 1.0)
        prefilling = Request(spec=make_spec(request_id="b"), arrival_time=0.0)
        prefilling.admit(2.0)
        batch.add(decoding)
        batch.add(prefilling)
        assert batch.decoding == [decoding]
        assert batch.prefilling == [prefilling]

    def test_total_context_tokens(self):
        batch = RunningBatch()
        batch.add(running_request("a", 1.0, generated=5))
        batch.add(running_request("b", 2.0, generated=2))
        assert batch.total_context_tokens == (10 + 5) + (10 + 2)

    def test_by_recency_orders_newest_first(self):
        batch = RunningBatch()
        old = running_request("old", 1.0)
        new = running_request("new", 5.0)
        batch.add(old)
        batch.add(new)
        assert batch.by_recency() == [new, old]


class TestEvictionPolicies:
    def _batch(self):
        batch = RunningBatch()
        old = running_request("old", 1.0, generated=8)
        mid = running_request("mid", 2.0, generated=4)
        new = running_request("new", 3.0, generated=1)
        for request in (old, mid, new):
            batch.add(request)
        return batch, old, mid, new

    def test_newest_first_selects_most_recent(self):
        batch, old, mid, new = self._batch()
        assert RecomputeNewestFirst().select_victim(batch) is new

    def test_newest_first_respects_protect(self):
        batch, old, mid, new = self._batch()
        assert RecomputeNewestFirst().select_victim(batch, protect=new) is mid

    def test_protect_is_last_resort(self):
        batch = RunningBatch()
        only = running_request("only", 1.0)
        batch.add(only)
        assert RecomputeNewestFirst().select_victim(batch, protect=only) is only

    def test_empty_batch_has_no_victim(self):
        assert RecomputeNewestFirst().select_victim(RunningBatch()) is None

    def test_oldest_first_selects_least_recent(self):
        batch, old, mid, new = self._batch()
        assert RecomputeOldestFirst().select_victim(batch) is old

    def test_oldest_first_respects_protect(self):
        batch, old, mid, new = self._batch()
        assert RecomputeOldestFirst().select_victim(batch, protect=old) is mid

    def test_recompute_cost_is_full_context(self):
        batch, old, mid, new = self._batch()
        assert RecomputeNewestFirst().recompute_cost_tokens(old) == 10 + 8

    def test_swap_cost_is_cheaper_than_recompute(self):
        batch, old, mid, new = self._batch()
        swap = SwapEviction(swap_fraction=0.25)
        assert swap.recompute_cost_tokens(old) < RecomputeNewestFirst().recompute_cost_tokens(old)
        assert swap.recompute_cost_tokens(old) >= 1

    def test_swap_selects_same_victims_as_recompute(self):
        batch, old, mid, new = self._batch()
        assert SwapEviction().select_victim(batch) is new

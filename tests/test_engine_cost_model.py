"""Tests for the roofline cost model."""

from __future__ import annotations

import pytest

from repro.engine.cost_model import CostModel, StepWork
from repro.hardware.models import LLAVA_15_7B
from repro.hardware.platform import Platform, paper_platform
from repro.hardware.gpus import A100_80G


@pytest.fixture(scope="module")
def cost_model_7b() -> CostModel:
    return CostModel(paper_platform("7b-a100"))


class TestValidation:
    def test_rejects_bad_efficiencies(self, platform_7b):
        with pytest.raises(ValueError):
            CostModel(platform_7b, compute_efficiency=0.0)
        with pytest.raises(ValueError):
            CostModel(platform_7b, bandwidth_efficiency=1.5)

    def test_rejects_negative_overhead(self, platform_7b):
        with pytest.raises(ValueError):
            CostModel(platform_7b, step_overhead_seconds=-1.0)

    def test_rejects_non_positive_speed_factor(self, platform_7b):
        with pytest.raises(ValueError):
            CostModel(platform_7b, speed_factor=0.0)


class TestStepWork:
    def test_idle_detection(self):
        assert StepWork().is_idle
        assert not StepWork(prefill_tokens=1).is_idle
        assert not StepWork(decode_requests=1).is_idle
        assert not StepWork(images_encoded=1).is_idle


class TestComponentCosts:
    def test_zero_work_costs_nothing(self, cost_model_7b):
        assert cost_model_7b.prefill_seconds(0) == 0.0
        assert cost_model_7b.decode_seconds(0, 0) == 0.0
        assert cost_model_7b.step_seconds(StepWork()) == 0.0

    def test_prefill_scales_linearly_with_tokens(self, cost_model_7b):
        one = cost_model_7b.prefill_seconds(1000)
        two = cost_model_7b.prefill_seconds(2000)
        assert two == pytest.approx(2 * one)

    def test_prefill_latency_order_of_magnitude(self, cost_model_7b):
        # 1k-token prefill of a 7B model on A100 takes on the order of 100 ms.
        latency = cost_model_7b.prefill_seconds(1000)
        assert 0.01 < latency < 1.0

    def test_decode_step_latency_order_of_magnitude(self, cost_model_7b):
        # A decode iteration of a 7B model is tens of milliseconds.
        latency = cost_model_7b.decode_seconds(32, 32 * 1024)
        assert 0.005 < latency < 0.2

    def test_decode_grows_with_context(self, cost_model_7b):
        small = cost_model_7b.decode_seconds(16, 16 * 256)
        large = cost_model_7b.decode_seconds(16, 16 * 4096)
        assert large > small

    def test_vision_cost_only_for_multimodal(self, cost_model_7b):
        assert cost_model_7b.vision_seconds(3) == 0.0
        llava = CostModel(Platform(model=LLAVA_15_7B, gpu=A100_80G))
        assert llava.vision_seconds(2) == pytest.approx(2 * LLAVA_15_7B.vision_encoder_seconds)


class TestTotals:
    def test_step_seconds_includes_overhead(self, platform_7b):
        model = CostModel(platform_7b, step_overhead_seconds=0.01)
        latency = model.step_seconds(StepWork(decode_requests=1, decode_context_tokens=100))
        assert latency >= 0.01

    def test_speed_factor_scales_latency(self, platform_7b):
        base = CostModel(platform_7b, speed_factor=1.0)
        slow = CostModel(platform_7b, speed_factor=2.0)
        work = StepWork(prefill_tokens=512, decode_requests=8, decode_context_tokens=8 * 512)
        assert slow.step_seconds(work) == pytest.approx(2 * base.step_seconds(work))

    def test_bigger_model_is_slower(self):
        small = CostModel(paper_platform("7b-a100"))
        large = CostModel(paper_platform("13b-a100"))
        work = StepWork(decode_requests=16, decode_context_tokens=16 * 1024)
        assert large.step_seconds(work) > small.step_seconds(work)

    def test_faster_gpu_is_faster(self):
        a100 = CostModel(paper_platform("7b-a100"))
        h800 = CostModel(paper_platform("7b-h800"))
        work = StepWork(prefill_tokens=2048, decode_requests=16, decode_context_tokens=16 * 1024)
        assert h800.step_seconds(work) < a100.step_seconds(work)

    def test_throughput_upper_bound_positive(self, cost_model_7b):
        bound = cost_model_7b.tokens_per_second_upper_bound(1024, 32)
        assert bound > 100.0
        assert cost_model_7b.tokens_per_second_upper_bound(1024, 0) == 0.0

    def test_batching_improves_tokens_per_second(self, cost_model_7b):
        # Decode is memory-bound on weights, so batching amortises the reads.
        single = cost_model_7b.tokens_per_second_upper_bound(512, 1)
        batched = cost_model_7b.tokens_per_second_upper_bound(512, 32)
        assert batched > 5 * single

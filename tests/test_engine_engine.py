"""Tests for the continuous-batching engine."""

from __future__ import annotations

import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.eviction import SwapEviction
from repro.engine.request import Request, RequestState
from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.conservative import ConservativeScheduler
from repro.schedulers.oracle import OracleScheduler
from tests.conftest import make_spec


def make_engine(platform_7b, scheduler=None, capacity=512, **kwargs) -> InferenceEngine:
    return InferenceEngine(
        platform=platform_7b,
        scheduler=scheduler or AggressiveScheduler(watermark=1.0),
        token_capacity_override=capacity,
        **kwargs,
    )


def submit_requests(engine: InferenceEngine, count: int, input_length=16, output_length=8,
                    max_new_tokens=32) -> list[Request]:
    requests = []
    for index in range(count):
        request = Request(
            spec=make_spec(
                request_id=f"req-{index}",
                input_length=input_length,
                output_length=output_length,
                max_new_tokens=max_new_tokens,
            ),
            arrival_time=0.0,
        )
        engine.submit(request)
        requests.append(request)
    return requests


def run_until_drained(engine: InferenceEngine, max_steps: int = 10_000) -> float:
    time = 0.0
    for _ in range(max_steps):
        if not engine.has_work():
            return time
        result = engine.step(time)
        time = result.end_time
    raise AssertionError("engine did not drain")


class TestBasicOperation:
    def test_rejects_invalid_capacity(self, platform_7b):
        with pytest.raises(ValueError):
            make_engine(platform_7b, capacity=0)

    def test_rejects_invalid_chunk_size(self, platform_7b):
        with pytest.raises(ValueError):
            make_engine(platform_7b, chunked_prefill_tokens=0)

    def test_submit_only_queued_requests(self, platform_7b):
        engine = make_engine(platform_7b)
        request = Request(spec=make_spec(), arrival_time=0.0)
        request.admit(0.0)
        with pytest.raises(ValueError):
            engine.submit(request)

    def test_single_request_completes(self, platform_7b):
        engine = make_engine(platform_7b)
        [request] = submit_requests(engine, 1, input_length=10, output_length=4)
        run_until_drained(engine)
        assert request.is_finished
        assert request.generated_tokens == 4
        assert len(request.token_times) == 4
        assert engine.pool.used_tokens == 0

    def test_first_token_delivered_in_admission_step(self, platform_7b):
        engine = make_engine(platform_7b)
        [request] = submit_requests(engine, 1, input_length=10, output_length=4)
        result = engine.step(0.0)
        assert request in result.admitted
        assert request.generated_tokens == 1
        assert result.work.prefill_tokens == 10

    def test_time_advances_with_each_step(self, platform_7b):
        engine = make_engine(platform_7b)
        submit_requests(engine, 2, output_length=6)
        first = engine.step(0.0)
        second = engine.step(first.end_time)
        assert second.end_time > first.end_time > 0.0

    def test_decoding_steps_counted(self, platform_7b):
        engine = make_engine(platform_7b)
        submit_requests(engine, 3, output_length=5)
        run_until_drained(engine)
        assert engine.stats.decoding_steps >= 5
        assert engine.stats.total_finished == 3

    def test_idle_step_does_nothing(self, platform_7b):
        engine = make_engine(platform_7b)
        result = engine.step(0.0)
        assert result.was_idle
        assert result.duration == 0.0
        assert engine.stats.idle_steps == 1

    def test_memory_timeline_recorded(self, platform_7b):
        engine = make_engine(platform_7b)
        submit_requests(engine, 2, output_length=4)
        run_until_drained(engine)
        assert len(engine.memory_timeline) > 0
        assert engine.memory_timeline.token_capacity == 512


class TestContinuousBatching:
    def test_requests_join_mid_flight(self, platform_7b):
        engine = make_engine(platform_7b, capacity=4096)
        first = submit_requests(engine, 1, input_length=16, output_length=32)[0]
        result = engine.step(0.0)
        # A new request arrives after the first has started decoding.
        late = Request(spec=make_spec(request_id="late", input_length=16, output_length=8),
                       arrival_time=result.end_time)
        engine.submit(late)
        second = engine.step(result.end_time)
        assert late in second.admitted
        assert first.generated_tokens == 2  # kept decoding while late prefilled
        run_until_drained(engine)
        assert first.is_finished and late.is_finished

    def test_finished_requests_release_memory_for_queued_ones(self, platform_7b):
        # Capacity fits only one request's full footprint at a time.
        engine = make_engine(platform_7b, scheduler=OracleScheduler(), capacity=40)
        requests = submit_requests(engine, 3, input_length=16, output_length=8, max_new_tokens=16)
        run_until_drained(engine)
        assert all(r.is_finished for r in requests)
        assert engine.stats.total_evictions == 0

    def test_used_tokens_equals_batch_context(self, platform_7b):
        engine = make_engine(platform_7b, capacity=4096)
        submit_requests(engine, 4, input_length=32, output_length=16)
        time = 0.0
        for _ in range(10):
            if not engine.has_work():
                break
            result = engine.step(time)
            time = result.end_time
            assert engine.pool.used_tokens == engine.batch.total_context_tokens


class TestEvictionBehaviour:
    def test_aggressive_overcommit_triggers_eviction(self, platform_7b):
        # Prompts fit, but outputs will not: the aggressive scheduler admits
        # both and the engine must evict one mid-decode.
        engine = make_engine(platform_7b, scheduler=AggressiveScheduler(watermark=1.0), capacity=64)
        requests = submit_requests(engine, 2, input_length=24, output_length=30, max_new_tokens=30)
        run_until_drained(engine)
        assert engine.stats.total_evictions >= 1
        assert all(r.is_finished for r in requests)
        assert sum(r.eviction_count for r in requests) == engine.stats.total_evictions

    def test_evicted_request_requeued_at_front(self, platform_7b):
        engine = make_engine(platform_7b, scheduler=AggressiveScheduler(watermark=1.0), capacity=64)
        submit_requests(engine, 2, input_length=24, output_length=30, max_new_tokens=30)
        time = 0.0
        evicted_request = None
        for _ in range(200):
            if not engine.has_work():
                break
            result = engine.step(time)
            time = result.end_time
            if result.evicted:
                evicted_request = result.evicted[0]
                break
        assert evicted_request is not None
        assert engine.waiting[0] is evicted_request
        assert evicted_request.state is RequestState.QUEUED

    def test_oracle_scheduler_never_evicts(self, platform_7b):
        engine = make_engine(platform_7b, scheduler=OracleScheduler(), capacity=128)
        requests = submit_requests(engine, 6, input_length=16, output_length=24, max_new_tokens=48)
        run_until_drained(engine)
        assert engine.stats.total_evictions == 0
        assert all(r.is_finished for r in requests)

    def test_conservative_scheduler_never_evicts(self, platform_7b):
        engine = make_engine(platform_7b, scheduler=ConservativeScheduler(), capacity=128)
        requests = submit_requests(engine, 6, input_length=16, output_length=24, max_new_tokens=48)
        run_until_drained(engine)
        assert engine.stats.total_evictions == 0
        assert all(r.is_finished for r in requests)

    def test_swap_eviction_reduces_recompute_work(self, platform_7b):
        def build(policy):
            engine = InferenceEngine(
                platform=platform_7b,
                scheduler=AggressiveScheduler(watermark=1.0),
                token_capacity_override=64,
                eviction_policy=policy,
            )
            submit_requests(engine, 2, input_length=24, output_length=30, max_new_tokens=30)
            run_until_drained(engine)
            return engine.stats

        recompute_stats = build(None)
        swap_stats = build(SwapEviction(swap_fraction=0.1))
        assert swap_stats.total_evictions >= 1
        assert swap_stats.total_prefill_tokens < recompute_stats.total_prefill_tokens


class TestChunkedPrefill:
    def test_prefill_spread_over_steps(self, platform_7b):
        engine = make_engine(platform_7b, capacity=4096, chunked_prefill_tokens=16)
        [request] = submit_requests(engine, 1, input_length=64, output_length=4)
        first = engine.step(0.0)
        assert first.work.prefill_tokens == 16
        assert request.state is RequestState.PREFILLING
        assert request.generated_tokens == 0
        steps = 1
        time = first.end_time
        while request.generated_tokens == 0:
            result = engine.step(time)
            time = result.end_time
            steps += 1
        assert steps == 4  # 64 prompt tokens at 16 per step

    def test_chunked_prefill_work_never_exceeds_budget(self, platform_7b):
        engine = make_engine(platform_7b, capacity=4096, chunked_prefill_tokens=32)
        submit_requests(engine, 5, input_length=48, output_length=4)
        time = 0.0
        while engine.has_work():
            result = engine.step(time)
            time = result.end_time
            assert result.work.prefill_tokens <= 32

    def test_all_requests_finish_with_chunking(self, platform_7b):
        engine = make_engine(platform_7b, capacity=4096, chunked_prefill_tokens=24)
        requests = submit_requests(engine, 4, input_length=50, output_length=6)
        run_until_drained(engine)
        assert all(r.is_finished for r in requests)


class TestMultimodalAccounting:
    def test_images_counted_in_step_work(self, platform_7b):
        engine = make_engine(platform_7b, capacity=4096)
        request = Request(
            spec=make_spec(request_id="mm", input_length=16, output_length=4, image_tokens=64),
            arrival_time=0.0,
        )
        engine.submit(request)
        result = engine.step(0.0)
        assert result.work.images_encoded == 1
        assert result.work.prefill_tokens == 16 + 64

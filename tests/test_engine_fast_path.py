"""Fast-path equivalence: event-jump macro-steps vs the reference loop.

The engine's event-jump fast path (``fast_path=True``, the default) must be
an *exact* optimisation: every externally visible quantity — per-token
delivery timestamps, admission/eviction/finish times, engine statistics, and
the per-step memory timeline — must be bit-identical to the reference
one-token-per-iteration loop (``fast_path=False``).  These tests run the same
seeded workloads through both loops across workload families, chunked prefill
on/off, and block sizes, and compare everything.
"""

from __future__ import annotations

import pytest

from repro.analysis.perf import cluster_snapshot, run_snapshot
from repro.engine.cost_model import CostModel
from repro.hardware.platform import paper_platform
from repro.memory.block_manager import BlockKVCachePool
from repro.schedulers.registry import create_scheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.server import ServingSimulator
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.burstgpt import generate_api_trace, generate_conversation_trace
from repro.workloads.sharegpt import generate_sharegpt_o1_workload, generate_sharegpt_workload
from repro.workloads.spec import scale_workload


PLATFORM = paper_platform("7b-a100")
#: Small enough to force admission pressure and (for aggressive) evictions.
CAPACITY = 2048


def single_engine_runs(scheduler_name, scheduler_kwargs, workload, *,
                       block_size, chunked, clients):
    results = []
    for fast_path in (True, False):
        simulator = ServingSimulator(
            PLATFORM,
            create_scheduler(scheduler_name, **scheduler_kwargs),
            token_capacity_override=CAPACITY,
            block_size=block_size,
            chunked_prefill_tokens=chunked,
            fast_path=fast_path,
        )
        results.append(simulator.run_closed_loop(workload, num_clients=clients))
    return results


WORKLOADS = {
    "sharegpt": lambda: scale_workload(generate_sharegpt_workload(60, seed=3), 0.25),
    "sharegpt-o1": lambda: scale_workload(generate_sharegpt_o1_workload(40, seed=5), 0.125),
    "burstgpt-conversation": lambda: scale_workload(
        generate_conversation_trace(60, seed=7), 0.25
    ),
    "burstgpt-api": lambda: scale_workload(generate_api_trace(60, seed=9), 0.25),
}


@pytest.mark.parametrize("workload_name", list(WORKLOADS))
@pytest.mark.parametrize("block_size", [1, 16])
@pytest.mark.parametrize("chunked", [None, 256])
def test_past_future_bit_identical(workload_name, block_size, chunked):
    """The tentpole guarantee, across workloads x block sizes x prefill modes."""
    workload = WORKLOADS[workload_name]()
    fast, reference = single_engine_runs(
        "past-future",
        {"reserved_fraction": 0.05, "seed": 11, "num_samples": 2},
        workload,
        block_size=block_size,
        chunked=chunked,
        clients=16,
    )
    assert run_snapshot(fast) == run_snapshot(reference)


@pytest.mark.parametrize("scheduler_name,kwargs", [
    ("aggressive", {"watermark": 0.95}),
    ("conservative", {}),
    ("oracle", {}),
])
def test_other_schedulers_bit_identical(scheduler_name, kwargs):
    """Eviction-heavy (aggressive) and baseline schedulers agree too."""
    workload = WORKLOADS["sharegpt"]()
    fast, reference = single_engine_runs(
        scheduler_name, kwargs, workload, block_size=1, chunked=None, clients=24
    )
    assert run_snapshot(fast) == run_snapshot(reference)
    if scheduler_name == "aggressive":
        # The scenario must actually exercise the eviction path, otherwise
        # this test is weaker than it claims.
        assert reference.engine_stats.total_evictions > 0


def test_fast_path_actually_jumps():
    """Guard against the fast path silently degrading to the reference loop."""
    workload = WORKLOADS["sharegpt"]()
    simulator = ServingSimulator(
        PLATFORM,
        create_scheduler("past-future", seed=1),
        token_capacity_override=CAPACITY,
        fast_path=True,
    )
    jumped = []
    original = simulator.engine.try_jump

    def spy(*args, **kwargs):
        result = original(*args, **kwargs)
        if result is not None:
            jumped.append(result.steps)
        return result

    simulator.engine.try_jump = spy
    simulator.run_closed_loop(workload, num_clients=8)
    assert jumped, "no macro-step was ever taken on a light workload"
    assert max(jumped) >= 2


@pytest.mark.parametrize("closed_loop", [True, False])
def test_cluster_bit_identical(closed_loop):
    """Fleet runs agree under both client models (routing reads snapshots)."""
    workload = scale_workload(generate_sharegpt_workload(80, seed=13), 0.25)

    def build(fast_path):
        return ClusterSimulator(
            platform=PLATFORM,
            num_replicas=3,
            router="memory-aware",
            scheduler_name="aggressive",
            scheduler_kwargs={"watermark": 0.95},
            token_capacity_override=CAPACITY,
            fast_path=fast_path,
        )

    if closed_loop:
        fast = build(True).run_closed_loop(workload, num_clients=12)
        reference = build(False).run_closed_loop(workload, num_clients=12)
    else:
        stamped = assign_bursty_arrivals(
            workload, base_rate=2.0, burst_rate=40.0, burst_length=30, cycle_length=40, seed=3
        )
        fast = build(True).run_open_loop(stamped)
        reference = build(False).run_open_loop(stamped)
    assert cluster_snapshot(fast) == cluster_snapshot(reference)


def test_autoscaled_cluster_bit_identical():
    """Elastic fleets (decision/warm-up events bound the jumps) agree."""
    from repro.serving.autoscale import Autoscaler, create_autoscale_policy

    workload = assign_bursty_arrivals(
        scale_workload(generate_sharegpt_workload(80, seed=17), 0.25),
        base_rate=1.0,
        burst_rate=20.0,
        burst_length=30,
        cycle_length=40,
        seed=5,
    )

    def build(fast_path):
        return ClusterSimulator(
            platform=PLATFORM,
            num_replicas=2,
            router="least-outstanding",
            scheduler_name="aggressive",
            scheduler_kwargs={"watermark": 0.95},
            token_capacity_override=CAPACITY,
            autoscaler=Autoscaler(
                policy=create_autoscale_policy("reactive", scale_up_threshold=0.25),
                interval=0.5,
                min_replicas=1,
                max_replicas=4,
                warmup_delay=1.5,
                sample_window=3.0,
            ),
            fast_path=fast_path,
        )

    fast = build(True).run_open_loop(workload)
    reference = build(False).run_open_loop(workload)
    assert cluster_snapshot(fast) == cluster_snapshot(reference)


# ------------------------------------------------------------- building blocks
def test_decode_step_durations_match_scalar_cost_model():
    """Vectorized multi-step integration = scalar step_seconds, bitwise."""
    from repro.engine.cost_model import StepWork

    model = CostModel(PLATFORM)
    durations = model.decode_step_durations(7, 3000, 50)
    for j in range(50):
        work = StepWork(decode_requests=7, decode_context_tokens=3000 + j * 7)
        assert durations[j] == model.step_seconds(work)


@pytest.mark.parametrize("block_size", [1, 4, 16])
def test_pool_bulk_append_matches_sequential(block_size):
    """append_tokens == repeated append_token (tokens, blocks, and ids)."""
    bulk = BlockKVCachePool(4096, block_size=block_size)
    seq = BlockKVCachePool(4096, block_size=block_size)
    for pool in (bulk, seq):
        pool.allocate("a", 37)
        pool.allocate("b", 64)
    bulk.append_tokens("a", 29)
    for _ in range(29):
        seq.append_token("a")
    assert bulk.tokens_of("a") == seq.tokens_of("a") == 66
    assert bulk.block_table("a").block_ids == seq.block_table("a").block_ids
    assert bulk.used_tokens == seq.used_tokens
    assert bulk.free_blocks == seq.free_blocks
    assert bulk.peak_tokens_used == seq.peak_tokens_used


@pytest.mark.parametrize("block_size", [1, 4, 16])
def test_pool_max_uniform_growth_is_exact(block_size):
    """The bound is tight: K fits for every resident, K+1 does not."""
    pool = BlockKVCachePool(640, block_size=block_size)
    pool.allocate("a", 37)
    pool.allocate("b", 100)
    pool.allocate("c", 3)
    k = pool.max_uniform_growth()
    assert k > 0
    for request_id in ("a", "b", "c"):
        pool.append_tokens(request_id, k)
    # Growing every request by one more token must fail for at least one.
    assert not pool.can_grow_each_by_one()


def test_pool_incremental_used_tokens_stays_consistent():
    """The O(1) counters always agree with a from-scratch sum."""
    pool = BlockKVCachePool(512, block_size=4)
    pool.allocate("a", 10)
    pool.allocate("b", 3)
    pool.append_tokens("a", 7)
    pool.append_token("b")
    pool.free("a")
    pool.allocate("c", 21)
    pool.append_token_to_all()
    expected = sum(pool.tokens_of(r) for r in pool.owners())
    assert pool.used_tokens == expected
    assert pool.free_tokens == pool.token_capacity - expected
    assert pool.utilization == expected / pool.token_capacity

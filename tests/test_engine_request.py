"""Tests for the engine-side request lifecycle."""

from __future__ import annotations

import pytest

from repro.engine.request import Request, RequestState
from tests.conftest import make_spec


def make_request(**kwargs) -> Request:
    return Request(spec=make_spec(**kwargs), arrival_time=1.0)


class TestLifecycle:
    def test_initial_state(self):
        request = make_request()
        assert request.state is RequestState.QUEUED
        assert not request.is_running
        assert not request.is_finished

    def test_admit_starts_prefill(self):
        request = make_request(input_length=10)
        request.admit(2.0)
        assert request.state is RequestState.PREFILLING
        assert request.admission_times == [2.0]
        assert request.prefill_remaining == 10

    def test_admit_twice_rejected(self):
        request = make_request()
        request.admit(2.0)
        with pytest.raises(ValueError):
            request.admit(3.0)

    def test_prefill_completion_moves_to_decoding(self):
        request = make_request(input_length=10)
        request.admit(2.0)
        request.note_prefill(10)
        assert request.state is RequestState.DECODING

    def test_chunked_prefill_progress(self):
        request = make_request(input_length=10)
        request.admit(2.0)
        request.note_prefill(4)
        assert request.state is RequestState.PREFILLING
        assert request.prefill_remaining == 6
        request.note_prefill(6)
        assert request.state is RequestState.DECODING

    def test_note_prefill_rejects_negative(self):
        request = make_request()
        request.admit(0.0)
        with pytest.raises(ValueError):
            request.note_prefill(-1)

    def test_finish(self):
        request = make_request(input_length=4, output_length=1)
        request.admit(0.0)
        request.note_prefill(4)
        request.deliver_token(1.0)
        request.finish(1.0)
        assert request.is_finished
        assert request.finish_time == 1.0

    def test_finish_requires_running_state(self):
        request = make_request()
        with pytest.raises(ValueError):
            request.finish(1.0)

    def test_deliver_token_requires_running_state(self):
        request = make_request()
        with pytest.raises(ValueError):
            request.deliver_token(1.0)


class TestEviction:
    def _running_request(self, generated: int = 3) -> Request:
        request = make_request(input_length=8, output_length=10, max_new_tokens=20)
        request.admit(0.0)
        request.note_prefill(8)
        for step in range(generated):
            request.deliver_token(float(step + 1))
        return request

    def test_evict_returns_to_queue_and_counts(self):
        request = self._running_request()
        request.evict()
        assert request.state is RequestState.QUEUED
        assert request.eviction_count == 1

    def test_evict_requires_running_state(self):
        request = make_request()
        with pytest.raises(ValueError):
            request.evict()

    def test_recompute_includes_generated_tokens(self):
        request = self._running_request(generated=5)
        request.evict()
        assert request.recompute_tokens == 8 + 5

    def test_readmission_prefills_recompute_tokens(self):
        request = self._running_request(generated=5)
        request.evict()
        request.admit(10.0)
        assert request.prefill_remaining == 13
        assert request.admission_times == [0.0, 10.0]

    def test_generated_tokens_survive_eviction(self):
        request = self._running_request(generated=4)
        request.evict()
        assert request.generated_tokens == 4
        assert len(request.token_times) == 4


class TestTokenMath:
    def test_prompt_includes_image_tokens(self):
        request = make_request(input_length=10, image_tokens=576)
        assert request.prompt_tokens == 586

    def test_remaining_true_and_cap_tokens(self):
        request = make_request(input_length=4, output_length=10, max_new_tokens=20)
        request.admit(0.0)
        request.note_prefill(4)
        request.deliver_token(1.0)
        assert request.remaining_true_tokens == 9
        assert request.remaining_cap_tokens == 19

    def test_should_stop_at_true_length(self):
        request = make_request(input_length=4, output_length=2, max_new_tokens=50)
        request.admit(0.0)
        request.note_prefill(4)
        request.deliver_token(1.0)
        assert not request.should_stop
        request.deliver_token(2.0)
        assert request.should_stop

    def test_should_stop_at_cap(self):
        request = make_request(input_length=4, output_length=3, max_new_tokens=3)
        request.admit(0.0)
        request.note_prefill(4)
        for step in range(3):
            request.deliver_token(float(step))
        assert request.should_stop


class TestLatencyProperties:
    def test_ttft(self):
        request = make_request()
        request.admit(1.5)
        request.note_prefill(request.prompt_tokens)
        request.deliver_token(3.0)
        assert request.ttft == pytest.approx(2.0)  # arrival was at 1.0

    def test_ttft_none_before_first_token(self):
        assert make_request().ttft is None

    def test_tpot_gaps(self):
        request = make_request(output_length=5, max_new_tokens=8)
        request.admit(1.0)
        request.note_prefill(request.prompt_tokens)
        for time in (2.0, 2.5, 4.0):
            request.deliver_token(time)
        assert request.tpots == [0.5, 1.5]
        assert request.max_tpot == pytest.approx(1.5)
        assert request.mean_tpot == pytest.approx(1.0)

    def test_single_token_has_no_tpot(self):
        request = make_request(output_length=5, max_new_tokens=8)
        request.admit(1.0)
        request.note_prefill(request.prompt_tokens)
        request.deliver_token(2.0)
        assert request.max_tpot is None
        assert request.mean_tpot is None

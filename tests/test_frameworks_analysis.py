"""Tests for framework profiles, experiment drivers, sweeps, and tables."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    memory_report_from_run,
    quick_platform,
    run_experiment,
    run_framework,
)
from repro.analysis.sweep import (
    best_goodput,
    best_throughput,
    client_sweep,
    framework_sweep,
    parameter_sweep,
    scheduler_comparison_sweep,
)
from repro.analysis.tables import render_curves, render_table
from repro.core.past_future import PastFutureScheduler
from repro.frameworks.profiles import (
    DEEPSPEED_MII,
    FIGURE9_FRAMEWORKS,
    FRAMEWORK_REGISTRY,
    LIGHTLLM,
    MULTIMODAL_ORIGIN,
    TGI,
    VLLM,
    get_framework,
)
from repro.schedulers.aggressive import AggressiveScheduler
from repro.schedulers.conservative import ConservativeScheduler
from repro.serving.sla import SLA_SMALL_MODEL
from repro.workloads.distributions import UniformLengthSpec, generate_uniform_workload


@pytest.fixture(scope="module")
def tiny_workload():
    spec = UniformLengthSpec("tiny", 8, 64, 32, 128)
    return generate_uniform_workload(spec, 30, seed=13)


class TestFrameworkProfiles:
    def test_registry_contains_figure9_frameworks(self):
        for name in FIGURE9_FRAMEWORKS:
            assert name in FRAMEWORK_REGISTRY

    def test_scheduler_types_match_paper(self):
        assert isinstance(LIGHTLLM.build_scheduler(), PastFutureScheduler)
        assert isinstance(VLLM.build_scheduler(), AggressiveScheduler)
        assert isinstance(TGI.build_scheduler(), ConservativeScheduler)
        assert isinstance(DEEPSPEED_MII.build_scheduler(), ConservativeScheduler)

    def test_deepspeed_splitfuse_uses_finest_prefill_chunk(self):
        assert DEEPSPEED_MII.chunked_prefill_tokens is not None
        assert VLLM.chunked_prefill_tokens is not None
        assert DEEPSPEED_MII.chunked_prefill_tokens < VLLM.chunked_prefill_tokens
        assert DEEPSPEED_MII.chunked_prefill_tokens < LIGHTLLM.chunked_prefill_tokens

    def test_origin_profile_is_limited(self):
        scheduler = MULTIMODAL_ORIGIN.build_scheduler()
        assert scheduler.max_running_requests == 8
        assert MULTIMODAL_ORIGIN.speed_factor > 1.0

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            get_framework("SGLang")

    def test_build_scheduler_returns_fresh_instances(self):
        assert LIGHTLLM.build_scheduler() is not LIGHTLLM.build_scheduler()


class TestExperimentDriver:
    def test_run_experiment_completes(self, platform_7b, tiny_workload):
        config = ExperimentConfig(
            platform=platform_7b,
            scheduler_name="past-future",
            num_clients=6,
            token_capacity_override=1024,
        )
        result = run_experiment(config, tiny_workload)
        assert result.completed
        assert len(result.finished_requests) == len(tiny_workload)

    def test_memory_report_from_run(self, platform_7b, tiny_workload):
        config = ExperimentConfig(
            platform=platform_7b,
            scheduler_name="aggressive",
            num_clients=6,
            token_capacity_override=1024,
        )
        result = run_experiment(config, tiny_workload)
        report = memory_report_from_run(result)
        assert report.decoding_steps > 0
        assert 0.0 < report.consumed_memory_fraction <= 1.0
        assert set(report.as_row()) == {
            "scheduler", "workload", "decoding_steps",
            "consumed_memory", "future_required", "evicted_requests",
        }

    def test_default_sla_tracks_model(self, platform_7b, platform_70b):
        small = ExperimentConfig(platform=platform_7b)
        large = ExperimentConfig(platform=platform_70b)
        assert small.default_sla().ttft_limit == 10.0
        assert large.default_sla().ttft_limit == 15.0

    def test_quick_platform(self):
        assert quick_platform().model.name == "Llama-2-7B-Chat"

    def test_run_framework_uses_profile_name(self, platform_7b, tiny_workload):
        result = run_framework(
            VLLM, platform_7b, tiny_workload, num_clients=4, token_capacity_override=1024
        )
        assert result.scheduler == "vLLM"


class TestSweeps:
    def test_client_sweep_produces_point_per_count(self, platform_7b, tiny_workload):
        config = ExperimentConfig(
            platform=platform_7b,
            scheduler_name="past-future",
            token_capacity_override=1024,
        )
        points = client_sweep(config, tiny_workload, client_counts=[2, 6])
        assert [p.num_clients for p in points] == [2, 6]
        assert all(p.goodput >= 0 for p in points)
        assert set(points[0].as_row()) >= {"scheduler", "clients", "goodput_tok_s"}

    def test_scheduler_comparison_sweep(self, platform_7b, tiny_workload):
        curves = scheduler_comparison_sweep(
            platform_7b,
            tiny_workload,
            client_counts=[4],
            scheduler_configs={
                "Past-Future": {"scheduler_name": "past-future"},
                "Aggressive": {"scheduler_name": "aggressive"},
            },
            token_capacity_override=1024,
        )
        assert set(curves) == {"Past-Future", "Aggressive"}
        assert all(len(points) == 1 for points in curves.values())

    def test_parameter_sweep(self, platform_7b, tiny_workload):
        points = parameter_sweep(
            platform_7b,
            tiny_workload,
            configurations=[
                ("reserved=5%", "past-future", {"reserved_fraction": 0.05}),
                ("watermark=95%", "aggressive", {"watermark": 0.95}),
            ],
            num_clients=6,
            token_capacity_override=1024,
        )
        assert len(points) == 2
        assert all(p.decoding_steps > 0 for p in points)

    def test_framework_sweep_and_maxima(self, platform_7b, tiny_workload):
        curves = framework_sweep(
            [LIGHTLLM, VLLM],
            platform_7b,
            tiny_workload,
            client_counts=[4],
            sla=SLA_SMALL_MODEL,
            token_capacity_override=1024,
        )
        assert set(curves) == {"LightLLM", "vLLM"}
        assert best_goodput(curves["LightLLM"]) >= 0
        assert best_throughput(curves["vLLM"]) > 0

    def test_best_goodput_of_empty(self):
        assert best_goodput([]) == 0.0


class TestTables:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}]
        text = render_table(rows, title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            render_table([{"a": 1}, {"b": 2}])

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="Empty")

    def test_render_curves(self):
        from repro.analysis.sweep import SweepPoint

        curves = {
            "A": [SweepPoint("A", 10, 5.0, 6.0, 1.0, 0)],
            "B": [SweepPoint("B", 10, 7.0, 8.0, 1.0, 0), SweepPoint("B", 20, 9.0, 10.0, 1.0, 0)],
        }
        text = render_curves(
            curves, x_label="clients",
            x_getter=lambda p: p.num_clients, y_getter=lambda p: p.goodput,
            title="Goodput",
        )
        assert "clients" in text
        assert "-" in text  # missing point for curve A at 20 clients

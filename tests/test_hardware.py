"""Tests for model/GPU descriptors and deployment platforms."""

from __future__ import annotations

import pytest

from repro.hardware.gpus import A30, A100_80G, GPU_REGISTRY, H800, RTX_4090, get_gpu
from repro.hardware.models import (
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAVA_15_7B,
    MODEL_REGISTRY,
    QWEN_VL_CHAT,
    get_model,
)
from repro.hardware.platform import (
    PAPER_PLATFORMS,
    Platform,
    PlatformError,
    make_platform,
    paper_platform,
)


class TestModelConfig:
    def test_registry_lookup(self):
        assert get_model("Llama-2-7B-Chat") is LLAMA2_7B
        with pytest.raises(KeyError):
            get_model("GPT-5")

    def test_registry_contains_all_paper_models(self):
        assert len(MODEL_REGISTRY) == 6

    def test_kv_bytes_per_token_llama7b(self):
        # 2 (K+V) * 32 heads * 128 head_dim * 2 bytes * 32 layers = 512 KiB.
        assert LLAMA2_7B.kv_bytes_per_token == 2 * 32 * 128 * 2 * 32
        assert LLAMA2_7B.kv_bytes_per_token == 524288

    def test_gqa_shrinks_kv_cache(self):
        # Llama-2-70B uses 8 KV heads, so its per-layer KV footprint is much
        # smaller than attention-head count alone would suggest.
        per_layer_70b = LLAMA2_70B.kv_bytes_per_token / LLAMA2_70B.num_layers
        per_layer_13b = LLAMA2_13B.kv_bytes_per_token / LLAMA2_13B.num_layers
        assert per_layer_70b < per_layer_13b

    def test_weight_bytes_and_flops(self):
        assert LLAMA2_7B.weight_bytes == pytest.approx(2 * 6.74e9)
        assert LLAMA2_7B.flops_per_token == pytest.approx(2 * 6.74e9)

    def test_multimodal_flags(self):
        assert not LLAMA2_7B.is_multimodal
        assert QWEN_VL_CHAT.is_multimodal
        assert LLAVA_15_7B.vision_prefix_tokens == 576

    def test_head_dim(self):
        assert LLAMA2_7B.head_dim == 128
        assert LLAMA2_70B.head_dim == 128


class TestGPUConfig:
    def test_registry_lookup(self):
        assert get_gpu("A100-80G") is A100_80G
        with pytest.raises(KeyError):
            get_gpu("B200")

    def test_registry_contains_all_paper_gpus(self):
        assert set(GPU_REGISTRY) == {"A100-80G", "H800", "RTX-4090", "A30"}

    def test_usable_memory_below_total(self):
        for gpu in (A100_80G, H800, RTX_4090, A30):
            assert gpu.usable_memory_bytes < gpu.memory_bytes

    def test_unit_conversions(self):
        assert A100_80G.flops_per_second == pytest.approx(312e12)
        assert A100_80G.bytes_per_second == pytest.approx(2039e9)


class TestPlatform:
    def test_7b_on_a100_capacity_order_of_magnitude(self):
        platform = make_platform("Llama-2-7B-Chat", "A100-80G")
        # ~58 GB of KV space at 512 KiB per token -> on the order of 1e5 slots.
        assert 80_000 < platform.token_capacity < 200_000

    def test_70b_needs_multiple_gpus(self):
        with pytest.raises(PlatformError):
            make_platform("Llama-2-70B-Chat", "A100-80G", tensor_parallel=1)
        platform = make_platform("Llama-2-70B-Chat", "A100-80G", tensor_parallel=4)
        assert platform.token_capacity > 0

    def test_rejects_non_positive_tp(self):
        with pytest.raises(PlatformError):
            make_platform("Llama-2-7B-Chat", "A100-80G", tensor_parallel=0)

    def test_tp_overhead_depends_on_nvlink(self):
        nvlink = make_platform("Llama-2-70B-Chat", "A100-80G", tensor_parallel=4)
        pcie = make_platform("Llama-2-70B-Chat", "RTX-4090", tensor_parallel=8)
        assert nvlink.tp_overhead < pcie.tp_overhead
        single = make_platform("Llama-2-7B-Chat", "A100-80G")
        assert single.tp_overhead == 0.0

    def test_aggregate_rates_scale_with_tp(self):
        single = make_platform("Llama-2-13B-Chat", "A100-80G", 1)
        double = make_platform("Llama-2-13B-Chat", "A100-80G", 2)
        assert double.aggregate_flops > single.aggregate_flops
        assert double.aggregate_bandwidth > single.aggregate_bandwidth

    def test_describe_mentions_capacity(self):
        platform = paper_platform("7b-a100")
        assert "KV token slots" in platform.describe()

    def test_all_paper_platforms_construct(self):
        for key in PAPER_PLATFORMS:
            platform = paper_platform(key)
            assert isinstance(platform, Platform)
            assert platform.token_capacity > 0

    def test_unknown_platform_key(self):
        with pytest.raises(KeyError):
            paper_platform("3b-tpu")

    def test_bigger_model_smaller_capacity_same_gpu(self):
        small = paper_platform("7b-a100")
        large = paper_platform("13b-a100")
        assert large.token_capacity < small.token_capacity

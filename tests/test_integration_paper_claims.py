"""Integration tests asserting the paper's qualitative claims on scaled-down runs.

These tests run the full serving simulation (clients -> scheduler -> engine ->
metrics) with small token capacities and scaled workloads, and check that the
*relationships* the paper reports hold:

* conservative scheduling: no evictions but low memory utilisation and the
  most decoding steps;
* aggressive scheduling: high utilisation but many evictions under
  decode-heavy load;
* Past-Future scheduling: utilisation close to the aggressive scheduler with
  far fewer evictions, and goodput at least as good as both baselines under
  heavy load.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig, memory_report_from_run, run_experiment
from repro.serving.sla import SLASpec
from repro.workloads.distributions import UniformLengthSpec, generate_uniform_workload


# Scaled-down analogue of the paper's decode-heavy Distribution-1: inputs are
# short, outputs dominate the KV footprint.
DECODE_HEAVY = UniformLengthSpec("scaled-decode-heavy", 2, 128, 64, 192)
# Scaled-down analogue of prefill-heavy Distribution-3.
PREFILL_HEAVY = UniformLengthSpec("scaled-prefill-heavy", 64, 192, 2, 128)

CAPACITY = 2048
NUM_REQUESTS = 80
NUM_CLIENTS = 24
#: SLA scaled to the small simulated platform: generous TTFT, tight MTPOT so
#: that eviction stalls are punished just as in the paper.
SLA = SLASpec(ttft_limit=20.0, mtpot_limit=0.5)


def run(scheduler_name: str, workload, seed_kwargs=None, num_clients=NUM_CLIENTS):
    config = ExperimentConfig(
        platform=run.platform,
        scheduler_name=scheduler_name,
        scheduler_kwargs=seed_kwargs or {},
        num_clients=num_clients,
        token_capacity_override=CAPACITY,
    )
    result = run_experiment(config, workload)
    assert result.completed, f"{scheduler_name} run did not complete"
    return result


@pytest.fixture(scope="module", autouse=True)
def _attach_platform(platform_7b_module):
    run.platform = platform_7b_module


@pytest.fixture(scope="module")
def platform_7b_module():
    from repro.hardware.platform import paper_platform

    return paper_platform("7b-a100")


@pytest.fixture(scope="module")
def decode_heavy_workload():
    return generate_uniform_workload(DECODE_HEAVY, NUM_REQUESTS, seed=21)


@pytest.fixture(scope="module")
def prefill_heavy_workload():
    return generate_uniform_workload(PREFILL_HEAVY, NUM_REQUESTS, seed=22)


@pytest.fixture(scope="module")
def decode_heavy_results(decode_heavy_workload):
    return {
        "past-future": run("past-future", decode_heavy_workload, {"reserved_fraction": 0.05, "seed": 1}),
        "aggressive": run("aggressive", decode_heavy_workload, {"watermark": 0.99}),
        "conservative": run("conservative", decode_heavy_workload),
        "oracle": run("oracle", decode_heavy_workload),
    }


class TestEvictionBehaviour:
    def test_conservative_never_evicts(self, decode_heavy_results):
        assert decode_heavy_results["conservative"].total_evictions == 0

    def test_oracle_never_evicts(self, decode_heavy_results):
        assert decode_heavy_results["oracle"].total_evictions == 0

    def test_aggressive_evicts_heavily_on_decode_heavy_load(self, decode_heavy_results):
        aggressive = decode_heavy_results["aggressive"]
        assert aggressive.total_evictions > 0
        assert memory_report_from_run(aggressive).evicted_request_fraction > 0.1

    def test_past_future_evicts_far_less_than_aggressive(self, decode_heavy_results):
        past_future = decode_heavy_results["past-future"].total_evictions
        aggressive = decode_heavy_results["aggressive"].total_evictions
        assert past_future < aggressive

    def test_all_requests_complete_for_every_scheduler(self, decode_heavy_results):
        for result in decode_heavy_results.values():
            assert len(result.finished_requests) == NUM_REQUESTS


class TestMemoryUtilisation:
    def test_conservative_has_lowest_utilisation(self, decode_heavy_results):
        reports = {name: memory_report_from_run(r) for name, r in decode_heavy_results.items()}
        assert reports["conservative"].consumed_memory_fraction < reports["past-future"].consumed_memory_fraction
        assert reports["conservative"].consumed_memory_fraction < reports["aggressive"].consumed_memory_fraction

    def test_past_future_utilisation_close_to_aggressive(self, decode_heavy_results):
        reports = {name: memory_report_from_run(r) for name, r in decode_heavy_results.items()}
        assert reports["past-future"].consumed_memory_fraction >= (
            0.75 * reports["aggressive"].consumed_memory_fraction
        )

    def test_conservative_takes_most_decoding_steps(self, decode_heavy_results):
        reports = {name: memory_report_from_run(r) for name, r in decode_heavy_results.items()}
        assert reports["conservative"].decoding_steps >= reports["past-future"].decoding_steps
        assert reports["conservative"].decoding_steps >= reports["oracle"].decoding_steps

    def test_future_required_memory_tracks_consumed(self, decode_heavy_results):
        for result in decode_heavy_results.values():
            report = memory_report_from_run(result)
            assert report.future_required_fraction >= report.consumed_memory_fraction


class TestGoodput:
    def test_past_future_goodput_at_least_matches_baselines_under_load(self, decode_heavy_results):
        goodputs = {name: result.goodput(SLA) for name, result in decode_heavy_results.items()}
        assert goodputs["past-future"] >= goodputs["aggressive"] * 0.95
        assert goodputs["past-future"] >= goodputs["conservative"] * 0.95

    def test_aggressive_goodput_collapses_relative_to_throughput(self, decode_heavy_results):
        aggressive = decode_heavy_results["aggressive"]
        summary = aggressive.throughput_summary(SLA)
        # Evictions break the MTPOT bound for part of the requests, so goodput
        # falls visibly below raw throughput.
        assert summary.goodput < summary.throughput

    def test_past_future_retains_most_of_its_throughput_as_goodput(self, decode_heavy_results):
        summary = decode_heavy_results["past-future"].throughput_summary(SLA)
        assert summary.goodput >= 0.8 * summary.throughput


class TestPrefillHeavyWorkload:
    def test_aggressive_is_safe_when_outputs_are_short(self, prefill_heavy_workload):
        aggressive = run("aggressive", prefill_heavy_workload, {"watermark": 0.95})
        fraction = memory_report_from_run(aggressive).evicted_request_fraction
        assert fraction < 0.2

    def test_past_future_handles_prefill_heavy_load_too(self, prefill_heavy_workload):
        past_future = run("past-future", prefill_heavy_workload, {"reserved_fraction": 0.05, "seed": 2})
        conservative = run("conservative", prefill_heavy_workload)
        assert past_future.goodput(SLA) >= conservative.goodput(SLA)


class TestReservedFractionAblation:
    def test_larger_reserve_means_fewer_evictions(self, decode_heavy_workload):
        small_reserve = run("past-future", decode_heavy_workload, {"reserved_fraction": 0.03, "seed": 3})
        large_reserve = run("past-future", decode_heavy_workload, {"reserved_fraction": 0.20, "seed": 3})
        assert large_reserve.total_evictions <= small_reserve.total_evictions

    def test_larger_reserve_means_more_decoding_steps(self, decode_heavy_workload):
        small_reserve = run("past-future", decode_heavy_workload, {"reserved_fraction": 0.03, "seed": 4})
        large_reserve = run("past-future", decode_heavy_workload, {"reserved_fraction": 0.20, "seed": 4})
        assert (
            memory_report_from_run(large_reserve).decoding_steps
            >= memory_report_from_run(small_reserve).decoding_steps
        )

"""Tests for the paged KV-cache pool."""

from __future__ import annotations

import pytest

from repro.memory.block_manager import (
    AllocationError,
    BlockKVCachePool,
    OutOfMemoryError,
)


class TestConstruction:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BlockKVCachePool(0)

    def test_rejects_non_positive_block_size(self):
        with pytest.raises(ValueError):
            BlockKVCachePool(64, block_size=0)

    def test_rejects_capacity_smaller_than_block(self):
        with pytest.raises(ValueError):
            BlockKVCachePool(4, block_size=8)

    def test_capacity_rounds_down_to_block_multiple(self):
        pool = BlockKVCachePool(100, block_size=16)
        assert pool.num_blocks == 6
        assert pool.token_capacity == 96


class TestAllocation:
    def test_allocate_and_free(self):
        pool = BlockKVCachePool(64, block_size=16)
        table = pool.allocate("a", 20)
        assert table.num_tokens == 20
        assert len(table.block_ids) == 2
        assert pool.used_blocks == 2
        assert pool.free("a") == 2
        assert pool.used_blocks == 0

    def test_used_tokens_tracks_allocations(self):
        pool = BlockKVCachePool(64, block_size=16)
        pool.allocate("a", 10)
        pool.allocate("b", 5)
        assert pool.used_tokens == 15

    def test_double_allocation_rejected(self):
        pool = BlockKVCachePool(64, block_size=16)
        pool.allocate("a", 4)
        with pytest.raises(AllocationError):
            pool.allocate("a", 4)

    def test_non_positive_allocation_rejected(self):
        pool = BlockKVCachePool(64)
        with pytest.raises(AllocationError):
            pool.allocate("a", 0)

    def test_allocation_exceeding_capacity_raises(self):
        pool = BlockKVCachePool(64, block_size=16)
        with pytest.raises(OutOfMemoryError):
            pool.allocate("a", 65)

    def test_can_allocate(self):
        pool = BlockKVCachePool(64, block_size=16)
        assert pool.can_allocate(64)
        assert not pool.can_allocate(65)
        pool.allocate("a", 33)
        assert pool.can_allocate(16)
        assert not pool.can_allocate(32)

    def test_free_unknown_request_is_noop(self):
        pool = BlockKVCachePool(64)
        assert pool.free("ghost") == 0

    def test_holds_and_tokens_of(self):
        pool = BlockKVCachePool(64)
        pool.allocate("a", 7)
        assert pool.holds("a")
        assert not pool.holds("b")
        assert pool.tokens_of("a") == 7
        assert pool.tokens_of("b") == 0


class TestAppendToken:
    def test_append_fills_partial_block_without_new_block(self):
        pool = BlockKVCachePool(64, block_size=16)
        pool.allocate("a", 10)
        blocks_before = pool.used_blocks
        pool.append_token("a")
        assert pool.used_blocks == blocks_before
        assert pool.tokens_of("a") == 11

    def test_append_grabs_new_block_when_full(self):
        pool = BlockKVCachePool(64, block_size=4)
        pool.allocate("a", 4)
        pool.append_token("a")
        assert pool.used_blocks == 2

    def test_append_without_allocation_rejected(self):
        pool = BlockKVCachePool(64)
        with pytest.raises(AllocationError):
            pool.append_token("ghost")

    def test_append_raises_when_pool_exhausted(self):
        pool = BlockKVCachePool(8, block_size=4)
        pool.allocate("a", 8)
        with pytest.raises(OutOfMemoryError):
            pool.append_token("a")

    def test_can_append_token(self):
        pool = BlockKVCachePool(8, block_size=4)
        pool.allocate("a", 7)
        assert pool.can_append_token("a")   # slack in last block
        pool.append_token("a")
        assert not pool.can_append_token("a")  # full and no free block
        assert not pool.can_append_token("ghost")


class TestAccounting:
    def test_free_tokens_counts_partial_slack(self):
        pool = BlockKVCachePool(32, block_size=16)
        pool.allocate("a", 10)
        # One free block (16) plus 6 slack tokens in a's partial block.
        assert pool.free_tokens == 22

    def test_utilization(self):
        pool = BlockKVCachePool(100, block_size=1)
        pool.allocate("a", 25)
        assert pool.utilization == pytest.approx(0.25)

    def test_peak_tokens_used_tracks_high_water_mark(self):
        pool = BlockKVCachePool(100, block_size=1)
        pool.allocate("a", 40)
        pool.allocate("b", 20)
        pool.free("a")
        assert pool.peak_tokens_used == 60
        assert pool.used_tokens == 20

    def test_reset(self):
        pool = BlockKVCachePool(100, block_size=1)
        pool.allocate("a", 40)
        pool.reset()
        assert pool.used_tokens == 0
        assert pool.free_blocks == pool.num_blocks
        assert pool.peak_tokens_used == 0

    def test_owners_and_block_table(self):
        pool = BlockKVCachePool(64, block_size=16)
        pool.allocate("a", 5)
        assert pool.owners() == ["a"]
        assert pool.block_table("a").num_tokens == 5
        with pytest.raises(AllocationError):
            pool.block_table("ghost")

    def test_block_reuse_after_free(self):
        pool = BlockKVCachePool(32, block_size=16)
        pool.allocate("a", 32)
        pool.free("a")
        pool.allocate("b", 32)
        assert pool.used_blocks == 2


class TestTokenGranularity:
    def test_block_size_one_has_no_rounding_waste(self):
        pool = BlockKVCachePool(100, block_size=1)
        pool.allocate("a", 33)
        pool.allocate("b", 67)
        assert pool.free_tokens == 0
        assert pool.used_tokens == 100

"""Tests for the contiguous (FasterTransformer-style) allocator."""

from __future__ import annotations

import pytest

from repro.memory.block_manager import AllocationError, OutOfMemoryError
from repro.memory.contiguous import ContiguousKVCachePool


class TestReserve:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ContiguousKVCachePool(0)

    def test_simple_reserve_and_free(self):
        pool = ContiguousKVCachePool(100)
        extent = pool.reserve("a", 40, used_tokens=10)
        assert extent.start == 0
        assert extent.length == 40
        assert pool.reserved_tokens == 40
        assert pool.used_tokens == 10
        assert pool.free("a") == 40
        assert pool.reserved_tokens == 0

    def test_duplicate_reservation_rejected(self):
        pool = ContiguousKVCachePool(100)
        pool.reserve("a", 10)
        with pytest.raises(AllocationError):
            pool.reserve("a", 10)

    def test_invalid_sizes_rejected(self):
        pool = ContiguousKVCachePool(100)
        with pytest.raises(AllocationError):
            pool.reserve("a", 0)
        with pytest.raises(AllocationError):
            pool.reserve("b", 10, used_tokens=11)

    def test_reservation_larger_than_capacity_raises(self):
        pool = ContiguousKVCachePool(100)
        with pytest.raises(OutOfMemoryError):
            pool.reserve("a", 101)

    def test_first_fit_places_in_earliest_gap(self):
        pool = ContiguousKVCachePool(100)
        pool.reserve("a", 30)
        pool.reserve("b", 30)
        pool.free("a")
        extent = pool.reserve("c", 20)
        assert extent.start == 0


class TestFragmentation:
    def _fragmented_pool(self) -> ContiguousKVCachePool:
        # Reserve 25-token extents at 0, 25, 50, 75 then free alternating ones,
        # leaving two 25-token holes that are not adjacent.
        pool = ContiguousKVCachePool(100)
        for index in range(4):
            pool.reserve(f"r{index}", 25)
        pool.free("r0")
        pool.free("r2")
        return pool

    def test_total_free_does_not_imply_contiguous_fit(self):
        pool = self._fragmented_pool()
        assert pool.free_tokens == 50
        assert pool.largest_free_extent == 25
        assert not pool.can_reserve(40)
        with pytest.raises(OutOfMemoryError):
            pool.reserve("big", 40)

    def test_external_fragmentation_metric(self):
        pool = self._fragmented_pool()
        assert pool.external_fragmentation == pytest.approx(0.5)

    def test_unfragmented_pool_reports_zero(self):
        pool = ContiguousKVCachePool(100)
        pool.reserve("a", 30)
        assert pool.external_fragmentation == pytest.approx(0.0)

    def test_full_pool_reports_zero_fragmentation(self):
        pool = ContiguousKVCachePool(50)
        pool.reserve("a", 50)
        assert pool.external_fragmentation == 0.0


class TestAppendToken:
    def test_append_consumes_reservation(self):
        pool = ContiguousKVCachePool(50)
        pool.reserve("a", 10, used_tokens=9)
        pool.append_token("a")
        assert pool.used_tokens == 10

    def test_append_beyond_reservation_raises(self):
        pool = ContiguousKVCachePool(50)
        pool.reserve("a", 2, used_tokens=2)
        with pytest.raises(OutOfMemoryError):
            pool.append_token("a")

    def test_append_unknown_request_rejected(self):
        pool = ContiguousKVCachePool(50)
        with pytest.raises(AllocationError):
            pool.append_token("ghost")

    def test_owners(self):
        pool = ContiguousKVCachePool(50)
        pool.reserve("a", 10)
        pool.reserve("b", 10)
        assert set(pool.owners()) == {"a", "b"}


class TestPagedVsContiguous:
    def test_paged_pool_avoids_external_fragmentation(self):
        """The motivating comparison: a paged pool serves a request that the
        fragmented contiguous pool cannot, despite identical free space."""
        from repro.memory.block_manager import BlockKVCachePool

        contiguous = ContiguousKVCachePool(100)
        for index in range(4):
            contiguous.reserve(f"r{index}", 25)
        contiguous.free("r0")
        contiguous.free("r2")
        assert not contiguous.can_reserve(40)

        paged = BlockKVCachePool(100, block_size=1)
        for index in range(4):
            paged.allocate(f"r{index}", 25)
        paged.free("r0")
        paged.free("r2")
        assert paged.can_allocate(40)

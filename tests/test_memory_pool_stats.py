"""Tests for the memory timeline accounting."""

from __future__ import annotations

import pytest

from repro.memory.pool_stats import MemoryTimeline


def record(timeline: MemoryTimeline, used: int, future: int, running: int = 1, queued: int = 0):
    step = len(timeline) + 1
    timeline.record(
        step=step,
        time=float(step),
        used_tokens=used,
        future_required_tokens=future,
        running_requests=running,
        queued_requests=queued,
    )


class TestAverages:
    def test_empty_timeline_reports_zero(self):
        timeline = MemoryTimeline(token_capacity=100)
        assert timeline.average_consumed_fraction == 0.0
        assert timeline.average_future_required_fraction == 0.0
        assert timeline.average_batch_size == 0.0

    def test_average_consumed_fraction(self):
        timeline = MemoryTimeline(token_capacity=100)
        record(timeline, used=50, future=60)
        record(timeline, used=70, future=80)
        assert timeline.average_consumed_fraction == pytest.approx(0.6)
        assert timeline.average_future_required_fraction == pytest.approx(0.7)

    def test_idle_steps_excluded_from_averages(self):
        timeline = MemoryTimeline(token_capacity=100)
        record(timeline, used=80, future=90)
        record(timeline, used=0, future=0, running=0)
        assert timeline.average_consumed_fraction == pytest.approx(0.8)

    def test_average_batch_size(self):
        timeline = MemoryTimeline(token_capacity=100)
        record(timeline, used=10, future=10, running=2)
        record(timeline, used=10, future=10, running=4)
        assert timeline.average_batch_size == pytest.approx(3.0)


class TestPeaks:
    def test_peak_fractions(self):
        timeline = MemoryTimeline(token_capacity=200)
        record(timeline, used=50, future=150)
        record(timeline, used=120, future=210)
        assert timeline.peak_consumed_fraction == pytest.approx(0.6)
        assert timeline.peak_future_required_fraction == pytest.approx(1.05)

    def test_peaks_of_empty_timeline(self):
        timeline = MemoryTimeline(token_capacity=200)
        assert timeline.peak_consumed_fraction == 0.0
        assert timeline.peak_future_required_fraction == 0.0

    def test_oversubscribed_steps(self):
        timeline = MemoryTimeline(token_capacity=100)
        record(timeline, used=90, future=120)
        record(timeline, used=80, future=90)
        record(timeline, used=95, future=101)
        assert timeline.oversubscribed_steps() == 2

    def test_len(self):
        timeline = MemoryTimeline(token_capacity=100)
        record(timeline, used=1, future=1)
        assert len(timeline) == 1

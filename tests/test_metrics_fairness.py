"""Tests for per-tenant fairness metrics (Jain's index, service summaries)."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.engine.request import Request
from repro.metrics.fairness import (
    jains_index,
    max_min_service_ratio,
    summarize_tenant_fairness,
)
from repro.serving.sla import SLASpec
from tests.conftest import make_spec

SLA = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)


def finished_request(
    request_id: str,
    user_id: str | None = None,
    app_id: str | None = None,
    tokens: int = 4,
    gap: float = 0.1,
) -> Request:
    """A finished request generating ``tokens`` output tokens at ``gap`` cadence."""
    spec = replace(
        make_spec(request_id=request_id, output_length=tokens),
        user_id=user_id,
        app_id=app_id,
    )
    request = Request(spec=spec, arrival_time=0.0)
    request.admit(0.0)
    request.note_prefill(request.recompute_tokens)
    for step in range(tokens):
        request.deliver_token(0.1 + gap * step)
    request.finish(0.1 + gap * (tokens - 1))
    return request


class TestJainsIndex:
    def test_equal_allocation_is_one(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jains_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
        assert jains_index([1.0, 2.0, 3.0]) == pytest.approx(36.0 / 42.0)

    def test_empty_is_one(self):
        assert jains_index([]) == 1.0

    def test_single_tenant_is_one(self):
        assert jains_index([42.0]) == 1.0
        assert jains_index([0.0]) == 1.0

    def test_all_zero_is_one_not_nan(self):
        result = jains_index([0.0, 0.0, 0.0])
        assert result == 1.0
        assert not math.isnan(result)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            jains_index([1.0, -0.1])

    def test_scale_invariant(self):
        assert jains_index([1.0, 2.0, 4.0]) == pytest.approx(
            jains_index([100.0, 200.0, 400.0])
        )


class TestMaxMinServiceRatio:
    def test_equal_is_one(self):
        assert max_min_service_ratio([3.0, 3.0]) == 1.0

    def test_known_ratio(self):
        assert max_min_service_ratio([2.0, 8.0]) == pytest.approx(4.0)

    def test_starvation_is_inf(self):
        assert math.isinf(max_min_service_ratio([5.0, 0.0]))

    def test_degenerate_cases_are_one(self):
        assert max_min_service_ratio([]) == 1.0
        assert max_min_service_ratio([7.0]) == 1.0
        assert max_min_service_ratio([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            max_min_service_ratio([-1.0])


class TestSummarizeTenantFairness:
    def test_groups_by_user(self):
        requests = [
            finished_request("a", user_id="alice", tokens=4),
            finished_request("b", user_id="alice", tokens=4),
            finished_request("c", user_id="bob", tokens=8),
        ]
        summary = summarize_tenant_fairness(requests, duration=10.0, sla=SLA)
        assert summary.group_by == "user"
        assert summary.num_tenants == 2
        assert summary.per_tenant["alice"].served_tokens == 8
        assert summary.per_tenant["bob"].served_tokens == 8
        assert summary.jain_served_tokens == pytest.approx(1.0)
        assert summary.total_served_tokens == 16

    def test_groups_by_app(self):
        requests = [
            finished_request("a", user_id="alice", app_id="chat"),
            finished_request("b", user_id="bob", app_id="chat"),
            finished_request("c", user_id="carol", app_id="search"),
        ]
        summary = summarize_tenant_fairness(
            requests, duration=10.0, sla=SLA, group_by="app"
        )
        assert summary.group_by == "app"
        assert sorted(summary.per_tenant) == ["chat", "search"]
        assert summary.per_tenant["chat"].finished_requests == 2

    def test_invalid_group_by_rejected(self):
        with pytest.raises(ValueError, match="group_by"):
            summarize_tenant_fairness([], duration=1.0, sla=SLA, group_by="nope")

    def test_tenantless_requests_excluded(self):
        requests = [
            finished_request("a", user_id="alice"),
            finished_request("b", user_id=None),
        ]
        summary = summarize_tenant_fairness(requests, duration=10.0, sla=SLA)
        assert summary.num_tenants == 1
        empty = summarize_tenant_fairness(
            [finished_request("c")], duration=10.0, sla=SLA
        )
        assert empty.num_tenants == 0
        assert empty.jain_goodput == 1.0

    def test_rejected_requests_count_as_submitted(self):
        served = [finished_request("a", user_id="alice")]
        rejected = [
            Request(
                spec=replace(make_spec(request_id="r"), user_id="bob"),
                arrival_time=0.0,
            )
        ]
        summary = summarize_tenant_fairness(
            served, duration=10.0, sla=SLA, rejected=rejected
        )
        assert summary.per_tenant["bob"].submitted_requests == 1
        assert summary.per_tenant["bob"].rejected_requests == 1
        assert summary.per_tenant["bob"].served_tokens == 0
        assert math.isinf(summary.service_ratio)

    def test_noncompliant_tokens_not_goodput(self):
        # A 2 s inter-token stall breaks the 1.5 s MTPOT bound.
        slow = finished_request("slow", user_id="alice", gap=2.0)
        fast = finished_request("fast", user_id="bob")
        summary = summarize_tenant_fairness([slow, fast], duration=10.0, sla=SLA)
        assert summary.per_tenant["alice"].compliant_tokens == 0
        assert summary.per_tenant["alice"].served_tokens > 0
        assert summary.per_tenant["bob"].compliant_tokens > 0
        assert summary.per_tenant["bob"].goodput == pytest.approx(
            summary.per_tenant["bob"].compliant_tokens / 10.0
        )

    def test_zero_duration_has_zero_goodput(self):
        summary = summarize_tenant_fairness(
            [finished_request("a", user_id="alice")], duration=0.0, sla=SLA
        )
        assert summary.per_tenant["alice"].goodput == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            summarize_tenant_fairness([], duration=-1.0, sla=SLA)

    def test_as_row_reports_inf_ratio(self):
        served = [finished_request("a", user_id="alice")]
        rejected = [
            Request(
                spec=replace(make_spec(request_id="r"), user_id="bob"),
                arrival_time=0.0,
            )
        ]
        row = summarize_tenant_fairness(
            served, duration=10.0, sla=SLA, rejected=rejected
        ).as_row()
        assert row["service_ratio"] == "inf"
        assert row["tenants"] == 2

"""Tests for fleet-level metrics aggregation."""

from __future__ import annotations

import math

import pytest

from repro.engine.request import Request
from repro.metrics.fleet import (
    FleetSizeSample,
    ReplicaLifetime,
    load_imbalance,
    summarize_fleet,
    total_replica_seconds,
)
from repro.serving.sla import SLASpec
from tests.conftest import make_spec

SLA = SLASpec(ttft_limit=10.0, mtpot_limit=1.5)


def finished_request(request_id: str, tokens: int = 4, gap: float = 0.1) -> Request:
    """A request that generated ``tokens`` output tokens at a steady cadence."""
    request = Request(spec=make_spec(request_id=request_id, output_length=tokens), arrival_time=0.0)
    request.admit(0.0)
    request.note_prefill(request.recompute_tokens)
    for step in range(tokens):
        request.deliver_token(0.1 + gap * step)
    request.finish(0.1 + gap * (tokens - 1))
    return request


class TestLoadImbalance:
    def test_balanced_fleet_is_zero(self):
        assert load_imbalance([10.0, 10.0, 10.0, 10.0]) == 0.0

    def test_idle_fleet_is_zero(self):
        assert load_imbalance([0.0, 0.0]) == 0.0
        assert load_imbalance([]) == 0.0

    def test_known_coefficient_of_variation(self):
        # loads (2, 4): mean 3, std 1 -> CV = 1/3.
        assert load_imbalance([2.0, 4.0]) == pytest.approx(1.0 / 3.0)

    def test_skew_raises_imbalance(self):
        assert load_imbalance([1.0, 1.0, 18.0]) > load_imbalance([5.0, 7.0, 8.0])

    def test_single_replica_fleet_is_zero(self):
        # Regression: a one-replica fleet has nothing to be imbalanced
        # against and must return exactly 0.0, loaded or idle.
        assert load_imbalance([42.0]) == 0.0
        assert load_imbalance([0.0]) == 0.0

    def test_all_zero_loads_are_zero_not_nan(self):
        result = load_imbalance([0.0, 0.0, 0.0, 0.0])
        assert result == 0.0
        assert not math.isnan(result)

    def test_non_finite_mean_is_zero(self):
        assert load_imbalance([float("nan"), 1.0]) == 0.0
        assert load_imbalance([float("inf"), 1.0]) == 0.0


class TestSummarizeFleet:
    def test_counts_and_tokens(self):
        per_replica = [
            [finished_request("a", tokens=4), finished_request("b", tokens=4)],
            [finished_request("c", tokens=8)],
        ]
        summary = summarize_fleet(per_replica, duration=10.0, sla=SLA, rejected=3)
        assert summary.num_replicas == 2
        assert summary.submitted_requests == 6
        assert summary.rejected_requests == 3
        assert summary.finished_requests == 3
        assert summary.total_output_tokens == 16
        assert summary.throughput == pytest.approx(1.6)

    def test_goodput_counts_only_compliant(self):
        # One request with a 2 s inter-token stall breaks the 1.5 s MTPOT SLA.
        per_replica = [
            [finished_request("ok", tokens=4)],
            [finished_request("stalled", tokens=4, gap=2.0)],
        ]
        summary = summarize_fleet(per_replica, duration=10.0, sla=SLA)
        assert summary.goodput == pytest.approx(0.4)
        assert summary.throughput == pytest.approx(0.8)
        assert summary.sla_attainment == pytest.approx(0.5)

    def test_latency_percentiles_cover_all_replicas(self):
        per_replica = [
            [finished_request("fast", tokens=4, gap=0.05)],
            [finished_request("slow", tokens=4, gap=0.4)],
        ]
        summary = summarize_fleet(per_replica, duration=5.0, sla=SLA)
        assert summary.p99_tpot > summary.p50_tpot
        assert summary.p50_ttft == pytest.approx(0.1)

    def test_imbalance_from_finished_tokens(self):
        per_replica = [
            [finished_request("a", tokens=2)],
            [finished_request("b", tokens=6)],
        ]
        summary = summarize_fleet(per_replica, duration=5.0, sla=SLA)
        assert summary.load_imbalance == pytest.approx(0.5)

    def test_empty_fleet(self):
        summary = summarize_fleet([[], []], duration=0.0, sla=SLA)
        assert summary.finished_requests == 0
        assert summary.goodput == 0.0
        assert summary.load_imbalance == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            summarize_fleet([[]], duration=-1.0, sla=SLA)

    def test_as_row_is_render_table_ready(self):
        summary = summarize_fleet([[finished_request("a")]], duration=1.0, sla=SLA)
        row = summary.as_row()
        assert set(row) == {
            "replicas",
            "goodput_tok_s",
            "goodput_per_rs",
            "replica_s",
            "throughput_tok_s",
            "sla_attainment",
            "p99_ttft_s",
            "p99_tpot_s",
            "imbalance_cv",
            "rejected",
        }

    def test_replica_seconds_default_is_static_fleet(self):
        summary = summarize_fleet([[finished_request("a")], []], duration=5.0, sla=SLA)
        assert summary.replica_seconds == pytest.approx(10.0)
        assert summary.avg_fleet_size == pytest.approx(2.0)
        # goodput-per-replica-second = compliant tokens / replica-seconds.
        assert summary.goodput_per_replica_second == pytest.approx(
            summary.goodput * summary.duration / summary.replica_seconds
        )

    def test_explicit_replica_seconds_flow_through(self):
        summary = summarize_fleet(
            [[finished_request("a")], []], duration=5.0, sla=SLA, replica_seconds=6.0
        )
        assert summary.replica_seconds == pytest.approx(6.0)
        assert summary.avg_fleet_size == pytest.approx(1.2)


class TestReplicaLifetime:
    def test_seconds_until_run_end_when_alive(self):
        life = ReplicaLifetime(replica_id=0, launched_at=1.0, ready_at=2.0)
        assert life.seconds(end_time=10.0) == pytest.approx(9.0)

    def test_seconds_until_retirement(self):
        life = ReplicaLifetime(replica_id=0, launched_at=1.0, ready_at=2.0, retired_at=4.0)
        assert life.seconds(end_time=10.0) == pytest.approx(3.0)

    def test_warming_past_run_end_accrues_nothing(self):
        # A replica launched near the end may still be warming at makespan.
        life = ReplicaLifetime(replica_id=0, launched_at=8.0, ready_at=11.0)
        assert life.seconds(end_time=5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="ready_at"):
            ReplicaLifetime(replica_id=0, launched_at=2.0, ready_at=1.0)
        with pytest.raises(ValueError, match="retired_at"):
            ReplicaLifetime(replica_id=0, launched_at=2.0, ready_at=2.0, retired_at=1.0)

    def test_total_replica_seconds(self):
        lifetimes = [
            ReplicaLifetime(replica_id=0, launched_at=0.0, ready_at=0.0),
            ReplicaLifetime(replica_id=1, launched_at=0.0, ready_at=0.0, retired_at=4.0),
        ]
        assert total_replica_seconds(lifetimes, end_time=10.0) == pytest.approx(14.0)


class TestFleetSizeSample:
    def test_provisioned_counts_active_and_warming(self):
        sample = FleetSizeSample(time=1.0, active=3, warming=2, draining=1)
        assert sample.provisioned == 5


class TestPerClassAccounting:
    def make_class_request(self, request_id: str, sla_class: str, tokens: int = 4, gap: float = 0.1) -> Request:
        spec = make_spec(request_id=request_id, output_length=tokens).with_sla_class(sla_class)
        request = Request(spec=spec, arrival_time=0.0)
        request.admit(0.0)
        request.note_prefill(request.recompute_tokens)
        for step in range(tokens):
            request.deliver_token(0.1 + gap * step)
        request.finish(0.1 + gap * (tokens - 1))
        return request

    def test_class_slices_partition_the_fleet(self):
        requests = [
            self.make_class_request("i0", "interactive"),
            self.make_class_request("i1", "interactive"),
            self.make_class_request("b0", "batch", tokens=8),
        ]
        summary = summarize_fleet([requests], duration=2.0, sla=SLA)
        assert set(summary.per_class) == {"batch", "interactive"}
        interactive = summary.per_class["interactive"]
        batch = summary.per_class["batch"]
        assert interactive.finished_requests == 2
        assert batch.finished_requests == 1
        assert interactive.total_output_tokens == 8
        assert batch.total_output_tokens == 8
        # Class slices add up to the fleet-level numbers.
        assert interactive.goodput + batch.goodput == pytest.approx(summary.goodput)

    def test_per_class_goodput_per_replica_second_shares_fleet_cost(self):
        requests = [
            self.make_class_request("i0", "interactive"),
            self.make_class_request("b0", "batch"),
        ]
        summary = summarize_fleet([requests, []], duration=2.0, sla=SLA, replica_seconds=8.0)
        for slice_summary in summary.per_class.values():
            assert slice_summary.goodput_per_replica_second == pytest.approx(
                slice_summary.goodput * 2.0 / 8.0
            )
        total = sum(s.goodput_per_replica_second for s in summary.per_class.values())
        assert total == pytest.approx(summary.goodput_per_replica_second)

    def test_rejected_requests_attributed_to_their_class(self):
        served = [self.make_class_request("i0", "interactive")]
        rejected = [
            Request(spec=make_spec(request_id="rb").with_sla_class("batch"), arrival_time=0.0),
            Request(spec=make_spec(request_id="ri").with_sla_class("interactive"), arrival_time=0.0),
            Request(spec=make_spec(request_id="rb2").with_sla_class("batch"), arrival_time=0.0),
        ]
        summary = summarize_fleet([served], duration=1.0, sla=SLA, rejected=rejected)
        assert summary.rejected_requests == 3
        assert summary.submitted_requests == 4
        assert summary.per_class["batch"].rejected_requests == 2
        assert summary.per_class["interactive"].rejected_requests == 1
        # A class present only through rejections still gets a (zeroed) slice.
        assert summary.per_class["batch"].finished_requests == 0
        assert summary.per_class["batch"].goodput == 0.0

    def test_rejected_count_still_accepted_for_compat(self):
        served = [self.make_class_request("i0", "interactive")]
        summary = summarize_fleet([served], duration=1.0, sla=SLA, rejected=5)
        assert summary.rejected_requests == 5
        assert summary.submitted_requests == 6
        assert summary.per_class["interactive"].rejected_requests == 0

    def test_class_deadlines_decide_class_compliance(self):
        sla = SLASpec(ttft_limit=10.0, mtpot_limit=1.5).with_class(
            "batch", ttft_limit=0.05, mtpot_limit=1.5
        )
        requests = [
            self.make_class_request("i0", "interactive"),  # TTFT 0.1 < 10
            self.make_class_request("b0", "batch"),        # TTFT 0.1 > 0.05
        ]
        summary = summarize_fleet([requests], duration=1.0, sla=sla)
        assert summary.per_class["interactive"].sla_attainment == 1.0
        assert summary.per_class["batch"].sla_attainment == 0.0
        assert summary.per_class["batch"].goodput == 0.0

    def test_class_rows_sorted_and_renderable(self):
        requests = [
            self.make_class_request("i0", "interactive"),
            self.make_class_request("b0", "batch"),
        ]
        summary = summarize_fleet([requests], duration=1.0, sla=SLA)
        rows = summary.class_rows()
        assert [row["class"] for row in rows] == ["batch", "interactive"]
        assert all("goodput_per_rs" in row for row in rows)

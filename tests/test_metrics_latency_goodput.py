"""Tests for latency summaries and throughput/goodput computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.request import Request
from repro.metrics.goodput import (
    evicted_request_fraction,
    eviction_rate,
    summarize_throughput,
)
from repro.metrics.latency import (
    LatencySummary,
    finished_requests,
    mtpots,
    percentile,
    summarize_latency,
    ttfts,
)
from repro.serving.sla import SLASpec
from tests.conftest import make_spec


def finished(arrival: float, token_times: list[float], evictions: int = 0) -> Request:
    request = Request(
        spec=make_spec(
            request_id=f"r-{arrival}-{len(token_times)}-{evictions}",
            output_length=len(token_times),
            max_new_tokens=len(token_times) + 1,
        ),
        arrival_time=arrival,
    )
    request.admit(arrival)
    request.note_prefill(request.prompt_tokens)
    for time in token_times:
        request.deliver_token(time)
    request.finish(token_times[-1])
    request.eviction_count = evictions
    return request


class TestLatencyHelpers:
    def test_finished_requests_filters_unfinished(self):
        done = finished(0.0, [1.0, 2.0])
        pending = Request(spec=make_spec(request_id="pending"), arrival_time=0.0)
        assert finished_requests([done, pending]) == [done]

    def test_ttfts_and_mtpots(self):
        requests = [finished(0.0, [1.0, 1.5]), finished(1.0, [4.0, 4.2])]
        np.testing.assert_allclose(ttfts(requests), [1.0, 3.0])
        np.testing.assert_allclose(mtpots(requests), [0.5, 0.2])

    def test_percentile_of_empty_is_zero(self):
        assert percentile(np.array([]), 99) == 0.0

    def test_summarize_latency(self):
        requests = [finished(0.0, [1.0, 2.0, 2.5]), finished(0.0, [2.0, 2.2])]
        summary = summarize_latency(requests)
        assert summary.count == 2
        assert summary.mean_ttft == pytest.approx(1.5)
        assert summary.max_mtpot == pytest.approx(1.0)
        assert summary.p99_ttft <= 2.0

    def test_summarize_latency_empty(self):
        assert summarize_latency([]) == LatencySummary.empty()


class TestThroughputSummary:
    def test_throughput_and_goodput_split(self):
        sla = SLASpec(ttft_limit=2.0, mtpot_limit=1.0)
        good = finished(0.0, [1.0, 1.5, 2.0])             # compliant, 3 tokens
        stalled = finished(0.0, [1.0, 5.0, 5.5])           # MTPOT violation, 3 tokens
        summary = summarize_throughput([good, stalled], duration=10.0, sla=sla)
        assert summary.total_output_tokens == 6
        assert summary.compliant_output_tokens == 3
        assert summary.throughput == pytest.approx(0.6)
        assert summary.goodput == pytest.approx(0.3)
        assert summary.compliance_rate == pytest.approx(0.5)

    def test_zero_duration(self):
        sla = SLASpec(ttft_limit=1, mtpot_limit=1)
        summary = summarize_throughput([], duration=0.0, sla=sla)
        assert summary.throughput == 0.0
        assert summary.goodput == 0.0
        assert summary.compliance_rate == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            summarize_throughput([], duration=-1.0, sla=SLASpec(ttft_limit=1, mtpot_limit=1))

    def test_unfinished_requests_excluded(self):
        sla = SLASpec(ttft_limit=10, mtpot_limit=10)
        pending = Request(spec=make_spec(request_id="pending"), arrival_time=0.0)
        summary = summarize_throughput([pending], duration=1.0, sla=sla)
        assert summary.total_output_tokens == 0


class TestEvictionMetrics:
    def test_eviction_rate(self):
        requests = [finished(0.0, [1.0], evictions=2), finished(0.0, [1.0], evictions=0)]
        assert eviction_rate(requests) == pytest.approx(1.0)
        assert evicted_request_fraction(requests) == pytest.approx(1.0)

    def test_rate_can_exceed_one(self):
        requests = [finished(0.0, [1.0], evictions=3)]
        assert eviction_rate(requests) == pytest.approx(3.0)

    def test_empty_requests(self):
        assert eviction_rate([]) == 0.0

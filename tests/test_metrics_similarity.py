"""Tests for windowed output-length distribution similarity (Fig. 3/4 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.similarity import (
    adjacent_window_similarity,
    cosine_similarity,
    default_bin_edges,
    length_histogram,
    partition_windows,
    window_similarity_matrix,
)
from repro.workloads.burstgpt import generate_api_trace, generate_conversation_trace


class TestHistogramBasics:
    def test_histogram_normalised(self):
        edges = default_bin_edges(1000, 16)
        hist = length_histogram([1, 5, 10, 200, 900], edges)
        assert hist.sum() == pytest.approx(1.0)

    def test_empty_histogram_is_zero(self):
        edges = default_bin_edges(100, 8)
        assert length_histogram([], edges).sum() == 0.0

    def test_default_bin_edges_validation(self):
        with pytest.raises(ValueError):
            default_bin_edges(1, 8)
        with pytest.raises(ValueError):
            default_bin_edges(100, 1)

    def test_default_bin_edges_monotone(self):
        edges = default_bin_edges(4096, 32)
        assert np.all(np.diff(edges) > 0)


class TestCosineSimilarity:
    def test_identical_histograms(self):
        hist = np.array([0.2, 0.3, 0.5])
        assert cosine_similarity(hist, hist) == pytest.approx(1.0)

    def test_orthogonal_histograms(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_histogram(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(3), np.ones(4))

    def test_bounded_by_one(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a, b = rng.random(10), rng.random(10)
            assert 0.0 <= cosine_similarity(a, b) <= 1.0 + 1e-12


class TestWindowPartitioning:
    def test_partition_drops_trailing_partial_window(self):
        windows = partition_windows(list(range(25)), window_size=10)
        assert len(windows) == 2
        assert list(windows[0]) == list(range(10))

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            partition_windows([1, 2, 3], 0)


class TestSimilarityMatrix:
    def test_matrix_is_symmetric_with_unit_diagonal(self):
        lengths = generate_conversation_trace(3000, seed=1).output_lengths
        sim = window_similarity_matrix(lengths, window_size=500)
        matrix = sim.matrix
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_stationary_trace_is_globally_similar(self):
        lengths = generate_conversation_trace(6000, seed=2).output_lengths
        sim = window_similarity_matrix(lengths, window_size=1000)
        assert sim.global_mean() > 0.9
        assert sim.diagonal_mean() > 0.9

    def test_drifting_trace_diagonal_beats_global(self):
        # The paper's key observation: for API traces, adjacent windows stay
        # similar while distant windows drift apart.
        lengths = generate_api_trace(24_000, seed=3, drift_period=8_000).output_lengths
        sim = window_similarity_matrix(lengths, window_size=1000)
        assert sim.diagonal_mean() > sim.global_mean()
        assert sim.diagonal_mean() > 0.8

    def test_too_few_windows(self):
        sim = window_similarity_matrix(list(range(100)), window_size=200)
        assert sim.num_windows == 0
        assert sim.global_mean() == 0.0
        assert sim.diagonal_mean() == 0.0


class TestAdjacentWindowSimilarity:
    def test_stationary_trace_high_similarity(self):
        lengths = generate_conversation_trace(8000, seed=4).output_lengths
        result = adjacent_window_similarity(lengths, historical_window=1000, running_window=500)
        assert result.diagonal_mean > 0.9

    def test_drifting_trace_diagonal_exceeds_global(self):
        lengths = generate_api_trace(30_000, seed=5, drift_period=8_000).output_lengths
        result = adjacent_window_similarity(lengths, historical_window=1000, running_window=500)
        assert result.diagonal_mean > result.global_mean

    def test_trace_too_short_returns_zero(self):
        result = adjacent_window_similarity([10, 20, 30], historical_window=100, running_window=100)
        assert result.diagonal_mean == 0.0
        assert result.global_mean == 0.0

    def test_rejects_non_positive_windows(self):
        with pytest.raises(ValueError):
            adjacent_window_similarity([1, 2, 3], historical_window=0, running_window=1)

    def test_result_carries_window_sizes(self):
        lengths = generate_conversation_trace(4000, seed=6).output_lengths
        result = adjacent_window_similarity(lengths, historical_window=800, running_window=400)
        assert result.historical_window == 800
        assert result.running_window == 400

"""Guard: the fairness subsystem must not perturb untenanted experiments.

This PR threaded tenant identities, VTC scheduling, and throttling through
the engine and both simulators.  None of that may move a single float in
existing experiments: with no tenants configured and no throttle installed,
the engine snapshots below must stay *byte-identical* to the ones the same
recipes produced before the fairness code existed.

The two digests were captured on the pre-fairness tree (and re-verified on
it via ``git stash``) with :func:`repro.analysis.perf.run_snapshot` /
``cluster_snapshot`` — the same serialization oracle the perf harness hashes
into ``BENCH_core.json``.  If either assertion fires, a "fairness" change
leaked into the default pipeline (for example, the engine's relaxed
out-of-order ``_admit`` path or the conditional snapshot keys).
"""

from __future__ import annotations

import pytest

from repro.analysis.perf import (
    _hash_parts,
    cluster_snapshot,
    run_fingerprint,
)
from repro.schedulers import create_scheduler
from repro.serving import ClusterSimulator, ServingSimulator
from repro.workloads.arrivals import assign_bursty_arrivals
from repro.workloads.sharegpt import generate_sharegpt_o1_workload, generate_sharegpt_workload
from repro.workloads.spec import scale_workload
from tests.helpers import assert_conservation, assert_fingerprint_neutral

#: Engine recipe digest captured before the fairness subsystem landed.
ENGINE_BASELINE = "c7f9d9f44e7f36be3cda4839722179382036c94c77818a31312038a535c2d307"

#: Cluster recipe digest captured before the fairness subsystem landed.
CLUSTER_BASELINE = "397dd2f5385ba1c36494bfec448f63caedcefcba7244a2cd38d18be021312367"


def test_engine_snapshot_matches_pre_fairness_baseline(platform_7b):
    workload = scale_workload(generate_sharegpt_workload(40, seed=3), 0.25)
    simulator = ServingSimulator(
        platform_7b,
        create_scheduler("past-future", reserved_fraction=0.05, seed=11),
        token_capacity_override=2048,
    )
    result = simulator.run_closed_loop(workload, num_clients=8)
    assert result.rejected == []
    assert_conservation(result)
    assert_fingerprint_neutral(result, ENGINE_BASELINE, label="fairness subsystem")


def test_cluster_snapshot_matches_pre_fairness_baseline(platform_7b):
    workload = assign_bursty_arrivals(
        scale_workload(generate_sharegpt_o1_workload(60, seed=5), 1 / 16),
        base_rate=1.0,
        burst_rate=50.0,
        burst_length=20.0,
        cycle_length=30.0,
        seed=7,
    )
    simulator = ClusterSimulator(
        platform=platform_7b,
        num_replicas=2,
        router="memory-aware",
        scheduler_name="aggressive",
        scheduler_kwargs={"watermark": 0.95},
        token_capacity_override=platform_7b.token_capacity // 128,
        chunked_prefill_tokens=512,
    )
    result = simulator.run_open_loop(workload)
    assert result.rejected == []
    assert_conservation(result)
    assert _hash_parts([repr(cluster_snapshot(result))]) == CLUSTER_BASELINE


@pytest.mark.parametrize("name", ["vtc", "weighted-vtc"])
def test_untenanted_fair_scheduler_matches_fcfs_baseline(platform_7b, name):
    """With no tenants, VTC degenerates to FIFO == the aggressive baseline."""
    workload = scale_workload(generate_sharegpt_workload(40, seed=3), 0.25)
    digests = {}
    for scheduler_name in ("aggressive", name):
        simulator = ServingSimulator(
            platform_7b,
            create_scheduler(scheduler_name, watermark=0.95),
            token_capacity_override=2048,
        )
        digests[scheduler_name] = run_fingerprint(
            simulator.run_closed_loop(workload, num_clients=8)
        )
    assert_fingerprint_neutral(
        digests[name], digests["aggressive"], label=f"untenanted {name}"
    )

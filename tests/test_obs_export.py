"""Chrome trace export and request-phase derivation."""

from __future__ import annotations

import json

from repro.obs import events as obs
from repro.obs.export import (
    FLEET_PID,
    chrome_trace,
    derive_request_phases,
    export_chrome_trace,
)
from repro.obs.tracer import RingTracer, TraceEvent
from repro.schedulers.conservative import ConservativeScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.server import ServingSimulator
from tests.conftest import TINY_CAPACITY, make_workload


def server_trace(platform) -> list[TraceEvent]:
    ring = RingTracer()
    sim = ServingSimulator(
        platform=platform,
        scheduler=ConservativeScheduler(),
        token_capacity_override=TINY_CAPACITY,
        tracer=ring,
    )
    result = sim.run_closed_loop(make_workload(num_requests=12), num_clients=4)
    assert result.completed
    return ring.events


def cluster_trace(platform, num_replicas=3) -> list[TraceEvent]:
    ring = RingTracer()
    cluster = ClusterSimulator(
        platform=platform,
        num_replicas=num_replicas,
        router="round-robin",
        scheduler_name="conservative",
        token_capacity_override=TINY_CAPACITY,
        tracer=ring,
    )
    result = cluster.run_closed_loop(make_workload(num_requests=18), num_clients=6)
    assert result.completed
    return ring.events


class TestChromeTrace:
    def test_events_are_valid_trace_event_json(self, platform_7b, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(server_trace(platform_7b), path)
        data = json.load(open(path))
        events = data["traceEvents"]
        assert events
        for event in events:
            assert "ph" in event and "pid" in event
            if event["ph"] != "M":
                assert "ts" in event
        phases = {event["ph"] for event in events}
        assert {"X", "b", "e", "M"} <= phases

    def test_cluster_gets_one_track_per_replica(self, platform_7b):
        events = chrome_trace(cluster_trace(platform_7b, num_replicas=3))["traceEvents"]
        pids = {event["pid"] for event in events}
        # Fleet-level track plus one process per replica.
        assert pids == {FLEET_PID, 1, 2, 3}
        metadata_names = {
            (event["pid"], event["args"]["name"])
            for event in events
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert len(metadata_names) == 4

    def test_async_phase_pairs_balance(self, platform_7b):
        events = chrome_trace(server_trace(platform_7b))["traceEvents"]
        begins = sum(1 for e in events if e["ph"] == "b")
        ends = sum(1 for e in events if e["ph"] == "e")
        assert begins == ends > 0

    def test_timestamps_are_microseconds(self, platform_7b):
        raw = server_trace(platform_7b)
        last = max(event.time for event in raw)
        events = chrome_trace(raw)["traceEvents"]
        max_ts = max(event["ts"] for event in events if "ts" in event and event["ph"] != "M")
        assert abs(max_ts - last * 1e6) < 1e6


class TestDeriveRequestPhases:
    def test_full_lifecycle_produces_three_phases(self):
        events = [
            TraceEvent(obs.REQUEST_SUBMIT, 0.0, request_id="r0"),
            TraceEvent(obs.REQUEST_QUEUED, 0.0, request_id="r0"),
            TraceEvent(obs.REQUEST_ADMITTED, 1.0, request_id="r0", replica=2),
            TraceEvent(obs.REQUEST_FIRST_TOKEN, 3.0, request_id="r0"),
            TraceEvent(obs.REQUEST_FINISHED, 7.0, request_id="r0"),
        ]
        phases = derive_request_phases(events)
        assert [(p.name, p.start, p.end, p.complete) for p in phases] == [
            ("queued", 0.0, 1.0, True),
            ("prefill", 1.0, 3.0, True),
            ("decode", 3.0, 7.0, True),
        ]

    def test_eviction_reopens_queued(self):
        events = [
            TraceEvent(obs.REQUEST_QUEUED, 0.0, request_id="r0"),
            TraceEvent(obs.REQUEST_ADMITTED, 1.0, request_id="r0"),
            TraceEvent(obs.REQUEST_EVICTED, 2.0, request_id="r0"),
            TraceEvent(obs.REQUEST_ADMITTED, 4.0, request_id="r0"),
            TraceEvent(obs.REQUEST_FIRST_TOKEN, 5.0, request_id="r0"),
            TraceEvent(obs.REQUEST_FINISHED, 6.0, request_id="r0"),
        ]
        names = [p.name for p in derive_request_phases(events)]
        assert names == ["queued", "prefill", "queued", "prefill", "decode"]

    def test_throttled_request_closes_terminally(self):
        events = [
            TraceEvent(obs.REQUEST_SUBMIT, 0.0, request_id="r0"),
            TraceEvent(obs.REQUEST_THROTTLED, 0.0, request_id="r0"),
        ]
        phases = derive_request_phases(events)
        assert [(p.name, p.complete) for p in phases] == [("queued", True)]

    def test_unclosed_phase_clamps_to_trace_end(self):
        events = [
            TraceEvent(obs.REQUEST_QUEUED, 1.0, request_id="r0"),
            TraceEvent(obs.ENGINE_STEP, 9.0, replica=0),
        ]
        phases = derive_request_phases(events)
        assert len(phases) == 1
        assert phases[0].end == 9.0
        assert not phases[0].complete

    def test_evicted_then_migrated_splits_at_handoff(self):
        # Evicted on replica 0, then drained to replica 1 *before*
        # re-admission.  Neither replica may be charged for the other's
        # wait: the post-eviction span belongs to replica 0 and the new
        # queue span starts only when the request lands on replica 1.
        events = [
            TraceEvent(obs.REQUEST_SUBMIT, 0.0, request_id="r0"),
            TraceEvent(obs.REQUEST_QUEUED, 0.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_ADMITTED, 1.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_EVICTED, 2.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_QUEUED, 3.0, request_id="r0", replica=1),
            TraceEvent(obs.REQUEST_ADMITTED, 4.0, request_id="r0", replica=1),
            TraceEvent(obs.REQUEST_FIRST_TOKEN, 5.0, request_id="r0", replica=1),
            TraceEvent(obs.REQUEST_FINISHED, 6.0, request_id="r0", replica=1),
        ]
        phases = derive_request_phases(events)
        assert [(p.name, p.start, p.end, p.replica) for p in phases] == [
            ("queued", 0.0, 1.0, 0),
            ("prefill", 1.0, 2.0, 0),
            ("queued", 2.0, 3.0, 0),
            ("queued", 3.0, 4.0, 1),
            ("prefill", 4.0, 5.0, 1),
            ("decode", 5.0, 6.0, 1),
        ]

    def test_evicted_then_explicit_migrate_keeps_replica_attribution(self):
        # Same hand-off but with the fleet-level migrate marker present:
        # the migrate closes the replica-0 wait and the queued refinement
        # adopts the destination replica without inventing extra spans.
        events = [
            TraceEvent(obs.REQUEST_QUEUED, 0.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_ADMITTED, 1.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_EVICTED, 2.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_MIGRATE, 3.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_QUEUED, 3.0, request_id="r0", replica=1),
            TraceEvent(obs.REQUEST_ADMITTED, 4.0, request_id="r0", replica=1),
            TraceEvent(obs.REQUEST_FINISHED, 5.0, request_id="r0", replica=1),
        ]
        phases = derive_request_phases(events)
        assert [(p.name, p.start, p.end, p.replica) for p in phases] == [
            ("queued", 0.0, 1.0, 0),
            ("prefill", 1.0, 2.0, 0),
            ("queued", 2.0, 3.0, 0),
            ("queued", 3.0, 4.0, 1),
            ("prefill", 4.0, 5.0, 1),
        ]

    def test_queued_during_running_phase_closes_it(self):
        # A re-queue observed while prefill/decode is still open (e.g. a
        # trace missing its evicted marker) must close the running span
        # rather than silently discard it.
        events = [
            TraceEvent(obs.REQUEST_QUEUED, 0.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_ADMITTED, 1.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_QUEUED, 2.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_FINISHED, 3.0, request_id="r0", replica=0),
        ]
        phases = derive_request_phases(events)
        assert [(p.name, p.start, p.end) for p in phases] == [
            ("queued", 0.0, 1.0),
            ("prefill", 1.0, 2.0),
            ("queued", 2.0, 3.0),
        ]

    def test_eviction_without_handoff_still_refines_same_replica(self):
        # Same-replica re-queue after eviction stays one span: the
        # cross-replica split must not trigger when the replica matches
        # or is simply unknown.
        events = [
            TraceEvent(obs.REQUEST_EVICTED, 2.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_QUEUED, 3.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_ADMITTED, 4.0, request_id="r0", replica=0),
            TraceEvent(obs.REQUEST_FINISHED, 5.0, request_id="r0", replica=0),
        ]
        phases = derive_request_phases(events)
        assert [(p.name, p.start, p.end, p.replica) for p in phases] == [
            ("queued", 2.0, 4.0, 0),
            ("prefill", 4.0, 5.0, 0),
        ]

    def test_session_and_prefix_events_render_as_instants(self, platform_7b):
        ring = RingTracer()
        sim = ServingSimulator(
            platform=platform_7b,
            scheduler=ConservativeScheduler(),
            token_capacity_override=TINY_CAPACITY,
            tracer=ring,
            prefix_cache_tokens=TINY_CAPACITY,
        )
        from repro.workloads.interactions import generate_interactions

        result = sim.run_sessions(generate_interactions(6, seed=3, min_turns=2))
        assert result.completed
        session_names = {
            e.name
            for e in ring.events
            if e.name.startswith("session.") or e.name.startswith("prefix.")
        }
        assert obs.SESSION_START in session_names
        assert obs.SESSION_END in session_names
        assert obs.PREFIX_HIT in session_names
        instants = {
            e["name"] for e in chrome_trace(ring.events)["traceEvents"] if e["ph"] == "i"
        }
        assert session_names <= instants

    def test_real_run_phases_cover_all_requests(self, platform_7b):
        events = server_trace(platform_7b)
        phases = derive_request_phases(events)
        finished = {e.request_id for e in events if e.name == obs.REQUEST_FINISHED}
        decoded = {p.request_id for p in phases if p.name == "decode" and p.complete}
        assert decoded == finished
        assert all(p.duration >= 0 for p in phases)

"""Tracing must never change simulation results.

The observability layer's hard contract: attaching any tracer — or none —
leaves every fingerprinted metric bit-identical.  The committed
``BENCH_core.json`` digests double as pre-PR snapshots: the default
:class:`~repro.obs.tracer.NullTracer` run must still hash to exactly the
bytes recorded before the tracing subsystem existed.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.perf import BENCH_PATH, SCENARIOS, cluster_fingerprint, run_fingerprint
from repro.obs.tracer import NullTracer, RingTracer
from repro.schedulers.conservative import ConservativeScheduler
from repro.serving.cluster import ClusterSimulator
from repro.serving.server import ServingSimulator
from tests.conftest import TINY_CAPACITY, make_workload
from tests.helpers import assert_fingerprint_neutral


def server_fingerprint(platform, tracer):
    sim = ServingSimulator(
        platform=platform,
        scheduler=ConservativeScheduler(),
        token_capacity_override=TINY_CAPACITY,
        tracer=tracer,
    )
    return run_fingerprint(sim.run_closed_loop(make_workload(num_requests=16), num_clients=4))


def fleet_fingerprint(platform, tracer):
    cluster = ClusterSimulator(
        platform=platform,
        num_replicas=2,
        router="least-outstanding",
        scheduler_name="conservative",
        token_capacity_override=TINY_CAPACITY,
        tracer=tracer,
    )
    return cluster_fingerprint(cluster.run_closed_loop(make_workload(num_requests=16), num_clients=4))


class TestTracerNeutrality:
    def test_server_fingerprint_is_tracer_independent(self, platform_7b):
        untraced = server_fingerprint(platform_7b, None)
        for tracer in (NullTracer(), RingTracer()):
            assert_fingerprint_neutral(
                lambda: server_fingerprint(platform_7b, tracer),
                untraced,
                label=type(tracer).__name__,
            )

    def test_cluster_fingerprint_is_tracer_independent(self, platform_7b):
        untraced = fleet_fingerprint(platform_7b, None)
        for tracer in (NullTracer(), RingTracer()):
            assert_fingerprint_neutral(
                lambda: fleet_fingerprint(platform_7b, tracer),
                untraced,
                label=type(tracer).__name__,
            )


class TestCommittedSnapshots:
    @pytest.fixture(scope="class")
    def committed(self) -> dict:
        if not BENCH_PATH.exists():
            pytest.skip("no committed BENCH_core.json in this checkout")
        return json.loads(BENCH_PATH.read_text())["scenarios"]

    def test_fig12_matches_pre_tracing_snapshot(self, committed):
        # The fastest committed scenario, re-run with the default NullTracer:
        # its digest must equal the snapshot taken before tracing landed.
        scenario = next(s for s in SCENARIOS if s.name == "fig12_heterogeneous")
        _, digest, _ = scenario.run(True)
        assert_fingerprint_neutral(
            digest, committed["fig12_heterogeneous"]["fingerprint"], label="tracing"
        )

    def test_fig12_traced_run_matches_snapshot_too(self, committed):
        scenario = next(s for s in SCENARIOS if s.name == "fig12_heterogeneous")
        _, digest, _ = scenario.run(True, tracer=RingTracer(capacity=1024))
        assert_fingerprint_neutral(
            digest, committed["fig12_heterogeneous"]["fingerprint"], label="RingTracer"
        )

"""Tracer backends, lifecycle-event emission, and jump self-profiling."""

from __future__ import annotations

import pytest

from repro.engine.engine import InferenceEngine, JumpStats
from repro.obs import events as obs
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RingTracer,
    TraceEvent,
    read_jsonl_trace,
)
from repro.schedulers.conservative import ConservativeScheduler
from repro.serving.server import ServingSimulator
from tests.conftest import TINY_CAPACITY, make_workload


def traced_run(platform, tracer, fast_path=True, num_requests=12, num_clients=4):
    sim = ServingSimulator(
        platform=platform,
        scheduler=ConservativeScheduler(),
        token_capacity_override=TINY_CAPACITY,
        fast_path=fast_path,
        tracer=tracer,
    )
    result = sim.run_closed_loop(make_workload(num_requests=num_requests), num_clients=num_clients)
    assert result.completed
    return result


class TestNullTracer:
    def test_disabled_and_emit_is_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.emit(TraceEvent("request.submit", 0.0))  # must not raise
        tracer.close()

    def test_singleton_is_default(self, platform_7b):
        sim = ServingSimulator(
            platform=platform_7b,
            scheduler=ConservativeScheduler(),
            token_capacity_override=TINY_CAPACITY,
        )
        assert sim.tracer is NULL_TRACER
        assert sim.engine.tracer is NULL_TRACER


class TestRingTracer:
    def test_bounded_eviction_keeps_newest(self):
        ring = RingTracer(capacity=4)
        for i in range(10):
            ring.emit(TraceEvent("e", float(i)))
        assert len(ring) == 4
        assert ring.emitted == 10
        assert ring.dropped == 6
        assert [event.time for event in ring.events] == [6.0, 7.0, 8.0, 9.0]

    def test_empty_ring_is_still_installed(self, platform_7b):
        # RingTracer defines __len__, so an empty ring is falsy; constructors
        # must test `is not None`, not truthiness, or the tracer silently
        # vanishes.  This is the regression test for that exact bug.
        ring = RingTracer()
        sim = ServingSimulator(
            platform=platform_7b,
            scheduler=ConservativeScheduler(),
            token_capacity_override=TINY_CAPACITY,
            tracer=ring,
        )
        assert sim.tracer is ring
        assert sim.engine.tracer is ring


class TestJsonlTracer:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            TraceEvent("request.submit", 0.5, request_id="r0", attrs={"prompt_tokens": 32}),
            TraceEvent("engine.jump", 1.25, replica=2, duration=3.5, attrs={"steps": 7}),
            TraceEvent("request.finished", 9.0, request_id="r0"),
        ]
        with JsonlTracer(path) as tracer:
            for event in events:
                tracer.emit(event)
        assert read_jsonl_trace(path) == events

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "time": 0.0}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_jsonl_trace(path)

    def test_every_emit_is_flushed_to_disk(self, tmp_path):
        # No close() needed to observe emitted events: a run that dies
        # mid-simulation must still leave every event it got to emit.
        path = tmp_path / "flush.jsonl"
        tracer = JsonlTracer(path)
        tracer.emit(TraceEvent("request.submit", 0.0, request_id="r0"))
        tracer.emit(TraceEvent("request.finished", 1.0, request_id="r0"))
        assert len(read_jsonl_trace(path)) == 2
        tracer.close()

    def test_context_manager_closes_on_exception(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError, match="simulated failure"):
            with JsonlTracer(path) as tracer:
                tracer.emit(TraceEvent("request.submit", 0.0, request_id="r0"))
                raise RuntimeError("simulated failure")
        assert tracer._file is None  # closed despite the exception
        events = read_jsonl_trace(path)  # and the file holds whole records
        assert [event.name for event in events] == ["request.submit"]

    def test_unserialisable_event_leaves_no_partial_line(self, tmp_path):
        # The line is serialised in full before any write: a bad attr must
        # not truncate the file mid-record.
        path = tmp_path / "atomic.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit(TraceEvent("request.submit", 0.0, request_id="r0"))
            with pytest.raises(TypeError):
                tracer.emit(TraceEvent("bad", 1.0, attrs={"payload": object()}))
            tracer.emit(TraceEvent("request.finished", 2.0, request_id="r0"))
        events = read_jsonl_trace(path)  # parses cleanly: no half-written line
        assert [event.name for event in events] == ["request.submit", "request.finished"]

    def test_flush_before_open_is_noop(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "never.jsonl")
        tracer.flush()  # must not create the file or raise
        tracer.close()
        assert not (tmp_path / "never.jsonl").exists()


class TestLifecycleEvents:
    def test_request_lifecycle_ordering(self, platform_7b):
        ring = RingTracer()
        traced_run(platform_7b, ring)
        per_request: dict[str, list[str]] = {}
        for event in ring.events:
            if event.request_id is not None:
                per_request.setdefault(event.request_id, []).append(event.name)
        assert per_request
        for names in per_request.values():
            # Submission precedes queueing precedes admission precedes tokens.
            assert names.index(obs.REQUEST_SUBMIT) < names.index(obs.REQUEST_QUEUED)
            assert names.index(obs.REQUEST_QUEUED) < names.index(obs.REQUEST_ADMITTED)
            assert names.index(obs.REQUEST_ADMITTED) < names.index(obs.REQUEST_FIRST_TOKEN)
            assert names[-1] == obs.REQUEST_FINISHED

    def test_timestamps_are_monotonic_per_request(self, platform_7b):
        # The global stream is not time-sorted (span events carry their start
        # time but are emitted once their duration is known), but each
        # request's lifecycle must advance monotonically.
        ring = RingTracer()
        traced_run(platform_7b, ring)
        per_request: dict[str, list[float]] = {}
        for event in ring.events:
            if event.request_id is not None:
                per_request.setdefault(event.request_id, []).append(event.time)
        assert per_request
        for times in per_request.values():
            assert times == sorted(times)

    def test_jump_events_only_on_fast_path(self, platform_7b):
        fast_ring = RingTracer()
        traced_run(platform_7b, fast_ring, fast_path=True)
        names = {event.name for event in fast_ring.events}
        assert obs.ENGINE_JUMP in names

        loop_ring = RingTracer()
        traced_run(platform_7b, loop_ring, fast_path=False)
        loop_names = {event.name for event in loop_ring.events}
        assert obs.ENGINE_JUMP not in loop_names
        assert obs.ENGINE_STEP in loop_names

    def test_jump_event_attrs_carry_source_and_steps(self, platform_7b):
        ring = RingTracer()
        traced_run(platform_7b, ring)
        jumps = [event for event in ring.events if event.name == obs.ENGINE_JUMP]
        assert jumps
        for event in jumps:
            assert event.attrs["source"] in ("silent", "saturated")
            assert event.attrs["steps"] >= 1
            assert event.duration > 0


class TestSourceTags:
    def test_step_result_source_is_loop(self, platform_7b):
        engine = InferenceEngine(
            platform=platform_7b,
            scheduler=ConservativeScheduler(),
            token_capacity_override=TINY_CAPACITY,
        )
        assert engine.step(0.0).source == "loop"

    def test_jump_result_source_tags(self, platform_7b):
        ring = RingTracer()
        result = traced_run(platform_7b, ring, num_requests=24, num_clients=8)
        stats = result.jump_stats
        sources = {event.attrs["source"] for event in ring.events if event.name == obs.ENGINE_JUMP}
        if stats.silent_jumps:
            assert "silent" in sources
        if stats.saturated_jumps:
            assert "saturated" in sources


class TestJumpStats:
    def test_fast_path_run_populates_counters(self, platform_7b):
        result = traced_run(platform_7b, NullTracer(), fast_path=True)
        stats = result.jump_stats
        assert stats.jumps > 0
        assert stats.steps_fused > 0
        assert stats.total_steps == stats.loop_steps + stats.steps_fused
        assert 0.0 < stats.fused_fraction < 1.0

    def test_reference_run_never_jumps(self, platform_7b):
        result = traced_run(platform_7b, NullTracer(), fast_path=False)
        stats = result.jump_stats
        assert stats.jumps == 0
        assert stats.steps_fused == 0
        assert stats.loop_steps > 0
        assert stats.fused_fraction == 0.0

    def test_merge_accumulates_everything(self):
        a = JumpStats(loop_steps=3, silent_jumps=1, silent_steps_fused=10)
        a.note_fallback("silent:no-window")
        b = JumpStats(loop_steps=2, saturated_jumps=2, saturated_steps_fused=8, scheduler_consults=5)
        b.note_fallback("silent:no-window")
        b.note_fallback("saturated:not-uniform")
        a.merge(b)
        assert a.loop_steps == 5
        assert a.jumps == 3
        assert a.steps_fused == 18
        assert a.scheduler_consults == 5
        assert a.fallback_reasons == {"silent:no-window": 2, "saturated:not-uniform": 1}

    def test_summary_shape(self):
        summary = JumpStats().summary()
        assert summary["loop_steps"] == 0
        assert summary["fused_fraction"] == 0.0
        assert summary["fallback_reasons"] == {}
        assert set(summary) == {
            "loop_steps",
            "jumps",
            "steps_fused",
            "silent_jumps",
            "saturated_jumps",
            "scheduler_consults",
            "fused_fraction",
            "mean_steps_per_jump",
            "fallback_reasons",
        }
